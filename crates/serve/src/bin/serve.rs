//! The sweep service CLI: `serve <subcommand>`.
//!
//! * `serve listen [--addr HOST:PORT] [--cache-dir DIR] [--mem-cells N]
//!   [--read-timeout SECS] [--write-timeout SECS] [--max-inflight N]
//!   [--allow-shutdown]` — run the server over the standard scenario
//!   registry. `--addr` defaults to `127.0.0.1:8787`; `--cache-dir`
//!   persists the cell store across restarts; `--mem-cells` sizes the
//!   in-memory LRU. The resilience knobs map onto
//!   [`oic_serve::ServeConfig`]: socket deadlines (0 disables), the
//!   in-flight leader bound (503 + `Retry-After` beyond it), and the
//!   graceful-drain route.
//! * `serve query [--addr HOST:PORT] [--timeout SECS] [--retries N]
//!   [SPEC.json]` — POST a spec file (or stdin when omitted/`-`) to a
//!   running server and print the NDJSON response body to stdout.
//!   Connect failures, socket errors, 503s, and truncated streams (no
//!   `done`/`error` trailer) are retried up to `--retries` times with
//!   deterministic exponential backoff (100 ms, 200 ms, … capped at
//!   2 s).
//! * `serve merge --out MERGED.json SHARD.json…` — interleave shard
//!   reports (`batch --shard i/n`) into the byte-identical unsharded
//!   report (`--out -` prints to stdout).
//!
//! Protocol, canonicalization, and shard contracts: `docs/PROTOCOL.md`;
//! fault model and degradation matrix: `docs/ROBUSTNESS.md`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use oic_engine::{CellCache, JsonValue};
use oic_scenarios::ScenarioRegistry;
use oic_serve::{merge_reports, ServeConfig, SweepServer};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = if args.is_empty() {
        "listen".to_string()
    } else {
        args.remove(0)
    };
    let code = match command.as_str() {
        "listen" => listen(&args),
        "query" => query(&args),
        "merge" => merge(&args),
        "--help" | "help" | "-h" => {
            eprintln!("usage: serve [listen|query|merge] …  (see crate docs / docs/PROTOCOL.md)");
            0
        }
        other => {
            eprintln!("unknown subcommand {other:?} (expected listen, query, or merge)");
            2
        }
    };
    std::process::exit(code);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// `--read-timeout`/`--write-timeout` in whole seconds; `0` disables
/// the deadline entirely.
fn timeout_flag(args: &[String], flag: &str, default: Option<Duration>) -> Option<Duration> {
    match flag_value(args, flag).and_then(|v| v.parse::<u64>().ok()) {
        Some(0) => None,
        Some(secs) => Some(Duration::from_secs(secs)),
        None => default,
    }
}

fn listen(args: &[String]) -> i32 {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let cache_dir = flag_value(args, "--cache-dir").map(std::path::PathBuf::from);
    let mem_cells = flag_value(args, "--mem-cells")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        read_timeout: timeout_flag(args, "--read-timeout", defaults.read_timeout),
        write_timeout: timeout_flag(args, "--write-timeout", defaults.write_timeout),
        max_inflight: flag_value(args, "--max-inflight")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.max_inflight),
        allow_shutdown: has_flag(args, "--allow-shutdown"),
    };
    // Metrics on by default: the /v1/metrics endpoint is the only place
    // cache/coalescing evidence surfaces (never in response bodies), so
    // a server without metrics would be flying blind.
    oic_obs::set_metrics_enabled(true);
    let listener = match TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return 1;
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    let server = SweepServer::with_config(
        ScenarioRegistry::standard(),
        CellCache::new(mem_cells, cache_dir.clone()),
        config,
    );
    eprintln!(
        "serve: listening on {bound} ({} scenarios, cache: {})",
        ScenarioRegistry::standard().len(),
        cache_dir
            .as_deref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "memory-only".to_string()),
    );
    server.serve(listener);
    eprintln!("serve: drained, exiting");
    0
}

fn query(args: &[String]) -> i32 {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let spec = match positional.first().map(|s| s.as_str()) {
        None | Some("-") => {
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("cannot read spec from stdin: {e}");
                return 1;
            }
            text
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read spec {path:?}: {e}");
                return 1;
            }
        },
    };
    let timeout = timeout_flag(args, "--timeout", Some(Duration::from_secs(30)));
    let retries: u32 = flag_value(args, "--retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    let mut attempt = 0u32;
    loop {
        match query_once(&addr, &spec, timeout) {
            QueryOutcome::Done(code) => return code,
            QueryOutcome::Retryable(reason) => {
                if attempt >= retries {
                    eprintln!("{reason} (giving up after {} attempts)", attempt + 1);
                    return 1;
                }
                // Deterministic exponential backoff: 100 ms, 200 ms,
                // 400 ms, … capped at 2 s. No jitter — retry timing is
                // reproducible, and a single client cannot thunder.
                let backoff = (100u64 << attempt.min(16)).min(2000);
                eprintln!("{reason}; retrying in {backoff} ms");
                std::thread::sleep(Duration::from_millis(backoff));
                attempt += 1;
            }
        }
    }
}

/// How one request attempt ended: a final exit code, or a transient
/// failure worth another attempt.
enum QueryOutcome {
    Done(i32),
    Retryable(String),
}

fn query_once(addr: &str, spec: &str, timeout: Option<Duration>) -> QueryOutcome {
    let mut stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => return QueryOutcome::Retryable(format!("cannot connect to {addr}: {e}")),
    };
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let request = format!(
        "POST /v1/sweep HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{spec}",
        spec.len()
    );
    if let Err(e) = stream.write_all(request.as_bytes()) {
        return QueryOutcome::Retryable(format!("cannot send request: {e}"));
    }
    let mut response = Vec::new();
    if let Err(e) = stream.read_to_end(&mut response) {
        return QueryOutcome::Retryable(format!("cannot read response: {e}"));
    }
    let text = String::from_utf8_lossy(&response);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return QueryOutcome::Retryable(
            "malformed response (no header/body separator)".to_string(),
        );
    };
    let status = head.lines().next().unwrap_or("request failed");
    if head.starts_with("HTTP/1.1 503") {
        // Overloaded server: honor the Retry-After semantics by
        // retrying (the backoff already exceeds the advertised 1 s by
        // the later attempts; earlier ones probe cheaply).
        return QueryOutcome::Retryable(format!("server busy ({status})"));
    }
    if !head.starts_with("HTTP/1.1 200") {
        // Any other non-200 is deterministic (bad spec, bad route):
        // retrying would fail identically.
        print!("{body}");
        eprintln!("{status}");
        return QueryOutcome::Done(1);
    }
    // A healthy stream ends with a `done` or `error` trailer; anything
    // else means the server died mid-sweep and a retry can complete
    // from its cache.
    let trailer = body.lines().rev().find(|l| !l.trim().is_empty());
    let trailer = trailer.and_then(|line| JsonValue::parse(line).ok());
    match trailer {
        Some(doc) if doc.get("done").is_some() => {
            print!("{body}");
            QueryOutcome::Done(0)
        }
        Some(doc) if doc.get("error").is_some() => {
            print!("{body}");
            eprintln!(
                "sweep failed: {}",
                doc.get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown error")
            );
            QueryOutcome::Done(1)
        }
        _ => {
            QueryOutcome::Retryable("response stream truncated (no done/error trailer)".to_string())
        }
    }
}

fn merge(args: &[String]) -> i32 {
    let out = flag_value(args, "--out").unwrap_or_else(|| "-".to_string());
    let inputs: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let mut texts = Vec::with_capacity(inputs.len());
    for path in &inputs {
        match std::fs::read_to_string(path) {
            Ok(text) => texts.push(text),
            Err(e) => {
                eprintln!("cannot read shard report {path:?}: {e}");
                return 1;
            }
        }
    }
    match merge_reports(&texts) {
        Ok(merged) => {
            if out == "-" {
                print!("{merged}");
            } else if let Err(e) = std::fs::write(&out, &merged) {
                eprintln!("cannot write {out:?}: {e}");
                return 1;
            } else {
                eprintln!("merged {} shards into {out}", texts.len());
            }
            0
        }
        Err(message) => {
            eprintln!("merge failed: {message}");
            1
        }
    }
}
