//! The sweep service CLI: `serve <subcommand>`.
//!
//! * `serve listen [--addr HOST:PORT] [--cache-dir DIR] [--mem-cells N]`
//!   — run the server over the standard scenario registry. `--addr`
//!   defaults to `127.0.0.1:8787`; `--cache-dir` persists the cell
//!   store across restarts; `--mem-cells` sizes the in-memory LRU.
//! * `serve query [--addr HOST:PORT] [SPEC.json]` — POST a spec file
//!   (or stdin when omitted/`-`) to a running server and print the
//!   NDJSON response body to stdout.
//! * `serve merge --out MERGED.json SHARD.json…` — interleave shard
//!   reports (`batch --shard i/n`) into the byte-identical unsharded
//!   report (`--out -` prints to stdout).
//!
//! Protocol, canonicalization, and shard contracts: `docs/PROTOCOL.md`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use oic_engine::CellCache;
use oic_scenarios::ScenarioRegistry;
use oic_serve::{merge_reports, SweepServer};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = if args.is_empty() {
        "listen".to_string()
    } else {
        args.remove(0)
    };
    let code = match command.as_str() {
        "listen" => listen(&args),
        "query" => query(&args),
        "merge" => merge(&args),
        "--help" | "help" | "-h" => {
            eprintln!("usage: serve [listen|query|merge] …  (see crate docs / docs/PROTOCOL.md)");
            0
        }
        other => {
            eprintln!("unknown subcommand {other:?} (expected listen, query, or merge)");
            2
        }
    };
    std::process::exit(code);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1).cloned())
}

fn listen(args: &[String]) -> i32 {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let cache_dir = flag_value(args, "--cache-dir").map(std::path::PathBuf::from);
    let mem_cells = flag_value(args, "--mem-cells")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    // Metrics on by default: the /v1/metrics endpoint is the only place
    // cache/coalescing evidence surfaces (never in response bodies), so
    // a server without metrics would be flying blind.
    oic_obs::set_metrics_enabled(true);
    let listener = match TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return 1;
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    let server = SweepServer::new(
        ScenarioRegistry::standard(),
        CellCache::new(mem_cells, cache_dir.clone()),
    );
    eprintln!(
        "serve: listening on {bound} ({} scenarios, cache: {})",
        ScenarioRegistry::standard().len(),
        cache_dir
            .as_deref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "memory-only".to_string()),
    );
    server.serve(listener);
    0
}

fn query(args: &[String]) -> i32 {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let spec = match positional.first().map(|s| s.as_str()) {
        None | Some("-") => {
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("cannot read spec from stdin: {e}");
                return 1;
            }
            text
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read spec {path:?}: {e}");
                return 1;
            }
        },
    };
    let mut stream = match TcpStream::connect(&addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return 1;
        }
    };
    let request = format!(
        "POST /v1/sweep HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{spec}",
        spec.len()
    );
    if let Err(e) = stream.write_all(request.as_bytes()) {
        eprintln!("cannot send request: {e}");
        return 1;
    }
    let mut response = Vec::new();
    if let Err(e) = stream.read_to_end(&mut response) {
        eprintln!("cannot read response: {e}");
        return 1;
    }
    let text = String::from_utf8_lossy(&response);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        eprintln!("malformed response (no header/body separator)");
        return 1;
    };
    print!("{body}");
    if head.starts_with("HTTP/1.1 200") {
        0
    } else {
        eprintln!("{}", head.lines().next().unwrap_or("request failed"));
        1
    }
}

fn merge(args: &[String]) -> i32 {
    let out = flag_value(args, "--out").unwrap_or_else(|| "-".to_string());
    let inputs: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let mut texts = Vec::with_capacity(inputs.len());
    for path in &inputs {
        match std::fs::read_to_string(path) {
            Ok(text) => texts.push(text),
            Err(e) => {
                eprintln!("cannot read shard report {path:?}: {e}");
                return 1;
            }
        }
    }
    match merge_reports(&texts) {
        Ok(merged) => {
            if out == "-" {
                print!("{merged}");
            } else if let Err(e) = std::fs::write(&out, &merged) {
                eprintln!("cannot write {out:?}: {e}");
                return 1;
            } else {
                eprintln!("merged {} shards into {out}", texts.len());
            }
            0
        }
        Err(message) => {
            eprintln!("merge failed: {message}");
            1
        }
    }
}
