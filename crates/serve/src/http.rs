//! A deliberately small HTTP/1.1 + line-protocol front end.
//!
//! The server speaks two dialects on one port, decided by the first
//! request line:
//!
//! * **HTTP**: `GET /healthz`, `GET /v1/metrics`, `POST /v1/sweep`
//!   (body length from `Content-Length`). Responses close the
//!   connection (`Connection: close`), so sweep bodies can stream
//!   without chunked encoding and `curl` just works.
//! * **Line protocol** (netcat-friendly): one command per connection —
//!   `health`, `metrics`, or `sweep <compact spec JSON>` — answered
//!   with the same bytes an HTTP response would carry in its body.
//!
//! Only the features the protocol needs are implemented; this is not a
//! general HTTP stack (no keep-alive, no chunked requests, no
//! multi-line header folding).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed inbound request, either dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// An HTTP request: method, path, and (possibly empty) body.
    Http {
        /// Request method (`GET`, `POST`, …), uppercased by the client.
        method: String,
        /// Request path, query string included verbatim.
        path: String,
        /// Request body (`Content-Length` bytes).
        body: Vec<u8>,
    },
    /// A line-protocol command: the verb and the rest of the line.
    Line {
        /// Command verb (`health`, `metrics`, `sweep`).
        verb: String,
        /// Remainder of the line after the verb, trimmed.
        rest: String,
    },
}

/// Maximum accepted request body (64 MiB) — a roster of weight blobs
/// fits comfortably; anything larger is a client error, not an
/// allocation request.
pub const MAX_BODY: usize = 64 << 20;

/// Reads one request from the stream, auto-detecting the dialect.
///
/// # Errors
///
/// Returns a short message for malformed requests (bad request line,
/// missing or oversized `Content-Length`, truncated body).
pub fn read_request(stream: &mut TcpStream) -> Result<(Request, BufReader<TcpStream>), String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut first = String::new();
    reader
        .read_line(&mut first)
        .map_err(|e| format!("read request line: {e}"))?;
    let first = first.trim_end_matches(['\r', '\n']).to_string();
    if first.is_empty() {
        return Err("empty request".to_string());
    }

    let mut parts = first.splitn(3, ' ');
    let head = parts.next().unwrap_or("");
    let is_http =
        matches!(head, "GET" | "POST" | "HEAD" | "PUT" | "DELETE") && first.contains(" HTTP/");
    if !is_http {
        let mut words = first.splitn(2, ' ');
        let verb = words.next().unwrap_or("").to_string();
        let rest = words.next().unwrap_or("").trim().to_string();
        return Ok((Request::Line { verb, rest }, reader));
    }

    let method = head.to_string();
    let path = parts.next().ok_or("request line missing path")?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok((Request::Http { method, path, body }, reader))
}

/// Writes a complete (non-streaming) HTTP response.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_ext(stream, status, reason, &[], content_type, body)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on a 503).
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response_ext(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"Connection: close\r\n\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the head of a streaming NDJSON response; the caller streams
/// body bytes afterwards and closes the connection to mark the end.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_stream_head(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(payload: &[u8]) -> Request {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = payload.to_vec();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(&payload).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let (request, _reader) = read_request(&mut stream).unwrap();
        writer.join().unwrap();
        request
    }

    #[test]
    fn parses_http_post_with_body() {
        let request =
            round_trip(b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}");
        assert_eq!(
            request,
            Request::Http {
                method: "POST".into(),
                path: "/v1/sweep".into(),
                body: b"{\"a\":1}".to_vec(),
            }
        );
    }

    #[test]
    fn parses_http_get_without_body() {
        let request = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(
            request,
            Request::Http {
                method: "GET".into(),
                path: "/healthz".into(),
                body: Vec::new(),
            }
        );
    }

    #[test]
    fn parses_line_commands() {
        let request = round_trip(b"sweep {\"policies\":[\"bang-bang\"]}\n");
        assert_eq!(
            request,
            Request::Line {
                verb: "sweep".into(),
                rest: "{\"policies\":[\"bang-bang\"]}".into(),
            }
        );
        let bare = round_trip(b"metrics\n");
        assert_eq!(
            bare,
            Request::Line {
                verb: "metrics".into(),
                rest: String::new(),
            }
        );
    }
}
