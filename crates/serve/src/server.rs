//! The sweep server: spec in, ordered NDJSON cell stream out.
//!
//! Each connection is one request. A sweep request is canonicalized and
//! hashed ([`SweepSpec::spec_hash`]); the hash keys both the
//! content-addressed cell cache (via the engine) and the in-flight
//! table used for request coalescing — a request identical to one
//! already running attaches to the leader's byte stream instead of
//! spawning a second sweep.
//!
//! The response body is deterministic: cells are emitted in global
//! index order (out-of-order completions buffer until their turn), and
//! no cache/coalescing/timing facts ever appear in the body — repeated
//! identical requests produce byte-identical bodies whether they were
//! computed, coalesced, or served from cache. Evidence of *how* a
//! request was answered lives in the metrics endpoint only.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use oic_engine::{
    run_batch_opts, to_hex, CacheStats, CellCache, CellReport, EngineError, JsonValue,
    KernelChoice, SweepOptions, SweepSpec,
};
use oic_scenarios::ScenarioRegistry;

use crate::http::{read_request, write_response, write_response_ext, write_stream_head, Request};

/// Resilience knobs for [`SweepServer`]; [`Default`] matches the CLI
/// defaults (`serve listen`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-connection socket read deadline (`None` disables it). A
    /// client that opens a connection and never finishes its request
    /// gets unstuck here instead of pinning a handler thread forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write deadline (`None` disables it). A
    /// stalled reader cannot wedge a leader: stream writes already
    /// swallow errors (the sweep finishes for the cache and any
    /// coalesced followers), the deadline just bounds each write.
    pub write_timeout: Option<Duration>,
    /// Maximum *distinct* sweeps computing at once. A request that
    /// would become leader number `max_inflight + 1` is refused with
    /// `503` + `Retry-After` instead of piling more work onto the
    /// engine; followers always attach (coalescing adds no load).
    pub max_inflight: usize,
    /// Enables the `POST /v1/shutdown` route / `shutdown` line command
    /// (graceful drain). Off by default: a remote peer must not be able
    /// to stop the service unless the operator opted in.
    pub allow_shutdown: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_inflight: 32,
            allow_shutdown: false,
        }
    }
}

/// One in-flight sweep's shared byte stream: the leader appends, the
/// coalesced followers replay.
struct Inflight {
    state: Mutex<InflightBody>,
    grew: Condvar,
}

struct InflightBody {
    bytes: Vec<u8>,
    done: bool,
}

impl Inflight {
    fn new() -> Self {
        Self {
            state: Mutex::new(InflightBody {
                bytes: Vec::new(),
                done: false,
            }),
            grew: Condvar::new(),
        }
    }

    fn append(&self, chunk: &[u8]) {
        let mut body = self.state.lock().expect("inflight lock");
        body.bytes.extend_from_slice(chunk);
        self.grew.notify_all();
    }

    fn finish(&self) {
        let mut body = self.state.lock().expect("inflight lock");
        body.done = true;
        self.grew.notify_all();
    }

    /// Streams the body to `sink` as it grows; returns once the leader
    /// marked the stream done and every byte was forwarded.
    fn replay(&self, sink: &mut dyn Write) -> std::io::Result<()> {
        let mut sent = 0usize;
        loop {
            let chunk = {
                let mut body = self.state.lock().expect("inflight lock");
                while body.bytes.len() == sent && !body.done {
                    body = self.grew.wait(body).expect("inflight wait");
                }
                if body.bytes.len() == sent && body.done {
                    return sink.flush();
                }
                body.bytes[sent..].to_vec()
            };
            sink.write_all(&chunk)?;
            sent += chunk.len();
        }
    }
}

/// The sweep service: registry + cell cache + coalescing table.
///
/// Construction is cheap; scenario instances are built per sweep by the
/// engine (and amortized by the cache). One server value is shared by
/// every connection thread.
pub struct SweepServer {
    registry: ScenarioRegistry,
    cache: CellCache,
    config: ServeConfig,
    inflight: Mutex<HashMap<[u8; 32], Arc<Inflight>>>,
    requests: AtomicU64,
    coalesced: AtomicU64,
    rejected_busy: AtomicU64,
    shutdown: AtomicBool,
    active: Mutex<usize>,
    idle: Condvar,
}

impl std::fmt::Debug for SweepServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepServer")
            .field("scenarios", &self.registry.len())
            .field("cache", &self.cache)
            .finish()
    }
}

impl SweepServer {
    /// A server over `registry`, answering from (and filling) `cache`,
    /// with default [`ServeConfig`].
    pub fn new(registry: ScenarioRegistry, cache: CellCache) -> Arc<Self> {
        Self::with_config(registry, cache, ServeConfig::default())
    }

    /// A server with explicit resilience knobs.
    pub fn with_config(
        registry: ScenarioRegistry,
        cache: CellCache,
        config: ServeConfig,
    ) -> Arc<Self> {
        Arc::new(Self {
            registry,
            cache,
            config,
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
        })
    }

    /// Sweep requests handled so far (leaders and followers).
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that attached to an identical in-flight sweep.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Sweep requests refused with 503 because the in-flight table was
    /// full.
    pub fn rejected_busy_count(&self) -> u64 {
        self.rejected_busy.load(Ordering::Relaxed)
    }

    /// True once a graceful drain began: the accept loop is winding
    /// down and no new connections will be handled.
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Starts a graceful drain: [`serve`](Self::serve) stops accepting
    /// at its next wakeup and then waits for in-flight connections.
    /// Callers that hold a live connection should poke the listener
    /// afterwards (see the shutdown route) so `accept` actually wakes.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Traffic counters of the server's cell cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Accepts connections until a graceful drain is requested, one
    /// handler thread per connection; then waits for every in-flight
    /// connection to finish before returning (no request is cut off
    /// mid-stream).
    pub fn serve(self: &Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.is_draining() {
                break;
            }
            let Ok(stream) = stream else { continue };
            *self.active.lock().expect("active lock") += 1;
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                server.handle(stream);
                let mut active = server.active.lock().expect("active lock");
                *active -= 1;
                if *active == 0 {
                    server.idle.notify_all();
                }
            });
        }
        let mut active = self.active.lock().expect("active lock");
        while *active > 0 {
            active = self.idle.wait(active).expect("active wait");
        }
    }

    /// Flips the drain flag and pokes the accept loop awake with a
    /// throwaway self-connection (`accept` blocks until *some*
    /// connection arrives; the poke is dropped unhandled).
    fn trigger_shutdown(&self, stream: &TcpStream) {
        self.begin_shutdown();
        if let Ok(addr) = stream.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Handles one connection (one request, both dialects).
    pub fn handle(self: &Arc<Self>, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(self.config.read_timeout);
        let _ = stream.set_write_timeout(self.config.write_timeout);
        let request = match read_request(&mut stream) {
            Ok((request, _reader)) => request,
            Err(message) => {
                let _ = write_response(
                    &mut stream,
                    400,
                    "Bad Request",
                    "application/json",
                    error_body(&message).as_bytes(),
                );
                return;
            }
        };
        match request {
            Request::Http { method, path, body } => match (method.as_str(), path.as_str()) {
                ("GET", "/healthz") => {
                    let _ = write_response(&mut stream, 200, "OK", "text/plain", b"ok\n");
                }
                ("GET", "/v1/metrics") => {
                    let _ = write_response(
                        &mut stream,
                        200,
                        "OK",
                        "application/json",
                        self.metrics_body().as_bytes(),
                    );
                }
                ("POST", "/v1/sweep") => self.sweep(&mut stream, &body, true),
                ("POST", "/v1/shutdown") => {
                    if self.config.allow_shutdown {
                        let _ = write_response(&mut stream, 200, "OK", "text/plain", b"draining\n");
                        self.trigger_shutdown(&stream);
                    } else {
                        let _ = write_response(
                            &mut stream,
                            403,
                            "Forbidden",
                            "application/json",
                            error_body("shutdown disabled (start with --allow-shutdown)")
                                .as_bytes(),
                        );
                    }
                }
                _ => {
                    let _ = write_response(
                        &mut stream,
                        404,
                        "Not Found",
                        "application/json",
                        error_body(&format!("no route {method} {path}")).as_bytes(),
                    );
                }
            },
            Request::Line { verb, rest } => match verb.as_str() {
                "health" => {
                    let _ = stream.write_all(b"ok\n");
                }
                "metrics" => {
                    let _ = stream.write_all(self.metrics_body().as_bytes());
                }
                "sweep" => self.sweep(&mut stream, rest.as_bytes(), false),
                "shutdown" => {
                    if self.config.allow_shutdown {
                        let _ = stream.write_all(b"draining\n");
                        self.trigger_shutdown(&stream);
                    } else {
                        let _ = stream.write_all(
                            error_body("shutdown disabled (start with --allow-shutdown)")
                                .as_bytes(),
                        );
                    }
                }
                other => {
                    let _ = stream
                        .write_all(error_body(&format!("unknown command {other:?}")).as_bytes());
                }
            },
        }
    }

    /// The metrics document: the global `oic-obs` snapshot plus the
    /// server's own request/coalescing/cache counters (which do not
    /// depend on telemetry being enabled).
    pub fn metrics_body(&self) -> String {
        let cache = self.cache.stats();
        let doc = JsonValue::object()
            .with("kind", "oic-serve-metrics")
            .with("requests", self.request_count() as usize)
            .with("coalesced", self.coalesced_count() as usize)
            .with("rejected_busy", self.rejected_busy_count() as usize)
            .with("draining", self.is_draining())
            .with(
                "cache",
                JsonValue::object()
                    .with("mem_hits", cache.mem_hits as usize)
                    .with("disk_hits", cache.disk_hits as usize)
                    .with("misses", cache.misses as usize)
                    .with("stores", cache.stores as usize)
                    .with("rejected", cache.rejected as usize)
                    .with("corrupt", cache.corrupt as usize)
                    .with("bytes_read", cache.bytes_read as usize)
                    .with("bytes_written", cache.bytes_written as usize),
            )
            .with(
                "obs",
                JsonValue::parse(&oic_obs::metrics_snapshot().to_json())
                    .unwrap_or_else(|_| JsonValue::object()),
            );
        let mut body = doc.to_json_pretty();
        body.push('\n');
        body
    }

    fn sweep(self: &Arc<Self>, stream: &mut TcpStream, body: &[u8], http: bool) {
        match self.sweep_inner(stream, body, http) {
            Ok(()) => {}
            Err(Reject::BadRequest(message)) => {
                if http {
                    let _ = write_response(
                        stream,
                        400,
                        "Bad Request",
                        "application/json",
                        error_body(&message).as_bytes(),
                    );
                } else {
                    let _ = stream.write_all(error_body(&message).as_bytes());
                }
            }
            Err(Reject::Overloaded) => {
                let message = error_body("server at max in-flight sweeps, retry later");
                if http {
                    let _ = write_response_ext(
                        stream,
                        503,
                        "Service Unavailable",
                        &[("Retry-After", "1")],
                        "application/json",
                        message.as_bytes(),
                    );
                } else {
                    let _ = stream.write_all(message.as_bytes());
                }
            }
        }
    }

    /// Parses + validates the spec; `Err` means nothing was written yet
    /// and the caller should send the matching rejection (400 or 503).
    fn sweep_inner(
        self: &Arc<Self>,
        stream: &mut TcpStream,
        body: &[u8],
        http: bool,
    ) -> Result<(), Reject> {
        let text = std::str::from_utf8(body)
            .map_err(|_| Reject::BadRequest("spec is not UTF-8".to_string()))?;
        let doc = JsonValue::parse(text).map_err(|e| Reject::BadRequest(format!("spec: {e}")))?;
        let mut spec = SweepSpec::from_json(&doc).map_err(Reject::BadRequest)?;
        spec.canonicalize();
        for name in &spec.scenarios {
            if self.registry.get(name).is_none() {
                return Err(Reject::BadRequest(format!("unknown scenario {name:?}")));
            }
        }
        let hash = spec.spec_hash();

        self.requests.fetch_add(1, Ordering::Relaxed);
        oic_obs::counter!("serve.requests", "requests").incr();

        // Coalescing: one leader computes, identical concurrent requests
        // replay its bytes. Followers always attach (they add no engine
        // load); only *new* leaders are bounded by `max_inflight`.
        let (inflight, leader) = {
            let mut table = self.inflight.lock().expect("inflight table");
            match table.get(&hash) {
                Some(existing) => (Arc::clone(existing), false),
                None => {
                    if table.len() >= self.config.max_inflight {
                        drop(table);
                        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        oic_obs::counter!("serve.rejected_busy", "requests").incr();
                        return Err(Reject::Overloaded);
                    }
                    let fresh = Arc::new(Inflight::new());
                    table.insert(hash, Arc::clone(&fresh));
                    (fresh, true)
                }
            }
        };

        if http {
            if let Err(e) = write_stream_head(stream) {
                // The leader slot was already claimed: release it before
                // bailing, or the hash would coalesce forever onto a
                // stream nobody is writing.
                if leader {
                    inflight.finish();
                    self.inflight.lock().expect("inflight table").remove(&hash);
                }
                return Err(Reject::BadRequest(format!("write head: {e}")));
            }
        }
        if !leader {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            oic_obs::counter!("serve.coalesced", "requests").incr();
            let _ = inflight.replay(stream);
            return Ok(());
        }

        // A panicking leader must still finish the in-flight stream and
        // vacate the table — otherwise every coalesced follower hangs
        // forever and the hash can never be swept again. The panic
        // degrades to an `error` trailer on the wire.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.run_as_leader(&spec, &hash, &inflight, stream)
        }));
        if let Err(payload) = &result {
            oic_obs::counter!("serve.sweep_panics", "sweeps").incr();
            let line = error_body(&format!(
                "sweep handler panicked: {}",
                panic_text(payload.as_ref())
            ));
            inflight.append(line.as_bytes());
            let _ = stream.write_all(line.as_bytes());
        }
        inflight.finish();
        self.inflight.lock().expect("inflight table").remove(&hash);
        Ok(())
    }

    /// Runs the sweep, streaming NDJSON lines to both the socket and the
    /// in-flight buffer. From here on errors are emitted *into* the
    /// stream (the 200 head is already out).
    fn run_as_leader(
        &self,
        spec: &SweepSpec,
        hash: &[u8; 32],
        inflight: &Inflight,
        stream: &mut TcpStream,
    ) {
        // Socket + coalescing buffer behind one lock so worker threads
        // can emit completed cells directly. A dropped leader connection
        // must not kill the sweep — the cells still land in the cache and
        // coalesced followers still need the bytes — so socket errors are
        // swallowed here.
        let sink = Mutex::new(&mut *stream);
        let emit_line = |line: &str| {
            inflight.append(line.as_bytes());
            let mut socket = sink.lock().expect("sink lock");
            let _ = socket.write_all(line.as_bytes());
            let _ = socket.flush();
        };

        emit_line(
            &(JsonValue::object()
                .with("kind", "oic-sweep-response")
                .with("version", 1usize)
                .with("spec_hash", to_hex(hash))
                .with("seed", spec.seed.to_string())
                .to_json()
                + "\n"),
        );

        // Cells stream strictly in global index order: out-of-order
        // completions buffer until their index comes up, so the body
        // never depends on scheduling.
        let order = Mutex::new((0usize, BTreeMap::<usize, String>::new()));
        let on_cell = |g: usize, cell: &CellReport| {
            let line = JsonValue::object()
                .with("cell", g)
                .with("data", cell.to_json(false))
                .to_json()
                + "\n";
            let mut slot = order.lock().expect("order lock");
            let (next, pending) = &mut *slot;
            pending.insert(g, line);
            while let Some(line) = pending.remove(next) {
                emit_line(&line);
                oic_obs::counter!("serve.cells_streamed", "cells").incr();
                *next += 1;
            }
        };

        let config = spec.to_config();
        let opts = SweepOptions {
            scenarios: (!spec.scenarios.is_empty()).then_some(spec.scenarios.as_slice()),
            shard: None,
            cache: Some(&self.cache),
            on_cell: Some(&on_cell),
            dropouts: (!spec.dropouts.is_empty()).then_some(spec.dropouts.as_slice()),
            faults: None,
            kernel: KernelChoice::default(),
        };
        let outcome = run_batch_opts(&self.registry, &spec.policies, &config, &opts);

        let trailer = match outcome {
            Ok((report, _stats)) => {
                oic_obs::counter!("serve.sweeps", "sweeps").incr();
                let failed = report.cells.iter().filter(|c| c.is_failed()).count();
                let mut done = JsonValue::object()
                    .with("done", true)
                    .with("cells", report.cells.len())
                    .with("total_safety_violations", report.total_safety_violations());
                // Fault-free sweeps keep their exact historical trailer
                // bytes; the tally appears only when something degraded.
                if failed > 0 {
                    done = done.with("failed_cells", failed);
                }
                done.to_json() + "\n"
            }
            Err(error) => {
                oic_obs::counter!("serve.sweep_errors", "sweeps").incr();
                error_body(&engine_error_text(&error))
            }
        };
        emit_line(&trailer);
    }
}

/// Why a sweep request was refused before any stream bytes went out.
enum Reject {
    /// Malformed or unsatisfiable spec → 400.
    BadRequest(String),
    /// In-flight table full → 503 + `Retry-After`.
    Overloaded,
}

fn engine_error_text(error: &EngineError) -> String {
    format!("sweep failed: {error}")
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(text) = payload.downcast_ref::<&str>() {
        text
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text
    } else {
        "opaque panic payload"
    }
}

/// A one-line JSON error document (`{"error": "..."}` + newline).
pub fn error_body(message: &str) -> String {
    JsonValue::object().with("error", message).to_json() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_engine::PolicySpec;
    use std::io::Read;

    fn test_server() -> (Arc<SweepServer>, std::net::SocketAddr) {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(oic_scenarios::DoubleIntegratorScenario));
        let server = SweepServer::new(registry, CellCache::in_memory());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = Arc::clone(&server);
        std::thread::spawn(move || accept.serve(listener));
        (server, addr)
    }

    fn send(addr: std::net::SocketAddr, payload: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(payload.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn http_body(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap()
    }

    const SPEC: &str =
        r#"{"policies":["bang-bang","periodic-4"],"episodes":3,"steps":15,"seed":7}"#;

    #[test]
    fn health_and_metrics_respond_on_both_dialects() {
        let (_server, addr) = test_server();
        let health = send(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(http_body(&health), "ok\n");
        assert_eq!(send(addr, "health\n"), "ok\n");
        let metrics = send(addr, "GET /v1/metrics HTTP/1.1\r\n\r\n");
        assert!(http_body(&metrics).contains("\"kind\": \"oic-serve-metrics\""));
        assert!(send(addr, "metrics\n").contains("\"coalesced\": 0"));
    }

    #[test]
    fn sweep_round_trips_and_matches_the_engine() {
        let (server, addr) = test_server();
        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{SPEC}",
            SPEC.len()
        );
        let body = http_body(&send(addr, &request)).to_string();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 cells + trailer: {body}");
        let header = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("kind").and_then(JsonValue::as_str),
            Some("oic-sweep-response")
        );
        assert_eq!(header.get("seed").and_then(JsonValue::as_str), Some("7"));
        let trailer = JsonValue::parse(lines[3]).unwrap();
        assert_eq!(trailer.get("cells").and_then(JsonValue::as_usize), Some(2));
        assert_eq!(
            trailer
                .get("total_safety_violations")
                .and_then(JsonValue::as_usize),
            Some(0)
        );
        // Cells arrive in index order and byte-match a direct engine run.
        let spec = SweepSpec::from_json(&JsonValue::parse(SPEC).unwrap()).unwrap();
        let (reference, _) = run_batch_opts(
            &{
                let mut r = ScenarioRegistry::new();
                r.register(Box::new(oic_scenarios::DoubleIntegratorScenario));
                r
            },
            &[PolicySpec::BangBang, PolicySpec::Periodic(4)],
            &spec.to_config(),
            &SweepOptions::default(),
        )
        .unwrap();
        for (g, line) in lines[1..3].iter().enumerate() {
            let row = JsonValue::parse(line).unwrap();
            assert_eq!(row.get("cell").and_then(JsonValue::as_usize), Some(g));
            assert_eq!(
                row.get("data").unwrap().to_json(),
                reference.cells[g].to_json(false).to_json(),
                "cell {g} bytes"
            );
        }
        assert_eq!(server.request_count(), 1);
        assert_eq!(server.cache_stats().hits(), 0, "cold run computes");
    }

    #[test]
    fn identical_requests_hit_the_cache_and_bodies_are_byte_identical() {
        let (server, addr) = test_server();
        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{SPEC}",
            SPEC.len()
        );
        let cold = http_body(&send(addr, &request)).to_string();
        let warm = http_body(&send(addr, &request)).to_string();
        assert_eq!(cold, warm, "cache hits change no bytes");
        let stats = server.cache_stats();
        assert_eq!(stats.stores, 2, "cold run stored both cells");
        assert_eq!(stats.hits(), 2, "warm run answered both cells from cache");
        // The line dialect shares spec hashing with HTTP: same bytes.
        let line = send(addr, &format!("sweep {SPEC}\n"));
        assert_eq!(line, cold);
        assert_eq!(server.cache_stats().hits(), 4);
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let (server, addr) = test_server();
        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{SPEC}",
            SPEC.len()
        );
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let request = request.clone();
                std::thread::spawn(move || http_body(&send(addr, &request)).to_string())
            })
            .collect();
        let bodies: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        for body in &bodies[1..] {
            assert_eq!(body, &bodies[0], "all coalesced bodies identical");
        }
        assert_eq!(server.request_count(), 4);
        // At least the requests that arrived while the leader was still
        // sweeping coalesced; racing stragglers may have become leaders
        // of their own (cache-answered) sweeps instead.
        assert!(
            server.coalesced_count() + server.cache_stats().hits() / 2 >= 1,
            "some request avoided recomputation: {:?}",
            server.cache_stats()
        );
    }

    #[test]
    fn sweeps_can_carry_a_dropout_axis() {
        let (_server, addr) = test_server();
        let spec = r#"{"policies":["bang-bang"],"dropout":["none","mk-1-5"],"episodes":3,"steps":15,"seed":7}"#;
        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{spec}",
            spec.len()
        );
        let body = http_body(&send(addr, &request)).to_string();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(
            lines.len(),
            4,
            "header + 2 dropout variants + trailer: {body}"
        );
        assert!(
            !lines[1].contains("\"dropout\""),
            "none variant keeps fault-free bytes: {}",
            lines[1]
        );
        assert!(lines[2].contains("mk-1-5"), "{}", lines[2]);
        assert!(lines[2].contains("forced_skips"), "{}", lines[2]);
        let trailer = JsonValue::parse(lines[3]).unwrap();
        assert_eq!(trailer.get("cells").and_then(JsonValue::as_usize), Some(2));
        assert!(
            trailer.get("failed_cells").is_none(),
            "dropout alone fails nothing"
        );
    }

    #[test]
    fn full_inflight_table_rejects_new_leaders_with_503() {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(oic_scenarios::DoubleIntegratorScenario));
        let server = SweepServer::with_config(
            registry,
            CellCache::in_memory(),
            ServeConfig {
                max_inflight: 0,
                ..ServeConfig::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = Arc::clone(&server);
        std::thread::spawn(move || accept.serve(listener));

        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{SPEC}",
            SPEC.len()
        );
        let response = send(addr, &request);
        assert!(
            response.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{response}"
        );
        assert!(response.contains("Retry-After: 1"), "{response}");
        assert!(http_body(&response).contains("\"error\""), "{response}");
        assert_eq!(server.rejected_busy_count(), 1);
        // The line dialect gets the same error document, sans HTTP head.
        let line = send(addr, &format!("sweep {SPEC}\n"));
        assert!(line.contains("max in-flight"), "{line}");
        assert_eq!(server.rejected_busy_count(), 2);
        // Health stays up even when sweeps are refused.
        assert_eq!(send(addr, "health\n"), "ok\n");
    }

    #[test]
    fn shutdown_route_drains_the_accept_loop() {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(oic_scenarios::DoubleIntegratorScenario));
        let server = SweepServer::with_config(
            registry,
            CellCache::in_memory(),
            ServeConfig {
                allow_shutdown: true,
                ..ServeConfig::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = Arc::clone(&server);
        let loop_thread = std::thread::spawn(move || accept.serve(listener));

        // A request in flight when the drain starts still completes.
        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{SPEC}",
            SPEC.len()
        );
        let body = http_body(&send(addr, &request)).to_string();
        assert!(body.contains("\"done\""), "{body}");

        let response = send(addr, "POST /v1/shutdown HTTP/1.1\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(server.is_draining());
        loop_thread.join().expect("serve loop exits after drain");
    }

    #[test]
    fn shutdown_is_forbidden_unless_enabled() {
        let (server, addr) = test_server();
        let response = send(addr, "POST /v1/shutdown HTTP/1.1\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 403"), "{response}");
        assert!(!server.is_draining());
        let line = send(addr, "shutdown\n");
        assert!(line.contains("--allow-shutdown"), "{line}");
        assert!(!server.is_draining());
    }

    #[test]
    fn bad_specs_are_rejected_without_a_stream() {
        let (_server, addr) = test_server();
        let bad = "{\"policies\":[]}";
        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{bad}",
            bad.len()
        );
        let response = send(addr, &request);
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(http_body(&response).contains("\"error\""));
        let unknown = r#"{"scenarios":["warp-drive"],"policies":["bang-bang"]}"#;
        let request = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{unknown}",
            unknown.len()
        );
        let response = send(addr, &request);
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(http_body(&response).contains("warp-drive"));
        let missing = send(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }
}
