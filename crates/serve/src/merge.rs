//! Shard-report merging: interleave `n` shard reports back into the
//! byte-identical unsharded report.
//!
//! The shard contract (`docs/PROTOCOL.md`): a sweep's materialized
//! cells carry global indices `g` in registry-major order, shard `i/n`
//! owns exactly the cells with `g % n == i` *in ascending `g` order*,
//! and its report records `"shard": "i/n"`. Merging is therefore pure
//! interleaving — `merged.cells[g] = shard[g % n].cells[g / n]` — plus
//! recomputing the violation tally. Because the engine's JSON writer
//! round-trips its own output byte-for-byte (integer-form floats,
//! shortest-roundtrip rendering), the merged document is byte-identical
//! to what an unsharded run would have written.

use oic_engine::JsonValue;

/// Merges shard report documents (JSON text, any order) into the
/// unsharded report text (pretty-printed, like the batch bin writes).
///
/// # Errors
///
/// Returns a message when the inputs are not exactly one report per
/// shard of one sweep: mixed kinds/versions/seeds, a missing or
/// duplicated shard index, a shard count that does not match the number
/// of inputs, or per-shard cell counts that cannot interleave cleanly.
pub fn merge_reports(texts: &[String]) -> Result<String, String> {
    if texts.is_empty() {
        return Err("no shard reports given".to_string());
    }
    let mut shards: Vec<Option<JsonValue>> = vec![None; texts.len()];
    let mut seed: Option<String> = None;
    let mut version: Option<JsonValue> = None;
    for (at, text) in texts.iter().enumerate() {
        let doc =
            JsonValue::parse(text).map_err(|e| format!("shard input #{at} is not JSON: {e}"))?;
        if doc.get("kind").and_then(JsonValue::as_str) != Some("oic-engine-batch") {
            return Err(format!(
                "shard input #{at} is not an oic-engine-batch report"
            ));
        }
        let shard_text = doc
            .get("shard")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("shard input #{at} has no \"shard\" key (already merged?)"))?;
        let (index, of) = shard_text
            .split_once('/')
            .ok_or_else(|| format!("shard input #{at}: malformed shard {shard_text:?}"))?;
        let index: usize = index
            .parse()
            .map_err(|_| format!("shard input #{at}: malformed shard {shard_text:?}"))?;
        let of: usize = of
            .parse()
            .map_err(|_| format!("shard input #{at}: malformed shard {shard_text:?}"))?;
        if of != texts.len() {
            return Err(format!(
                "shard {shard_text} expects {of} inputs, got {}",
                texts.len()
            ));
        }
        if index >= of {
            return Err(format!("shard index {index} out of range for {of} shards"));
        }
        let this_seed = doc
            .get("seed")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("shard input #{at} has no seed"))?
            .to_string();
        match &seed {
            None => {
                seed = Some(this_seed);
                version = doc.get("version").cloned();
            }
            Some(expected) => {
                if expected != &this_seed {
                    return Err(format!(
                        "shard seeds disagree: {expected:?} vs {this_seed:?} — not one sweep"
                    ));
                }
                if version.as_ref().map(JsonValue::to_json)
                    != doc.get("version").map(JsonValue::to_json)
                {
                    return Err("shard report versions disagree".to_string());
                }
            }
        }
        if shards[index].is_some() {
            return Err(format!("shard {index}/{of} appears twice"));
        }
        shards[index] = Some(doc);
    }
    let shards: Vec<JsonValue> = shards
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| format!("shard {i}/{} is missing", texts.len())))
        .collect::<Result<_, _>>()?;

    let n = shards.len();
    let cells_of = |shard: &JsonValue| -> Result<Vec<JsonValue>, String> {
        Ok(shard
            .get("cells")
            .and_then(JsonValue::as_array)
            .ok_or("shard report has no cells array")?
            .to_vec())
    };
    let per_shard: Vec<Vec<JsonValue>> = shards.iter().map(cells_of).collect::<Result<_, _>>()?;
    let total: usize = per_shard.iter().map(Vec::len).sum();

    let mut cells = Vec::with_capacity(total);
    let mut violations = 0usize;
    for g in 0..total {
        let cell = per_shard[g % n].get(g / n).ok_or_else(|| {
            format!(
                "shard {} is short: no cell {} (global index {g}) — shards are not from one sweep",
                g % n,
                g / n
            )
        })?;
        // Failed cells (schema v3) carry no aggregate tallies — they
        // contribute zero violations but still occupy their slot.
        violations += match cell.get("safety_violations").and_then(JsonValue::as_usize) {
            Some(count) => count,
            None if cell.get("outcome").and_then(JsonValue::as_str) == Some("failed") => 0,
            None => return Err(format!("cell {g} has no safety_violations tally")),
        };
        cells.push(cell.clone());
    }
    // Interleaving consumed every per-shard cell exactly once iff the
    // counts matched ceil((total - i) / n); a long shard means the
    // inputs mix sweeps.
    for (i, shard_cells) in per_shard.iter().enumerate() {
        let expected = total / n + usize::from(i < total % n);
        if shard_cells.len() != expected {
            return Err(format!(
                "shard {i} has {} cells, expected {expected} of {total} total",
                shard_cells.len()
            ));
        }
    }

    let mut doc = JsonValue::object().with("kind", "oic-engine-batch");
    if let Some(version) = version {
        doc = doc.with("version", version);
    }
    Ok(doc
        .with("seed", seed.expect("at least one shard"))
        .with("cells", JsonValue::Array(cells))
        .with("total_safety_violations", violations)
        .to_json_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_engine::{run_batch_opts, BatchConfig, PolicySpec, ShardInfo, SweepOptions};
    use oic_scenarios::{DoubleIntegratorScenario, ScenarioRegistry};

    fn registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(DoubleIntegratorScenario));
        registry
    }

    fn render(policies: &[PolicySpec], shard: Option<ShardInfo>) -> String {
        let config = BatchConfig {
            episodes: 3,
            steps: 15,
            seed: 13,
            ..Default::default()
        };
        let opts = SweepOptions {
            shard,
            ..Default::default()
        };
        let (report, _) = run_batch_opts(&registry(), policies, &config, &opts).unwrap();
        report.to_json(false).to_json_pretty()
    }

    const ROSTER: [PolicySpec; 3] = [
        PolicySpec::AlwaysRun,
        PolicySpec::BangBang,
        PolicySpec::Periodic(4),
    ];

    #[test]
    fn merged_shards_are_byte_identical_to_the_unsharded_report() {
        let baseline = render(&ROSTER, None);
        let shard0 = render(&ROSTER, Some(ShardInfo { index: 0, of: 2 }));
        let shard1 = render(&ROSTER, Some(ShardInfo { index: 1, of: 2 }));
        // Input order must not matter.
        let merged = merge_reports(&[shard1.clone(), shard0.clone()]).unwrap();
        assert_eq!(merged, baseline);
        let merged = merge_reports(&[shard0, shard1]).unwrap();
        assert_eq!(merged, baseline);
    }

    #[test]
    fn single_shard_merge_strips_the_shard_key() {
        let baseline = render(&ROSTER, None);
        let only = render(&ROSTER, Some(ShardInfo { index: 0, of: 1 }));
        assert_ne!(only, baseline, "shard reports carry the shard key");
        assert_eq!(merge_reports(&[only]).unwrap(), baseline);
    }

    #[test]
    fn shards_with_failed_cells_merge_byte_identically() {
        use oic_engine::FaultPlan;
        let plan = FaultPlan {
            seed: 7,
            panic_rate: 1.0,
            nan_rate: 0.0,
        };
        let config = BatchConfig {
            episodes: 3,
            steps: 15,
            seed: 13,
            ..Default::default()
        };
        let render = |shard: Option<ShardInfo>| {
            let opts = SweepOptions {
                shard,
                faults: Some(&plan),
                ..Default::default()
            };
            let (report, _) = run_batch_opts(&registry(), &ROSTER, &config, &opts).unwrap();
            report.to_json(false).to_json_pretty()
        };
        let baseline = render(None);
        assert!(baseline.contains("\"outcome\": \"failed\""), "{baseline}");
        assert!(baseline.contains("\"version\": 3"), "{baseline}");
        let merged = render(Some(ShardInfo { index: 0, of: 2 }));
        let merged = merge_reports(&[merged, render(Some(ShardInfo { index: 1, of: 2 }))]).unwrap();
        assert_eq!(merged, baseline);
    }

    #[test]
    fn inconsistent_inputs_are_rejected() {
        let shard0 = render(&ROSTER, Some(ShardInfo { index: 0, of: 2 }));
        let shard1 = render(&ROSTER, Some(ShardInfo { index: 1, of: 2 }));
        let unsharded = render(&ROSTER, None);
        assert!(merge_reports(&[]).unwrap_err().contains("no shard"));
        assert!(
            merge_reports(std::slice::from_ref(&shard0))
                .unwrap_err()
                .contains("expects 2 inputs"),
            "missing sibling"
        );
        assert!(
            merge_reports(&[shard0.clone(), shard0.clone()])
                .unwrap_err()
                .contains("appears twice"),
            "duplicate shard"
        );
        assert!(
            merge_reports(&[unsharded])
                .unwrap_err()
                .contains("no \"shard\" key"),
            "already merged input"
        );
        // A shard of a different sweep (different seed) cannot mix in.
        let config = BatchConfig {
            episodes: 3,
            steps: 15,
            seed: 14,
            ..Default::default()
        };
        let opts = SweepOptions {
            shard: Some(ShardInfo { index: 1, of: 2 }),
            ..Default::default()
        };
        let (other, _) = run_batch_opts(&registry(), &ROSTER, &config, &opts).unwrap();
        assert!(
            merge_reports(&[shard0, other.to_json(false).to_json_pretty()])
                .unwrap_err()
                .contains("seeds disagree")
        );
        let _ = shard1;
    }
}
