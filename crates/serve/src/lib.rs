//! The sweep service: long-running HTTP/line-protocol access to the
//! deterministic batch engine, with a content-addressed result cache.
//!
//! The ROADMAP's north star is serving heavy sweep traffic. Every
//! `(scenario, policy)` cell the engine produces is a pure function of
//! its canonical spec hash (`oic_engine::spec`), which makes three
//! service-side optimizations safe *by construction* — none of them can
//! change a single response byte:
//!
//! * **Cell caching** ([`oic_engine::CellCache`]): results are stored
//!   under their content address (in-memory LRU over an on-disk store);
//!   repeated or overlapping sweeps skip the episode loops for every
//!   cell already known.
//! * **Request coalescing** ([`SweepServer`]): a request whose spec
//!   hash matches an in-flight sweep attaches to the leader's byte
//!   stream instead of recomputing.
//! * **Sharding + merge** ([`merge_reports`]): `batch --shard i/n`
//!   reports interleave back into the byte-identical unsharded report.
//!
//! The service degrades instead of failing ([`ServeConfig`]): socket
//! read/write deadlines bound every connection, the in-flight table is
//! bounded (`503` + `Retry-After` for would-be leaders; coalescing
//! followers always attach), a panicking sweep handler turns into an
//! `error` NDJSON trailer rather than a dropped stream, and shutdown
//! drains in-flight connections gracefully (`--allow-shutdown`). See
//! `docs/ROBUSTNESS.md`.
//!
//! The wire protocol — canonicalization rules, cell-hash definition,
//! the NDJSON stream, the shard/merge contract, worked `curl`/netcat
//! sessions — is specified in `docs/PROTOCOL.md`; the crate map and the
//! per-layer determinism invariants live in `docs/ARCHITECTURE.md`.
//!
//! # Quickstart
//!
//! ```no_run
//! use oic_engine::CellCache;
//! use oic_scenarios::ScenarioRegistry;
//! use oic_serve::SweepServer;
//!
//! let server = SweepServer::new(ScenarioRegistry::standard(), CellCache::in_memory());
//! let listener = std::net::TcpListener::bind("127.0.0.1:8787").unwrap();
//! server.serve(listener); // accepts connections forever
//! ```
//!
//! ```text
//! $ echo 'sweep {"scenarios":["acc"],"policies":["bang-bang"]}' | nc 127.0.0.1 8787
//! {"kind":"oic-sweep-response","version":1,"spec_hash":"…","seed":"2020"}
//! {"cell":0,"data":{"scenario":"acc","policy":"bang-bang",…}}
//! {"done":true,"cells":1,"total_safety_violations":0}
//! ```

mod http;
mod merge;
mod server;

pub use http::{
    read_request, write_response, write_response_ext, write_stream_head, Request, MAX_BODY,
};
pub use merge::merge_reports;
pub use server::{error_body, ServeConfig, SweepServer};
