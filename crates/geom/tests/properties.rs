//! Property-based tests of the polytope/zonotope layer: the set operations
//! must *transport membership* correctly, which is exactly what the safety
//! machinery relies on.

use oic_geom::{minkowski_sum_2d, polytope_from_points_2d, Polytope, SupportFunction, Zonotope};
use oic_linalg::Matrix;
use proptest::prelude::*;

fn box2d() -> impl Strategy<Value = Polytope> {
    ((-5.0f64..0.0), (0.1f64..5.0), (-5.0f64..0.0), (0.1f64..5.0))
        .prop_map(|(lx, wx, ly, wy)| Polytope::from_box(&[lx, ly], &[lx + wx, ly + wy]))
}

fn point2d() -> impl Strategy<Value = [f64; 2]> {
    [(-6.0f64..6.0), (-6.0f64..6.0)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Minkowski difference: x ∈ P ⊖ W ⟺ x + w ∈ P for the extreme w.
    #[test]
    fn minkowski_diff_transports_membership(p in box2d(), x in point2d()) {
        let w = Polytope::from_box(&[-0.5, -0.25], &[0.5, 0.25]);
        let d = p.minkowski_diff(&w).unwrap();
        if d.contains_with_tol(&x, -1e-9) {
            for wx in [[-0.5, -0.25], [0.5, -0.25], [-0.5, 0.25], [0.5, 0.25]] {
                prop_assert!(p.contains_with_tol(&[x[0] + wx[0], x[1] + wx[1]], 1e-7));
            }
        }
    }

    /// Pre-image: x ∈ preimage(M, c) ⟺ Mx + c ∈ P.
    #[test]
    fn preimage_transports_membership(p in box2d(), x in point2d()) {
        let m = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let c = [0.3, -0.2];
        let pre = p.preimage(&m, &c);
        let y = m.mul_vec(&x);
        let image = [y[0] + c[0], y[1] + c[1]];
        prop_assert_eq!(
            pre.contains_with_tol(&x, 1e-9),
            p.contains_with_tol(&image, 1e-9 * 2.0),
            "x = {:?}, Mx+c = {:?}", x, image
        );
    }

    /// Intersection is exactly conjunction of membership.
    #[test]
    fn intersection_is_conjunction(a in box2d(), b in box2d(), x in point2d()) {
        let i = a.intersection(&b);
        prop_assert_eq!(i.contains(&x), a.contains(&x) && b.contains(&x));
    }

    /// Redundancy removal preserves the set.
    #[test]
    fn remove_redundant_preserves_set(a in box2d(), b in box2d(), x in point2d()) {
        let p = a.intersection(&b);
        let r = p.remove_redundant();
        // Equality of membership except within a hair of the boundary.
        if p.min_slack(&x).abs() > 1e-6 {
            prop_assert_eq!(r.contains(&x), p.contains(&x));
        }
        prop_assert!(r.num_halfspaces() <= p.num_halfspaces());
    }

    /// Support function characterizes membership: x ∈ P ⟹ d·x ≤ h_P(d).
    #[test]
    fn support_bounds_members(p in box2d(), x in point2d(), d in point2d()) {
        if p.contains(&x) {
            let h = p.support(&d).unwrap();
            let dx = d[0] * x[0] + d[1] * x[1];
            prop_assert!(dx <= h + 1e-7);
        }
    }

    /// Support is sublinear: h(d1 + d2) ≤ h(d1) + h(d2).
    #[test]
    fn support_is_sublinear(p in box2d(), d1 in point2d(), d2 in point2d()) {
        let h1 = p.support(&d1).unwrap();
        let h2 = p.support(&d2).unwrap();
        let hs = p.support(&[d1[0] + d2[0], d1[1] + d2[1]]).unwrap();
        prop_assert!(hs <= h1 + h2 + 1e-7);
    }

    /// Fourier–Motzkin: membership in the projection has a witness, and
    /// every full point projects into the projection.
    #[test]
    fn projection_soundness(p in box2d(), x in point2d(), z in -5.0f64..5.0) {
        // Lift to 3-D with a coupling constraint, then eliminate z.
        let mut hs = Vec::new();
        for h in p.halfspaces() {
            let mut n = h.normal().to_vec();
            n.push(0.0);
            hs.push(oic_geom::Halfspace::new(n, h.offset()));
        }
        hs.push(oic_geom::Halfspace::new(vec![0.5, 0.5, 1.0], 3.0));
        hs.push(oic_geom::Halfspace::new(vec![0.0, 0.0, -1.0], 5.0));
        let lifted = Polytope::new(3, hs);
        let projected = lifted.eliminate(2);
        // Completeness direction: (x, z) ∈ lifted ⟹ x ∈ projected.
        if lifted.contains(&[x[0], x[1], z]) {
            prop_assert!(projected.contains_with_tol(&x, 1e-6));
        }
    }

    /// Zonotope support equals polytope support after conversion (2-D).
    #[test]
    fn zonotope_polytope_support_agree(
        g1 in point2d(),
        g2 in point2d(),
        d in point2d(),
    ) {
        prop_assume!(d[0].abs() + d[1].abs() > 1e-6);
        let z = Zonotope::new(vec![0.0, 0.0], vec![g1.to_vec(), g2.to_vec()]);
        let p = z.to_polytope_2d().unwrap();
        let hz = z.support(&d).unwrap();
        let hp = p.support(&d).unwrap();
        prop_assert!((hz - hp).abs() < 1e-6, "{hz} vs {hp}");
    }

    /// Zonotope membership agrees with its polytope form (2-D).
    #[test]
    fn zonotope_membership_agrees(g1 in point2d(), g2 in point2d(), x in point2d()) {
        let z = Zonotope::new(vec![0.0, 0.0], vec![g1.to_vec(), g2.to_vec()]);
        let p = z.to_polytope_2d().unwrap();
        // Skip razor-thin boundary disagreements.
        if p.min_slack(&x).abs() > 1e-6 {
            prop_assert_eq!(z.contains(&x), p.contains(&x));
        }
    }

    /// Minkowski sum on vertices: sums of member points are members.
    #[test]
    fn minkowski_sum_contains_pointwise_sums(a in box2d(), b in box2d()) {
        let s = minkowski_sum_2d(&a, &b).unwrap();
        let va = a.vertices_2d().unwrap();
        let vb = b.vertices_2d().unwrap();
        for p in &va {
            for q in &vb {
                prop_assert!(s.contains_with_tol(&[p[0] + q[0], p[1] + q[1]], 1e-6));
            }
        }
    }

    /// V-rep → H-rep: hull of random points contains exactly the points.
    #[test]
    fn hull_contains_its_points(
        pts in prop::collection::vec(point2d(), 3..12),
    ) {
        let p = polytope_from_points_2d(&pts).unwrap();
        for pt in &pts {
            prop_assert!(p.contains_with_tol(pt, 1e-6), "{pt:?} outside its own hull");
        }
    }
}
