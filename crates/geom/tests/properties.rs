//! Property-based tests of the polytope/zonotope layer: the set operations
//! must *transport membership* correctly, which is exactly what the safety
//! machinery relies on.

use oic_geom::{
    minkowski_sum_2d_vertex_reference, polytope_from_points_2d, Polytope, SupportFunction, Zonotope,
};
use oic_linalg::Matrix;
use proptest::prelude::*;

fn box2d() -> impl Strategy<Value = Polytope> {
    ((-5.0f64..0.0), (0.1f64..5.0), (-5.0f64..0.0), (0.1f64..5.0))
        .prop_map(|(lx, wx, ly, wy)| Polytope::from_box(&[lx, ly], &[lx + wx, ly + wy]))
}

fn point2d() -> impl Strategy<Value = [f64; 2]> {
    [(-6.0f64..6.0), (-6.0f64..6.0)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Minkowski difference: x ∈ P ⊖ W ⟺ x + w ∈ P for the extreme w.
    #[test]
    fn minkowski_diff_transports_membership(p in box2d(), x in point2d()) {
        let w = Polytope::from_box(&[-0.5, -0.25], &[0.5, 0.25]);
        let d = p.minkowski_diff(&w).unwrap();
        if d.contains_with_tol(&x, -1e-9) {
            for wx in [[-0.5, -0.25], [0.5, -0.25], [-0.5, 0.25], [0.5, 0.25]] {
                prop_assert!(p.contains_with_tol(&[x[0] + wx[0], x[1] + wx[1]], 1e-7));
            }
        }
    }

    /// Pre-image: x ∈ preimage(M, c) ⟺ Mx + c ∈ P.
    #[test]
    fn preimage_transports_membership(p in box2d(), x in point2d()) {
        let m = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let c = [0.3, -0.2];
        let pre = p.preimage(&m, &c);
        let y = m.mul_vec(&x);
        let image = [y[0] + c[0], y[1] + c[1]];
        prop_assert_eq!(
            pre.contains_with_tol(&x, 1e-9),
            p.contains_with_tol(&image, 1e-9 * 2.0),
            "x = {:?}, Mx+c = {:?}", x, image
        );
    }

    /// Intersection is exactly conjunction of membership.
    #[test]
    fn intersection_is_conjunction(a in box2d(), b in box2d(), x in point2d()) {
        let i = a.intersection(&b);
        prop_assert_eq!(i.contains(&x), a.contains(&x) && b.contains(&x));
    }

    /// Redundancy removal preserves the set.
    #[test]
    fn remove_redundant_preserves_set(a in box2d(), b in box2d(), x in point2d()) {
        let p = a.intersection(&b);
        let r = p.remove_redundant();
        // Equality of membership except within a hair of the boundary.
        if p.min_slack(&x).abs() > 1e-6 {
            prop_assert_eq!(r.contains(&x), p.contains(&x));
        }
        prop_assert!(r.num_halfspaces() <= p.num_halfspaces());
    }

    /// Support function characterizes membership: x ∈ P ⟹ d·x ≤ h_P(d).
    #[test]
    fn support_bounds_members(p in box2d(), x in point2d(), d in point2d()) {
        if p.contains(&x) {
            let h = p.support(&d).unwrap();
            let dx = d[0] * x[0] + d[1] * x[1];
            prop_assert!(dx <= h + 1e-7);
        }
    }

    /// Support is sublinear: h(d1 + d2) ≤ h(d1) + h(d2).
    #[test]
    fn support_is_sublinear(p in box2d(), d1 in point2d(), d2 in point2d()) {
        let h1 = p.support(&d1).unwrap();
        let h2 = p.support(&d2).unwrap();
        let hs = p.support(&[d1[0] + d2[0], d1[1] + d2[1]]).unwrap();
        prop_assert!(hs <= h1 + h2 + 1e-7);
    }

    /// Fourier–Motzkin: membership in the projection has a witness, and
    /// every full point projects into the projection.
    #[test]
    fn projection_soundness(p in box2d(), x in point2d(), z in -5.0f64..5.0) {
        // Lift to 3-D with a coupling constraint, then eliminate z.
        let mut hs = Vec::new();
        for h in p.halfspaces() {
            let mut n = h.normal().to_vec();
            n.push(0.0);
            hs.push(oic_geom::Halfspace::new(n, h.offset()));
        }
        hs.push(oic_geom::Halfspace::new(vec![0.5, 0.5, 1.0], 3.0));
        hs.push(oic_geom::Halfspace::new(vec![0.0, 0.0, -1.0], 5.0));
        let lifted = Polytope::new(3, hs);
        let projected = lifted.eliminate(2);
        // Completeness direction: (x, z) ∈ lifted ⟹ x ∈ projected.
        if lifted.contains(&[x[0], x[1], z]) {
            prop_assert!(projected.contains_with_tol(&x, 1e-6));
        }
    }

    /// Zonotope support equals polytope support after conversion (2-D).
    #[test]
    fn zonotope_polytope_support_agree(
        g1 in point2d(),
        g2 in point2d(),
        d in point2d(),
    ) {
        prop_assume!(d[0].abs() + d[1].abs() > 1e-6);
        let z = Zonotope::new(vec![0.0, 0.0], vec![g1.to_vec(), g2.to_vec()]);
        let p = z.to_polytope_2d().unwrap();
        let hz = z.support(&d).unwrap();
        let hp = p.support(&d).unwrap();
        prop_assert!((hz - hp).abs() < 1e-6, "{hz} vs {hp}");
    }

    /// Zonotope membership agrees with its polytope form (2-D).
    #[test]
    fn zonotope_membership_agrees(g1 in point2d(), g2 in point2d(), x in point2d()) {
        let z = Zonotope::new(vec![0.0, 0.0], vec![g1.to_vec(), g2.to_vec()]);
        let p = z.to_polytope_2d().unwrap();
        // Skip razor-thin boundary disagreements.
        if p.min_slack(&x).abs() > 1e-6 {
            prop_assert_eq!(z.contains(&x), p.contains(&x));
        }
    }

    /// Minkowski sum on vertices: sums of member points are members, and
    /// the dimension-generic projection path agrees with the retained
    /// planar vertex-hull reference.
    #[test]
    fn minkowski_sum_contains_pointwise_sums(a in box2d(), b in box2d()) {
        let s = a.minkowski_sum(&b).unwrap();
        let reference = minkowski_sum_2d_vertex_reference(&a, &b).unwrap();
        prop_assert!(s.set_eq(&reference, 1e-6).unwrap());
        let va = a.vertices_2d().unwrap();
        let vb = b.vertices_2d().unwrap();
        for p in &va {
            for q in &vb {
                prop_assert!(s.contains_with_tol(&[p[0] + q[0], p[1] + q[1]], 1e-6));
            }
        }
    }

    /// V-rep → H-rep: hull of random points contains exactly the points.
    #[test]
    fn hull_contains_its_points(
        pts in prop::collection::vec(point2d(), 3..12),
    ) {
        let p = polytope_from_points_2d(&pts).unwrap();
        for pt in &pts {
            prop_assert!(p.contains_with_tol(pt, 1e-6), "{pt:?} outside its own hull");
        }
    }
}

/// A random box in `dim` dimensions with a coupling halfspace that cuts it
/// but keeps the center feasible, plus a query direction on the first two
/// coordinates. Exercises Fourier–Motzkin in dimensions 3–6.
fn lifted_box_case() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>, [f64; 2])> {
    (3usize..=6).prop_flat_map(|dim| {
        (
            prop::collection::vec(-3.0f64..0.0, dim),
            prop::collection::vec(0.1f64..3.0, dim),
            prop::collection::vec(-1.0f64..1.0, dim),
            point2d(),
        )
            .prop_map(|(lo, width, coupling, d)| {
                let hi: Vec<f64> = lo.iter().zip(&width).map(|(l, w)| l + w).collect();
                (lo, hi, coupling, d)
            })
    })
}

/// Random zonotope (dim + 1 generators) in dimensions 3–4 plus a query
/// direction on the first two coordinates.
fn lifted_zonotope_case() -> impl Strategy<Value = (Zonotope, [f64; 2])> {
    (3usize..=4).prop_flat_map(|dim| {
        (
            prop::collection::vec(-1.0f64..1.0, dim),
            prop::collection::vec(prop::collection::vec(-1.0f64..1.0, dim), dim + 1),
            point2d(),
        )
            .prop_map(|(center, generators, d)| (Zonotope::new(center, generators), d))
    })
}

proptest! {
    // Fewer cases: each case runs several Fourier–Motzkin eliminations
    // with LP-based pruning.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fourier–Motzkin projection preserves the support function on the
    /// kept coordinates: `h_{proj(P)}(d) = h_P((d, 0, …, 0))`. Cross-checks
    /// the n-D elimination pipeline (including its redundancy pruning)
    /// against direct LP support evaluation on the unprojected polytope,
    /// up to dimension 6.
    #[test]
    fn projection_preserves_support_boxes((lo, hi, coupling, d) in lifted_box_case()) {
        prop_assume!(d[0].abs() + d[1].abs() > 1e-3);
        let dim = lo.len();
        let base = Polytope::from_box(&lo, &hi);
        // A coupling facet through a point between center and the support
        // extreme, so it genuinely cuts the box but keeps it non-empty.
        let center: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| 0.5 * (l + h)).collect();
        let c_dot: f64 = coupling.iter().zip(&center).map(|(c, x)| c * x).sum();
        let h_c = base.support(&coupling).unwrap();
        let mut rows = base.halfspaces().to_vec();
        rows.push(oic_geom::Halfspace::new(
            coupling.clone(),
            c_dot + 0.6 * (h_c - c_dot),
        ));
        let lifted = Polytope::new(dim, rows);
        let projected = lifted.project_to_first(2);
        let mut full_dir = vec![0.0; dim];
        full_dir[0] = d[0];
        full_dir[1] = d[1];
        let direct = lifted.support(&full_dir).unwrap();
        let via_projection = projected.support(&d).unwrap();
        prop_assert!(
            (direct - via_projection).abs() < 1e-6,
            "dim {}: direct {} vs projected {}", dim, direct, via_projection
        );
    }

    /// Same cross-check against the *analytic* zonotope support: convert a
    /// random n-D zonotope to H-rep, project to the first two coordinates,
    /// and compare supports with the generator formula.
    #[test]
    fn projection_preserves_support_zonotopes((z, d) in lifted_zonotope_case()) {
        prop_assume!(d[0].abs() + d[1].abs() > 1e-3);
        let p = z.to_polytope().unwrap();
        let projected = p.project_to_first(2);
        let mut full_dir = vec![0.0; z.dim()];
        full_dir[0] = d[0];
        full_dir[1] = d[1];
        let analytic = z.support(&full_dir).unwrap();
        let via_projection = projected.support(&d).unwrap();
        prop_assert!(
            (analytic - via_projection).abs() < 1e-6,
            "dim {}: analytic {} vs projected {}", z.dim(), analytic, via_projection
        );
    }

    /// The n-D H-rep conversion agrees with the analytic support function
    /// in random directions (dimensions 3–4, including rank-deficient
    /// generator sets).
    #[test]
    fn zonotope_to_polytope_supports_agree((z, d) in lifted_zonotope_case()) {
        let p = z.to_polytope().unwrap();
        let mut dir = vec![0.0; z.dim()];
        dir[0] = d[0];
        dir[1] = d[1];
        if z.dim() > 2 {
            dir[2] = 0.5 * (d[0] + d[1]);
        }
        let hz = z.support(&dir).unwrap();
        let hp = p.support(&dir).unwrap();
        prop_assert!((hz - hp).abs() < 1e-6, "{hz} vs {hp}");
    }
}
