//! Support functions of convex sets.

use oic_linalg::Matrix;

use crate::GeomError;

/// A convex set queried through its support function
/// `h(d) = sup { d · x : x ∈ S }`.
///
/// All the Minkowski arithmetic in this workspace is expressed through
/// support functions: `P ⊖ S` only needs `h_S` evaluated at the facet
/// normals of `P`, and the tightened-constraint recursion of the robust MPC
/// only needs `h_{A^k W}`.
pub trait SupportFunction {
    /// Ambient dimension of the set.
    fn dim(&self) -> usize;

    /// Evaluates the support function in direction `d`.
    ///
    /// # Errors
    ///
    /// * [`GeomError::Unbounded`] — the set is unbounded in direction `d`.
    /// * [`GeomError::EmptySet`] — the set is empty.
    fn support(&self, direction: &[f64]) -> Result<f64, GeomError>;

    /// Evaluates the support function in many directions at once.
    ///
    /// The default just loops [`support`](Self::support); implementations
    /// backed by an LP override this to reuse one warm-started program
    /// across the whole batch (the facet loop of
    /// [`crate::Polytope::minkowski_diff`] is the main caller — one
    /// Minkowski difference queries every facet normal of the same set).
    ///
    /// # Errors
    ///
    /// Same contract as [`support`](Self::support); the first failing
    /// direction aborts the batch.
    fn support_batch(&self, directions: &[&[f64]]) -> Result<Vec<f64>, GeomError> {
        directions.iter().map(|d| self.support(d)).collect()
    }
}

/// The linear image `{ M·s : s ∈ S }` of a convex set, as a lazy view.
///
/// Uses the identity `h_{M·S}(d) = h_S(Mᵀ d)`, so no set representation is
/// materialized. The robust-MPC tightening recursion evaluates
/// `h_{A^{k−1} W}` this way.
///
/// # Examples
///
/// ```
/// use oic_geom::{AffineImage, Polytope, SupportFunction};
/// use oic_linalg::Matrix;
///
/// # fn main() -> Result<(), oic_geom::GeomError> {
/// let w = Polytope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
/// let double = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
/// let img = AffineImage::new(&double, &w);
/// assert!((img.support(&[1.0, 0.0])? - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AffineImage<'a, S> {
    matrix: &'a Matrix,
    set: &'a S,
}

impl<'a, S: SupportFunction> AffineImage<'a, S> {
    /// Creates the view `{ matrix · s : s ∈ set }`.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.cols() != set.dim()`.
    pub fn new(matrix: &'a Matrix, set: &'a S) -> Self {
        assert_eq!(matrix.cols(), set.dim(), "matrix/set dimension mismatch");
        Self { matrix, set }
    }
}

impl<S: SupportFunction> SupportFunction for AffineImage<'_, S> {
    fn dim(&self) -> usize {
        self.matrix.rows()
    }

    fn support(&self, direction: &[f64]) -> Result<f64, GeomError> {
        assert_eq!(direction.len(), self.dim(), "direction dimension mismatch");
        // h_{M S}(d) = h_S(Mᵀ d); Mᵀ d computed as dᵀ M.
        let pulled = self.matrix.vec_mul(direction);
        self.set.support(&pulled)
    }

    /// Pulls every direction through `Mᵀ` and delegates to the underlying
    /// set's batch, so a warm-started implementation underneath is reused.
    fn support_batch(&self, directions: &[&[f64]]) -> Result<Vec<f64>, GeomError> {
        let pulled: Vec<Vec<f64>> = directions
            .iter()
            .map(|d| {
                assert_eq!(d.len(), self.dim(), "direction dimension mismatch");
                self.matrix.vec_mul(d)
            })
            .collect();
        let views: Vec<&[f64]> = pulled.iter().map(Vec::as_slice).collect();
        self.set.support_batch(&views)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polytope;

    #[test]
    fn affine_image_rotates_support() {
        // 90° rotation of the box [-1,1] x [-2,2].
        let w = Polytope::from_box(&[-1.0, -2.0], &[1.0, 2.0]);
        let rot = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let img = AffineImage::new(&rot, &w);
        // Direction e1 of the image pulls back to direction (0, -1)ᵀ... via
        // h(e1) = h_W(rotᵀ e1) = h_W((0, -1)) = 2.
        assert!((img.support(&[1.0, 0.0]).unwrap() - 2.0).abs() < 1e-9);
        assert!((img.support(&[0.0, 1.0]).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nested_affine_images_compose() {
        let w = Polytope::from_box(&[-1.0], &[1.0]);
        let lift = Matrix::from_rows(&[&[1.0], &[0.5]]);
        let img = AffineImage::new(&lift, &w);
        assert_eq!(img.dim(), 2);
        assert!((img.support(&[1.0, 2.0]).unwrap() - 2.0).abs() < 1e-9);
    }
}
