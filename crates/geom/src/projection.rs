//! Fourier–Motzkin elimination and orthogonal projection of polytopes.
//!
//! Projection is what turns "∃ inputs such that the constraints hold" into a
//! constraint on states alone. The two users in this workspace are:
//!
//! * the feasible set `X_F` of the robust MPC (Proposition 1: `X_I = X_F`),
//!   obtained by projecting the horizon-lifted constraint polytope onto the
//!   state coordinates, and
//! * the `Pre` operator of the maximal robust *control* invariant set,
//!   `Pre(Ω) = proj_x { (x,u) : Ax + Bu ∈ Ω ⊖ W, u ∈ U }`.
//!
//! Fourier–Motzkin elimination is exact but can square the constraint count
//! at each step, so redundancy is pruned with LPs after every elimination.
//! Under the forced revised LP backend (`OIC_LP_BACKEND=revised`) the
//! per-elimination pruning LPs all ride one compiled warm-start template —
//! shape-stable rows, RHS-only updates — instead of one cold solve per
//! candidate row (see `Polytope::remove_redundant`); the default backend
//! keeps the bit-stable cold path the committed baselines were recorded
//! with.

use crate::{Halfspace, Polytope};

/// Coefficient magnitude below which a variable is treated as absent from a
/// row.
const COEF_TOL: f64 = 1e-10;

impl Polytope {
    /// Eliminates coordinate `var` by Fourier–Motzkin, returning a polytope
    /// in dimension `dim − 1` describing
    /// `{ x₋ᵥ : ∃ xᵥ, x ∈ self }`.
    ///
    /// Redundant rows of the result are pruned with LPs.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or the polytope is 1-dimensional
    /// (eliminating the only variable would leave a 0-dimensional set).
    pub fn eliminate(&self, var: usize) -> Polytope {
        assert!(var < self.dim(), "variable index out of range");
        assert!(self.dim() > 1, "cannot eliminate the only variable");

        let drop_var = |normal: &[f64]| -> Vec<f64> {
            normal
                .iter()
                .enumerate()
                .filter_map(|(i, &v)| (i != var).then_some(v))
                .collect()
        };

        let mut pos: Vec<(Vec<f64>, f64)> = Vec::new(); // scaled: x_v + a'·x' ≤ b'
        let mut neg: Vec<(Vec<f64>, f64)> = Vec::new(); // scaled: -x_v + a'·x' ≤ b'
        let mut out: Vec<Halfspace> = Vec::new();

        for h in self.halfspaces() {
            let c = h.normal()[var];
            if c > COEF_TOL {
                let inv = 1.0 / c;
                let row: Vec<f64> = drop_var(h.normal()).iter().map(|v| v * inv).collect();
                pos.push((row, h.offset() * inv));
            } else if c < -COEF_TOL {
                let inv = 1.0 / (-c);
                let row: Vec<f64> = drop_var(h.normal()).iter().map(|v| v * inv).collect();
                neg.push((row, h.offset() * inv));
            } else {
                out.push(Halfspace::new(drop_var(h.normal()), h.offset()));
            }
        }

        for (ap, bp) in &pos {
            for (an, bn) in &neg {
                let normal: Vec<f64> = ap.iter().zip(an).map(|(p, n)| p + n).collect();
                out.push(Halfspace::new(normal, bp + bn));
            }
        }

        Polytope::new(self.dim() - 1, out).remove_redundant()
    }

    /// Projects onto the first `keep` coordinates:
    /// `{ (x₁,…,x_keep) : ∃ rest, x ∈ self }`.
    ///
    /// Variables are eliminated one at a time, choosing at each step the
    /// remaining variable with the smallest `positive × negative` row-count
    /// product (the standard fill-minimizing heuristic).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero or exceeds the dimension.
    pub fn project_to_first(&self, keep: usize) -> Polytope {
        assert!(
            keep > 0 && keep <= self.dim(),
            "invalid projection dimension"
        );
        let mut p = self.clone();
        // Track which original coordinate each current column refers to.
        let mut cols: Vec<usize> = (0..self.dim()).collect();
        while p.dim() > keep {
            // Candidates: columns holding an original index >= keep.
            let mut best: Option<(usize, usize)> = None; // (column, cost)
            for (col, &orig) in cols.iter().enumerate() {
                if orig < keep {
                    continue;
                }
                let mut npos = 0usize;
                let mut nneg = 0usize;
                for h in p.halfspaces() {
                    let c = h.normal()[col];
                    if c > COEF_TOL {
                        npos += 1;
                    } else if c < -COEF_TOL {
                        nneg += 1;
                    }
                }
                let cost = npos * nneg;
                if best.is_none_or(|(_, bc)| cost < bc) {
                    best = Some((col, cost));
                }
            }
            let (col, _) = best.expect("a column to eliminate must exist");
            p = p.eliminate(col);
            cols.remove(col);
        }
        // After elimination only the kept coordinates remain; restore their
        // original order (eliminations preserve relative order, and all kept
        // originals are < keep, so cols is already sorted — assert it).
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(cols, (0..keep).collect::<Vec<_>>());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eliminate_from_square() {
        // Project the unit square onto x: the interval [-1, 1].
        let b = Polytope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
        let p = b.eliminate(1);
        assert_eq!(p.dim(), 1);
        assert!(p.contains(&[1.0]));
        assert!(p.contains(&[-1.0]));
        assert!(!p.contains(&[1.1]));
    }

    #[test]
    fn eliminate_coupled_constraints() {
        // x + y ≤ 1, -x + y ≤ 1, y ≥ -1 → projecting out y gives x free in
        // [-2, 2]: from y ≥ -1 with x + y ≤ 1 → x ≤ 2; -x + y ≤ 1 → x ≥ -2.
        let p = Polytope::new(
            2,
            vec![
                Halfspace::new(vec![1.0, 1.0], 1.0),
                Halfspace::new(vec![-1.0, 1.0], 1.0),
                Halfspace::new(vec![0.0, -1.0], 1.0),
            ],
        );
        let q = p.eliminate(1);
        assert!(q.contains(&[2.0]));
        assert!(q.contains(&[-2.0]));
        assert!(!q.contains(&[2.1]));
        assert!(!q.contains(&[-2.1]));
    }

    #[test]
    fn projection_of_rotated_box_membership_agrees_with_witness() {
        // 3-D box constraints plus coupling; check: a point is in the
        // projection iff some witness extension is in the original.
        let p = Polytope::new(
            3,
            vec![
                Halfspace::new(vec![1.0, 0.0, 0.0], 1.0),
                Halfspace::new(vec![-1.0, 0.0, 0.0], 1.0),
                Halfspace::new(vec![0.0, 1.0, 0.0], 1.0),
                Halfspace::new(vec![0.0, -1.0, 0.0], 1.0),
                Halfspace::new(vec![0.0, 0.0, 1.0], 1.0),
                Halfspace::new(vec![0.0, 0.0, -1.0], 1.0),
                Halfspace::new(vec![1.0, 1.0, 1.0], 1.5),
            ],
        );
        let proj = p.project_to_first(2);
        // (1, 1): requires z ≤ -0.5, witness z = -0.5 works.
        assert!(proj.contains(&[1.0, 1.0]));
        // (-1, -1): witness z = 0.
        assert!(proj.contains(&[-1.0, -1.0]));
        // Outside the box → outside projection.
        assert!(!proj.contains(&[1.2, 0.0]));
    }

    #[test]
    fn project_keeps_requested_dimension() {
        let p = Polytope::from_box(&[-1.0, -2.0, -3.0, -4.0], &[1.0, 2.0, 3.0, 4.0]);
        let q = p.project_to_first(2);
        assert_eq!(q.dim(), 2);
        assert!(q.contains(&[1.0, 2.0]));
        assert!(!q.contains(&[1.0, 2.1]));
    }

    #[test]
    fn empty_polytope_projects_to_empty() {
        let p = Polytope::new(
            2,
            vec![
                Halfspace::new(vec![1.0, 0.0], -1.0),
                Halfspace::new(vec![-1.0, 0.0], -1.0),
            ],
        );
        assert!(p.is_empty());
        let q = p.eliminate(1);
        assert!(q.is_empty());
    }
}
