//! A single linear inequality `aᵀx ≤ b`.

use std::fmt;

/// The halfspace `{ x : normal · x ≤ offset }`.
///
/// # Examples
///
/// ```
/// use oic_geom::Halfspace;
///
/// let h = Halfspace::new(vec![1.0, 0.0], 2.0); // x₁ ≤ 2
/// assert!(h.contains(&[1.5, 100.0], 1e-9));
/// assert!(!h.contains(&[2.5, 0.0], 1e-9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Halfspace {
    normal: Vec<f64>,
    offset: f64,
}

impl Halfspace {
    /// Creates the halfspace `normal · x ≤ offset`.
    ///
    /// # Panics
    ///
    /// Panics if `normal` is empty or any entry is non-finite.
    pub fn new(normal: Vec<f64>, offset: f64) -> Self {
        assert!(!normal.is_empty(), "halfspace normal must be non-empty");
        assert!(
            normal.iter().all(|v| v.is_finite()) && offset.is_finite(),
            "halfspace entries must be finite"
        );
        Self { normal, offset }
    }

    /// The outward normal vector `a`.
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// The offset `b`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// Signed slack `offset − normal·x`; non-negative inside.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the ambient dimension.
    pub fn slack(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "point dimension mismatch");
        let mut dot = 0.0;
        for (a, v) in self.normal.iter().zip(x) {
            dot += a * v;
        }
        self.offset - dot
    }

    /// Tests membership with tolerance `tol ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the ambient dimension.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        self.slack(x) >= -tol
    }

    /// Returns a scaled copy with unit-length normal, or `None` when the
    /// normal is (numerically) zero.
    pub fn normalized(&self) -> Option<Halfspace> {
        let norm: f64 = self.normal.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return None;
        }
        Some(Halfspace {
            normal: self.normal.iter().map(|v| v / norm).collect(),
            offset: self.offset / norm,
        })
    }

    /// Returns the halfspace translated by `t`: `{x + t : aᵀx ≤ b}`.
    ///
    /// # Panics
    ///
    /// Panics if `t.len()` differs from the ambient dimension.
    pub fn translated(&self, t: &[f64]) -> Halfspace {
        assert_eq!(t.len(), self.dim(), "translation dimension mismatch");
        let shift: f64 = self.normal.iter().zip(t).map(|(a, v)| a * v).sum();
        Halfspace {
            normal: self.normal.clone(),
            offset: self.offset + shift,
        }
    }
}

impl fmt::Display for Halfspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.normal.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{a:.4}·x{i}")?;
        }
        write!(f, " ≤ {:.4}", self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_and_membership() {
        let h = Halfspace::new(vec![1.0, 1.0], 1.0);
        assert!((h.slack(&[0.25, 0.25]) - 0.5).abs() < 1e-12);
        assert!(h.contains(&[0.5, 0.5], 1e-9));
        assert!(h.contains(&[0.5, 0.5 + 1e-10], 1e-9));
        assert!(!h.contains(&[1.0, 1.0], 1e-9));
    }

    #[test]
    fn normalized_unit_length() {
        let h = Halfspace::new(vec![3.0, 4.0], 10.0);
        let n = h.normalized().unwrap();
        let len: f64 = n.normal().iter().map(|v| v * v).sum::<f64>();
        assert!((len - 1.0).abs() < 1e-12);
        assert!((n.offset() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_normal_cannot_normalize() {
        let h = Halfspace::new(vec![0.0, 0.0], 1.0);
        assert!(h.normalized().is_none());
    }

    #[test]
    fn translation_shifts_offset() {
        let h = Halfspace::new(vec![1.0, 0.0], 2.0);
        let t = h.translated(&[3.0, -100.0]);
        assert!((t.offset() - 5.0).abs() < 1e-12);
        assert!(t.contains(&[4.9, 0.0], 1e-9));
    }
}
