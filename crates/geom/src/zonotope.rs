//! Zonotopes: Minkowski sums of segments.
//!
//! The Raković invariant-set approximation needs iterated Minkowski sums
//! `W ⊕ A_K W ⊕ A_K² W ⊕ …`. Sums of polytopes in H-rep are expensive, but a
//! box disturbance set is a zonotope and zonotopes are *closed* under both
//! linear maps and Minkowski sums (generator concatenation), so the whole
//! sum stays exact and cheap in this representation.

use oic_linalg::Matrix;
use oic_lp::LinearProgram;

use crate::{GeomError, Polytope, SupportFunction};

/// A zonotope `{ c + Σᵢ ξᵢ gᵢ : ‖ξ‖_∞ ≤ 1 }` with center `c` and generators
/// `gᵢ`.
///
/// # Examples
///
/// ```
/// use oic_geom::{SupportFunction, Zonotope};
///
/// # fn main() -> Result<(), oic_geom::GeomError> {
/// // The box [-1,1] × [-2,2] as a zonotope.
/// let z = Zonotope::new(vec![0.0, 0.0], vec![vec![1.0, 0.0], vec![0.0, 2.0]]);
/// assert!((z.support(&[1.0, 1.0])? - 3.0).abs() < 1e-12);
/// assert!(z.contains(&[1.0, 2.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zonotope {
    center: Vec<f64>,
    generators: Vec<Vec<f64>>,
}

impl Zonotope {
    /// Creates a zonotope from a center and generator list.
    ///
    /// # Panics
    ///
    /// Panics if the center is empty or any generator has a different
    /// dimension.
    pub fn new(center: Vec<f64>, generators: Vec<Vec<f64>>) -> Self {
        assert!(!center.is_empty(), "zonotope center must be non-empty");
        for g in &generators {
            assert_eq!(g.len(), center.len(), "generator dimension mismatch");
        }
        Self { center, generators }
    }

    /// The box `[lo, hi]` as a zonotope (one axis generator per non-trivial
    /// interval).
    ///
    /// # Panics
    ///
    /// Panics if bounds are inconsistent (`lo > hi` anywhere).
    pub fn from_box(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "box bounds length mismatch");
        let dim = lo.len();
        let center: Vec<f64> = lo.iter().zip(hi).map(|(l, h)| 0.5 * (l + h)).collect();
        let mut generators = Vec::new();
        for i in 0..dim {
            assert!(lo[i] <= hi[i], "box lower bound exceeds upper bound");
            let half = 0.5 * (hi[i] - lo[i]);
            if half > 0.0 {
                let mut g = vec![0.0; dim];
                g[i] = half;
                generators.push(g);
            }
        }
        Self { center, generators }
    }

    /// A single point as a (generator-free) zonotope.
    pub fn point(center: Vec<f64>) -> Self {
        Self::new(center, Vec::new())
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// The center `c`.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The generator list.
    pub fn generators(&self) -> &[Vec<f64>] {
        &self.generators
    }

    /// Linear image `{ M z : z ∈ self }` — exact for any `M`.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols()` differs from the ambient dimension.
    pub fn linear_image(&self, m: &Matrix) -> Zonotope {
        assert_eq!(m.cols(), self.dim(), "matrix dimension mismatch");
        Zonotope {
            center: m.mul_vec(&self.center),
            generators: self.generators.iter().map(|g| m.mul_vec(g)).collect(),
        }
    }

    /// Minkowski sum — exact via generator concatenation.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn minkowski_sum(&self, other: &Zonotope) -> Zonotope {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in Minkowski sum"
        );
        let center = self
            .center
            .iter()
            .zip(&other.center)
            .map(|(a, b)| a + b)
            .collect();
        let mut generators = self.generators.clone();
        generators.extend(other.generators.iter().cloned());
        Zonotope { center, generators }
    }

    /// Scales about the origin: `{ α z : z ∈ self }`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0`.
    pub fn scale(&self, alpha: f64) -> Zonotope {
        assert!(alpha >= 0.0, "scale factor must be non-negative");
        Zonotope {
            center: self.center.iter().map(|v| v * alpha).collect(),
            generators: self
                .generators
                .iter()
                .map(|g| g.iter().map(|v| v * alpha).collect())
                .collect(),
        }
    }

    /// Membership test via LP feasibility of `x = c + G ξ, ‖ξ‖_∞ ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the ambient dimension.
    pub fn contains(&self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.dim(), "point dimension mismatch");
        let k = self.generators.len();
        if k == 0 {
            return self.center.iter().zip(x).all(|(c, v)| (c - v).abs() < 1e-7);
        }
        let mut lp = LinearProgram::minimize(&vec![0.0; k]);
        for i in 0..k {
            lp.set_bounds(i, -1.0, 1.0);
        }
        for d in 0..self.dim() {
            let row: Vec<f64> = self.generators.iter().map(|g| g[d]).collect();
            lp.add_eq(&row, x[d] - self.center[d]);
        }
        lp.solve().is_ok()
    }

    /// Exact halfspace representation of a 2-D zonotope.
    ///
    /// Each generator direction contributes a pair of parallel facets with
    /// normal perpendicular to the generator; offsets come from the support
    /// function. Degenerate (generator-free or rank-1) zonotopes fall back
    /// to box/segment constructions.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NotTwoDimensional`] if the ambient dimension is
    /// not 2.
    pub fn to_polytope_2d(&self) -> Result<Polytope, GeomError> {
        if self.dim() != 2 {
            return Err(GeomError::NotTwoDimensional);
        }
        let mut normals: Vec<[f64; 2]> = Vec::new();
        for g in &self.generators {
            let n = [-g[1], g[0]];
            let len = (n[0] * n[0] + n[1] * n[1]).sqrt();
            if len < 1e-12 {
                continue;
            }
            let unit = [n[0] / len, n[1] / len];
            if !normals.iter().any(|m| {
                (m[0] - unit[0]).abs() < 1e-10 && (m[1] - unit[1]).abs() < 1e-10
                    || (m[0] + unit[0]).abs() < 1e-10 && (m[1] + unit[1]).abs() < 1e-10
            }) {
                normals.push(unit);
            }
        }
        if normals.is_empty() {
            // A point.
            return Ok(Polytope::from_box(&self.center, &self.center));
        }
        if normals.len() == 1 {
            // A segment: add end caps along the generator direction.
            let n = normals[0];
            normals.push([n[1], -n[0]]);
        }
        let mut hs = Vec::with_capacity(2 * normals.len());
        for n in normals {
            let dir = [n[0], n[1]];
            let hi = self.support(&dir)?;
            let lo = self.support(&[-dir[0], -dir[1]])?;
            hs.push(crate::Halfspace::new(vec![dir[0], dir[1]], hi));
            hs.push(crate::Halfspace::new(vec![-dir[0], -dir[1]], lo));
        }
        Ok(Polytope::new(2, hs))
    }
}

impl SupportFunction for Zonotope {
    fn dim(&self) -> usize {
        self.center.len()
    }

    /// Analytic support function `h(d) = c·d + Σᵢ |gᵢ·d|`.
    ///
    /// # Errors
    ///
    /// Never fails — zonotopes are bounded and non-empty. The `Result`
    /// mirrors the trait signature.
    fn support(&self, direction: &[f64]) -> Result<f64, GeomError> {
        assert_eq!(direction.len(), self.dim(), "direction dimension mismatch");
        let mut v: f64 = self.center.iter().zip(direction).map(|(c, d)| c * d).sum();
        for g in &self.generators {
            let dot: f64 = g.iter().zip(direction).map(|(a, d)| a * d).sum();
            v += dot.abs();
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_zonotope_support_matches_polytope() {
        let z = Zonotope::from_box(&[-1.0, -2.0], &[3.0, 2.0]);
        let p = Polytope::from_box(&[-1.0, -2.0], &[3.0, 2.0]);
        for dir in [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [-2.0, 3.0], [0.5, -0.5]] {
            let zs = z.support(&dir).unwrap();
            let ps = p.support(&dir).unwrap();
            assert!((zs - ps).abs() < 1e-7, "dir {dir:?}: {zs} vs {ps}");
        }
    }

    #[test]
    fn degenerate_box_has_one_generator() {
        // The paper's W = [-1,1] × {0}.
        let z = Zonotope::from_box(&[-1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(z.generators().len(), 1);
        assert!(z.contains(&[1.0, 0.0]));
        assert!(!z.contains(&[0.0, 0.1]));
    }

    #[test]
    fn linear_image_support_identity() {
        let z = Zonotope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
        let m = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let img = z.linear_image(&m);
        // h_{Mz}(d) = h_z(Mᵀd) for several directions.
        for dir in [[1.0, 0.0], [0.0, 1.0], [1.0, 2.0]] {
            let lhs = img.support(&dir).unwrap();
            let pulled = m.vec_mul(&dir);
            let rhs = z.support(&pulled).unwrap();
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn minkowski_sum_support_is_additive() {
        let a = Zonotope::from_box(&[-1.0, 0.0], &[1.0, 0.0]);
        let b = Zonotope::from_box(&[0.0, -2.0], &[0.0, 2.0]);
        let s = a.minkowski_sum(&b);
        for dir in [[1.0, 1.0], [3.0, -1.0]] {
            let lhs = s.support(&dir).unwrap();
            let rhs = a.support(&dir).unwrap() + b.support(&dir).unwrap();
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn to_polytope_2d_matches_membership() {
        // Rotated zonotope: center (1,0), generators (1,1) and (1,-0.5).
        let z = Zonotope::new(vec![1.0, 0.0], vec![vec![1.0, 1.0], vec![1.0, -0.5]]);
        let p = z.to_polytope_2d().unwrap();
        // Extreme points: c ± g1 ± g2.
        for (s1, s2) in [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)] {
            let x = [1.0 + s1 + s2, s1 - 0.5 * s2];
            assert!(p.contains(&x), "{x:?}");
            assert!(z.contains(&x), "{x:?}");
        }
        // A point outside.
        assert!(!p.contains(&[3.5, 1.0]));
        assert!(!z.contains(&[3.5, 1.0]));
    }

    #[test]
    fn to_polytope_2d_segment() {
        let z = Zonotope::new(vec![0.0, 0.0], vec![vec![1.0, 1.0]]);
        let p = z.to_polytope_2d().unwrap();
        assert!(p.contains(&[1.0, 1.0]));
        assert!(p.contains(&[-0.5, -0.5]));
        assert!(!p.contains(&[0.5, -0.5]));
        assert!(!p.contains(&[1.5, 1.5]));
    }

    #[test]
    fn to_polytope_2d_point() {
        let z = Zonotope::point(vec![2.0, 3.0]);
        let p = z.to_polytope_2d().unwrap();
        assert!(p.contains(&[2.0, 3.0]));
        assert!(!p.contains(&[2.0, 3.1]));
    }

    #[test]
    fn scale_shrinks() {
        let z = Zonotope::from_box(&[-2.0, -2.0], &[2.0, 2.0]);
        let half = z.scale(0.5);
        assert!(half.contains(&[1.0, 1.0]));
        assert!(!half.contains(&[1.5, 0.0]));
    }
}
