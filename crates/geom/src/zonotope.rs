//! Zonotopes: Minkowski sums of segments.
//!
//! The Raković invariant-set approximation needs iterated Minkowski sums
//! `W ⊕ A_K W ⊕ A_K² W ⊕ …`. Sums of polytopes in H-rep are expensive, but a
//! box disturbance set is a zonotope and zonotopes are *closed* under both
//! linear maps and Minkowski sums (generator concatenation), so the whole
//! sum stays exact and cheap in this representation.
//!
//! The H-rep bridge is dimension-generic: every facet normal of a zonotope
//! is (up to sign) the generalized cross product of `n − 1` generators, so
//! [`Zonotope::to_polytope`] and [`Zonotope::containment_directions`]
//! enumerate `(n−1)`-subsets instead of the `2^k` vertex set — the
//! construction the n-D Raković certification in `oic-control` is built on.

use oic_linalg::Matrix;
use oic_lp::LinearProgram;

use crate::{GeomError, Polytope, SupportFunction};

/// Components below this magnitude are treated as zero when normalizing
/// candidate facet directions.
const DIR_TOL: f64 = 1e-12;

/// Determinant of the `n × n` row-major matrix in `data` (destroyed), by
/// Gaussian elimination with partial pivoting. Exact enough for the small
/// (`n ≤ 8`) minors the facet enumeration produces.
fn small_det(data: &mut [f64], n: usize) -> f64 {
    let mut det = 1.0;
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&a, &b| {
                data[a * n + col]
                    .abs()
                    .partial_cmp(&data[b * n + col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty pivot range");
        let p = data[pivot * n + col];
        if p.abs() < 1e-300 {
            return 0.0;
        }
        if pivot != col {
            for j in 0..n {
                data.swap(col * n + j, pivot * n + j);
            }
            det = -det;
        }
        det *= p;
        for row in (col + 1)..n {
            let factor = data[row * n + col] / p;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                data[row * n + j] -= factor * data[col * n + j];
            }
        }
    }
    det
}

/// Generalized cross product of `n − 1` vectors in `Rⁿ`: the direction
/// orthogonal to all of them, via cofactor expansion
/// `c_i = (−1)^i · det(minor dropping coordinate i)`. Returns the zero
/// vector when the inputs are linearly dependent.
fn generalized_cross(vectors: &[&[f64]], n: usize) -> Vec<f64> {
    debug_assert_eq!(vectors.len() + 1, n, "need n − 1 vectors in dimension n");
    let m = n - 1;
    let mut cross = vec![0.0; n];
    let mut minor = vec![0.0; m * m];
    for (dropped, slot) in cross.iter_mut().enumerate() {
        for (r, v) in vectors.iter().enumerate() {
            let mut c = 0;
            for (j, &vj) in v.iter().enumerate() {
                if j == dropped {
                    continue;
                }
                minor[r * m + c] = vj;
                c += 1;
            }
        }
        let d = if m == 0 {
            1.0
        } else {
            small_det(&mut minor, m)
        };
        *slot = if dropped % 2 == 0 { d } else { -d };
    }
    cross
}

/// Orthonormal basis of the orthogonal complement of `span(vectors)` in
/// `Rⁿ`, by modified Gram–Schmidt over the vectors followed by the
/// standard basis.
fn orthonormal_complement(vectors: &[Vec<f64>], n: usize) -> Vec<Vec<f64>> {
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut span_rank = 0usize;
    let absorb = |candidate: &[f64], basis: &mut Vec<Vec<f64>>| -> bool {
        let mut v = candidate.to_vec();
        for b in basis.iter() {
            let dot: f64 = v.iter().zip(b).map(|(a, c)| a * c).sum();
            for (vi, bi) in v.iter_mut().zip(b) {
                *vi -= dot * bi;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-9 {
            return false;
        }
        for vi in &mut v {
            *vi /= norm;
        }
        basis.push(v);
        true
    };
    for g in vectors {
        if absorb(g, &mut basis) {
            span_rank += 1;
        }
    }
    let mut complement = Vec::with_capacity(n - span_rank);
    for i in 0..n {
        let mut e = vec![0.0; n];
        e[i] = 1.0;
        if absorb(&e, &mut basis) {
            complement.push(basis.last().expect("just pushed").clone());
        }
    }
    complement
}

/// Normalizes a direction to unit length with a canonical sign (first
/// non-negligible component positive); `None` for near-zero vectors.
///
/// Shared by the facet enumeration here and by direction-template
/// construction in dependent crates (e.g. the Raković certification in
/// `oic-control`), so every layer canonicalizes identically.
pub fn canonical_unit(v: &[f64]) -> Option<Vec<f64>> {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm < DIR_TOL {
        return None;
    }
    let mut unit: Vec<f64> = v.iter().map(|x| x / norm).collect();
    if let Some(first) = unit.iter().find(|x| x.abs() > 1e-9) {
        if *first < 0.0 {
            for x in &mut unit {
                *x = -*x;
            }
        }
    }
    Some(unit)
}

/// A zonotope `{ c + Σᵢ ξᵢ gᵢ : ‖ξ‖_∞ ≤ 1 }` with center `c` and generators
/// `gᵢ`.
///
/// # Examples
///
/// ```
/// use oic_geom::{SupportFunction, Zonotope};
///
/// # fn main() -> Result<(), oic_geom::GeomError> {
/// // The box [-1,1] × [-2,2] as a zonotope.
/// let z = Zonotope::new(vec![0.0, 0.0], vec![vec![1.0, 0.0], vec![0.0, 2.0]]);
/// assert!((z.support(&[1.0, 1.0])? - 3.0).abs() < 1e-12);
/// assert!(z.contains(&[1.0, 2.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zonotope {
    center: Vec<f64>,
    generators: Vec<Vec<f64>>,
}

impl Zonotope {
    /// Creates a zonotope from a center and generator list.
    ///
    /// # Panics
    ///
    /// Panics if the center is empty or any generator has a different
    /// dimension.
    pub fn new(center: Vec<f64>, generators: Vec<Vec<f64>>) -> Self {
        assert!(!center.is_empty(), "zonotope center must be non-empty");
        for g in &generators {
            assert_eq!(g.len(), center.len(), "generator dimension mismatch");
        }
        Self { center, generators }
    }

    /// The box `[lo, hi]` as a zonotope (one axis generator per non-trivial
    /// interval).
    ///
    /// # Panics
    ///
    /// Panics if bounds are inconsistent (`lo > hi` anywhere).
    pub fn from_box(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "box bounds length mismatch");
        let dim = lo.len();
        let center: Vec<f64> = lo.iter().zip(hi).map(|(l, h)| 0.5 * (l + h)).collect();
        let mut generators = Vec::new();
        for i in 0..dim {
            assert!(lo[i] <= hi[i], "box lower bound exceeds upper bound");
            let half = 0.5 * (hi[i] - lo[i]);
            if half > 0.0 {
                let mut g = vec![0.0; dim];
                g[i] = half;
                generators.push(g);
            }
        }
        Self { center, generators }
    }

    /// A single point as a (generator-free) zonotope.
    pub fn point(center: Vec<f64>) -> Self {
        Self::new(center, Vec::new())
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// The center `c`.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The generator list.
    pub fn generators(&self) -> &[Vec<f64>] {
        &self.generators
    }

    /// Linear image `{ M z : z ∈ self }` — exact for any `M`.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols()` differs from the ambient dimension.
    pub fn linear_image(&self, m: &Matrix) -> Zonotope {
        assert_eq!(m.cols(), self.dim(), "matrix dimension mismatch");
        Zonotope {
            center: m.mul_vec(&self.center),
            generators: self.generators.iter().map(|g| m.mul_vec(g)).collect(),
        }
    }

    /// Minkowski sum — exact via generator concatenation.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn minkowski_sum(&self, other: &Zonotope) -> Zonotope {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in Minkowski sum"
        );
        let center = self
            .center
            .iter()
            .zip(&other.center)
            .map(|(a, b)| a + b)
            .collect();
        let mut generators = self.generators.clone();
        generators.extend(other.generators.iter().cloned());
        Zonotope { center, generators }
    }

    /// Scales about the origin: `{ α z : z ∈ self }`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0`.
    pub fn scale(&self, alpha: f64) -> Zonotope {
        assert!(alpha >= 0.0, "scale factor must be non-negative");
        Zonotope {
            center: self.center.iter().map(|v| v * alpha).collect(),
            generators: self
                .generators
                .iter()
                .map(|g| g.iter().map(|v| v * alpha).collect())
                .collect(),
        }
    }

    /// Membership test via LP feasibility of `x = c + G ξ, ‖ξ‖_∞ ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the ambient dimension.
    pub fn contains(&self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.dim(), "point dimension mismatch");
        let k = self.generators.len();
        if k == 0 {
            return self.center.iter().zip(x).all(|(c, v)| (c - v).abs() < 1e-7);
        }
        let mut lp = LinearProgram::minimize(&vec![0.0; k]);
        for i in 0..k {
            lp.set_bounds(i, -1.0, 1.0);
        }
        for d in 0..self.dim() {
            let row: Vec<f64> = self.generators.iter().map(|g| g[d]).collect();
            lp.add_eq(&row, x[d] - self.center[d]);
        }
        lp.solve().is_ok()
    }

    /// Outward unit directions that certify polytope containment of / in
    /// this zonotope in any dimension.
    ///
    /// Every facet normal of a zonotope is (up to sign) the generalized
    /// cross product of `n − 1` generators; for rank-deficient zonotopes
    /// the orthonormal complement of the generator span is mixed into the
    /// subsets, which yields the flat-direction constraints and the end
    /// caps (e.g. a segment in the plane contributes its perpendicular
    /// *and* its own direction). The returned list contains one canonical
    /// representative per ± pair, deduplicated.
    ///
    /// Together with the support function this is an exact H-description:
    /// `Z = { x : a·x ≤ h_Z(a), −a·x ≤ h_Z(−a) for every returned a }`,
    /// and `S ⊆ α·Z` for a centered `Z` iff `h_S(a) ≤ α·h_Z(a)` over the
    /// returned directions — the query the n-D Raković iteration asks
    /// instead of enumerating `2^k` vertices.
    ///
    /// Cost is `O(C(k + c, n − 1))` cross products for `k` generators and
    /// `c` complement directions; reduce high-order zonotopes first with
    /// [`reduce_order`](Self::reduce_order) when `k` is large.
    pub fn containment_directions(&self) -> Vec<Vec<f64>> {
        let n = self.dim();
        if n == 1 {
            return vec![vec![1.0]];
        }
        let complement = orthonormal_complement(&self.generators, n);
        let candidates: Vec<&[f64]> = self
            .generators
            .iter()
            .map(Vec::as_slice)
            .chain(complement.iter().map(Vec::as_slice))
            .collect();
        // The complement completes the span, so there are always at least
        // n − 1 candidates (a point zonotope yields the standard box).
        let mut dirs: Vec<Vec<f64>> = Vec::new();
        // Enumerate (n−1)-subsets in lexicographic index order.
        let r = n - 1;
        let k = candidates.len();
        let mut idx: Vec<usize> = (0..r).collect();
        let mut subset: Vec<&[f64]> = Vec::with_capacity(r);
        loop {
            subset.clear();
            subset.extend(idx.iter().map(|&i| candidates[i]));
            if let Some(unit) = canonical_unit(&generalized_cross(&subset, n)) {
                dirs.push(unit);
            }
            // Advance: rightmost index that can still move right.
            let mut pos = r;
            while pos > 0 {
                pos -= 1;
                if idx[pos] < k - r + pos {
                    idx[pos] += 1;
                    for p in pos + 1..r {
                        idx[p] = idx[p - 1] + 1;
                    }
                    break;
                }
                if pos == 0 {
                    return Self::dedup_directions(dirs);
                }
            }
        }
    }

    /// Canonical sign + lexicographic sort, then drop adjacent near-equal
    /// directions (best-effort: stray duplicates only cost redundant
    /// support queries, never correctness).
    fn dedup_directions(mut dirs: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        dirs.sort_by(|a, b| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        dirs.dedup_by(|a, b| a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() < 1e-9));
        dirs
    }

    /// Exact halfspace representation in any dimension: one ± constraint
    /// pair per [`containment_directions`](Self::containment_directions)
    /// entry, with offsets from the analytic support function.
    ///
    /// # Errors
    ///
    /// Mirrors the support-function contract; zonotope supports never fail,
    /// so this is effectively infallible.
    pub fn to_polytope(&self) -> Result<Polytope, GeomError> {
        let n = self.dim();
        let dirs = self.containment_directions();
        let mut hs = Vec::with_capacity(2 * dirs.len());
        for d in dirs {
            let neg: Vec<f64> = d.iter().map(|v| -v).collect();
            let hi = self.support(&d)?;
            let lo = self.support(&neg)?;
            hs.push(crate::Halfspace::new(d, hi));
            hs.push(crate::Halfspace::new(neg, lo));
        }
        Ok(Polytope::new(n, hs))
    }

    /// Girard order reduction: an **outer** approximation with at most
    /// `max(max_generators, dim)` generators — the longest generators are
    /// kept, the rest are over-approximated by their interval hull (one
    /// axis-aligned generator per dimension).
    ///
    /// Iterated Minkowski sums grow the generator count linearly and the
    /// facet enumeration is combinatorial in it; reducing before an H-rep
    /// conversion keeps n-D invariant-set synthesis polynomial.
    pub fn reduce_order(&self, max_generators: usize) -> Zonotope {
        let n = self.dim();
        let k = self.generators.len();
        if k <= max_generators.max(n) {
            return self.clone();
        }
        let keep = max_generators.max(n) - n;
        // Deterministic order: norm descending, index ascending on ties.
        let mut order: Vec<usize> = (0..k).collect();
        let norm = |g: &[f64]| g.iter().map(|v| v * v).sum::<f64>();
        order.sort_by(|&a, &b| {
            norm(&self.generators[b])
                .partial_cmp(&norm(&self.generators[a]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut generators: Vec<Vec<f64>> = order[..keep]
            .iter()
            .map(|&i| self.generators[i].clone())
            .collect();
        // Interval hull of the dropped tail: Σ |g_i| per axis.
        let mut radius = vec![0.0; n];
        for &i in &order[keep..] {
            for (r, v) in radius.iter_mut().zip(&self.generators[i]) {
                *r += v.abs();
            }
        }
        for (axis, r) in radius.into_iter().enumerate() {
            if r > 0.0 {
                let mut g = vec![0.0; n];
                g[axis] = r;
                generators.push(g);
            }
        }
        Zonotope {
            center: self.center.clone(),
            generators,
        }
    }

    /// Exact halfspace representation of a 2-D zonotope.
    ///
    /// Each generator direction contributes a pair of parallel facets with
    /// normal perpendicular to the generator; offsets come from the support
    /// function. Degenerate (generator-free or rank-1) zonotopes fall back
    /// to box/segment constructions.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NotTwoDimensional`] if the ambient dimension is
    /// not 2.
    pub fn to_polytope_2d(&self) -> Result<Polytope, GeomError> {
        if self.dim() != 2 {
            return Err(GeomError::NotTwoDimensional);
        }
        let mut normals: Vec<[f64; 2]> = Vec::new();
        for g in &self.generators {
            let n = [-g[1], g[0]];
            let len = (n[0] * n[0] + n[1] * n[1]).sqrt();
            if len < 1e-12 {
                continue;
            }
            let unit = [n[0] / len, n[1] / len];
            if !normals.iter().any(|m| {
                (m[0] - unit[0]).abs() < 1e-10 && (m[1] - unit[1]).abs() < 1e-10
                    || (m[0] + unit[0]).abs() < 1e-10 && (m[1] + unit[1]).abs() < 1e-10
            }) {
                normals.push(unit);
            }
        }
        if normals.is_empty() {
            // A point.
            return Ok(Polytope::from_box(&self.center, &self.center));
        }
        if normals.len() == 1 {
            // A segment: add end caps along the generator direction.
            let n = normals[0];
            normals.push([n[1], -n[0]]);
        }
        let mut hs = Vec::with_capacity(2 * normals.len());
        for n in normals {
            let dir = [n[0], n[1]];
            let hi = self.support(&dir)?;
            let lo = self.support(&[-dir[0], -dir[1]])?;
            hs.push(crate::Halfspace::new(vec![dir[0], dir[1]], hi));
            hs.push(crate::Halfspace::new(vec![-dir[0], -dir[1]], lo));
        }
        Ok(Polytope::new(2, hs))
    }
}

impl SupportFunction for Zonotope {
    fn dim(&self) -> usize {
        self.center.len()
    }

    /// Analytic support function `h(d) = c·d + Σᵢ |gᵢ·d|`.
    ///
    /// # Errors
    ///
    /// Never fails — zonotopes are bounded and non-empty. The `Result`
    /// mirrors the trait signature.
    fn support(&self, direction: &[f64]) -> Result<f64, GeomError> {
        assert_eq!(direction.len(), self.dim(), "direction dimension mismatch");
        let mut v: f64 = self.center.iter().zip(direction).map(|(c, d)| c * d).sum();
        for g in &self.generators {
            let dot: f64 = g.iter().zip(direction).map(|(a, d)| a * d).sum();
            v += dot.abs();
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_zonotope_support_matches_polytope() {
        let z = Zonotope::from_box(&[-1.0, -2.0], &[3.0, 2.0]);
        let p = Polytope::from_box(&[-1.0, -2.0], &[3.0, 2.0]);
        for dir in [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [-2.0, 3.0], [0.5, -0.5]] {
            let zs = z.support(&dir).unwrap();
            let ps = p.support(&dir).unwrap();
            assert!((zs - ps).abs() < 1e-7, "dir {dir:?}: {zs} vs {ps}");
        }
    }

    #[test]
    fn degenerate_box_has_one_generator() {
        // The paper's W = [-1,1] × {0}.
        let z = Zonotope::from_box(&[-1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(z.generators().len(), 1);
        assert!(z.contains(&[1.0, 0.0]));
        assert!(!z.contains(&[0.0, 0.1]));
    }

    #[test]
    fn linear_image_support_identity() {
        let z = Zonotope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
        let m = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let img = z.linear_image(&m);
        // h_{Mz}(d) = h_z(Mᵀd) for several directions.
        for dir in [[1.0, 0.0], [0.0, 1.0], [1.0, 2.0]] {
            let lhs = img.support(&dir).unwrap();
            let pulled = m.vec_mul(&dir);
            let rhs = z.support(&pulled).unwrap();
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn minkowski_sum_support_is_additive() {
        let a = Zonotope::from_box(&[-1.0, 0.0], &[1.0, 0.0]);
        let b = Zonotope::from_box(&[0.0, -2.0], &[0.0, 2.0]);
        let s = a.minkowski_sum(&b);
        for dir in [[1.0, 1.0], [3.0, -1.0]] {
            let lhs = s.support(&dir).unwrap();
            let rhs = a.support(&dir).unwrap() + b.support(&dir).unwrap();
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn to_polytope_2d_matches_membership() {
        // Rotated zonotope: center (1,0), generators (1,1) and (1,-0.5).
        let z = Zonotope::new(vec![1.0, 0.0], vec![vec![1.0, 1.0], vec![1.0, -0.5]]);
        let p = z.to_polytope_2d().unwrap();
        // Extreme points: c ± g1 ± g2.
        for (s1, s2) in [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)] {
            let x = [1.0 + s1 + s2, s1 - 0.5 * s2];
            assert!(p.contains(&x), "{x:?}");
            assert!(z.contains(&x), "{x:?}");
        }
        // A point outside.
        assert!(!p.contains(&[3.5, 1.0]));
        assert!(!z.contains(&[3.5, 1.0]));
    }

    #[test]
    fn to_polytope_2d_segment() {
        let z = Zonotope::new(vec![0.0, 0.0], vec![vec![1.0, 1.0]]);
        let p = z.to_polytope_2d().unwrap();
        assert!(p.contains(&[1.0, 1.0]));
        assert!(p.contains(&[-0.5, -0.5]));
        assert!(!p.contains(&[0.5, -0.5]));
        assert!(!p.contains(&[1.5, 1.5]));
    }

    #[test]
    fn to_polytope_2d_point() {
        let z = Zonotope::point(vec![2.0, 3.0]);
        let p = z.to_polytope_2d().unwrap();
        assert!(p.contains(&[2.0, 3.0]));
        assert!(!p.contains(&[2.0, 3.1]));
    }

    #[test]
    fn to_polytope_matches_2d_conversion() {
        let z = Zonotope::new(vec![1.0, 0.0], vec![vec![1.0, 1.0], vec![1.0, -0.5]]);
        let nd = z.to_polytope().unwrap();
        let planar = z.to_polytope_2d().unwrap();
        assert!(nd.set_eq(&planar, 1e-9).unwrap());
    }

    #[test]
    fn to_polytope_3d_supports_agree() {
        // A rotated 3-D zonotope with 4 generators.
        let z = Zonotope::new(
            vec![0.5, -0.5, 0.0],
            vec![
                vec![1.0, 0.0, 0.2],
                vec![0.0, 1.0, -0.3],
                vec![0.3, 0.3, 1.0],
                vec![0.5, -0.2, 0.1],
            ],
        );
        let p = z.to_polytope().unwrap();
        assert_eq!(p.dim(), 3);
        for dir in [
            [1.0, 0.0, 0.0],
            [0.0, -1.0, 0.0],
            [1.0, 1.0, 1.0],
            [-0.3, 0.7, 2.0],
        ] {
            let zs = z.support(&dir).unwrap();
            let ps = p.support(&dir).unwrap();
            assert!((zs - ps).abs() < 1e-7, "dir {dir:?}: {zs} vs {ps}");
        }
        // Extreme points are members; an inflated corner is not.
        let corner = [0.5 + 1.8, -0.5 + 1.1, 1.0];
        assert!(p.contains(&corner));
        assert!(!p.contains(&[0.5 + 2.5, -0.5, 0.0]));
    }

    #[test]
    fn to_polytope_4d_box_is_box() {
        let z = Zonotope::from_box(&[-1.0, -2.0, -3.0, -4.0], &[1.0, 2.0, 3.0, 4.0]);
        let p = z.to_polytope().unwrap();
        let b = Polytope::from_box(&[-1.0, -2.0, -3.0, -4.0], &[1.0, 2.0, 3.0, 4.0]);
        assert!(p.set_eq(&b, 1e-9).unwrap());
    }

    #[test]
    fn to_polytope_degenerate_3d_segment() {
        // A segment in 3-D: rank 1, needs complement directions for caps.
        let z = Zonotope::new(vec![0.0, 0.0, 0.0], vec![vec![1.0, 1.0, 0.0]]);
        let p = z.to_polytope().unwrap();
        assert!(p.contains(&[1.0, 1.0, 0.0]));
        assert!(p.contains(&[-0.5, -0.5, 0.0]));
        assert!(!p.contains(&[0.5, -0.5, 0.0]));
        assert!(!p.contains(&[0.0, 0.0, 0.1]));
        assert!(!p.contains(&[1.5, 1.5, 0.0]));
    }

    #[test]
    fn to_polytope_flat_3d_parallelogram() {
        // Rank 2 in 3-D: the paper-style degenerate disturbance lifted.
        let z = Zonotope::new(vec![0.0; 3], vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        let p = z.to_polytope().unwrap();
        assert!(p.contains(&[1.0, -1.0, 0.0]));
        assert!(!p.contains(&[1.0, -1.0, 0.01]));
        assert!(!p.contains(&[1.1, 0.0, 0.0]));
    }

    #[test]
    fn containment_directions_cover_box_axes() {
        let z = Zonotope::from_box(&[-1.0, -1.0, -1.0], &[1.0, 1.0, 1.0]);
        let dirs = z.containment_directions();
        assert_eq!(dirs.len(), 3, "a 3-D box has 3 facet-normal pairs");
        for axis in 0..3 {
            assert!(
                dirs.iter().any(|d| (d[axis].abs() - 1.0).abs() < 1e-9),
                "missing axis {axis} in {dirs:?}"
            );
        }
    }

    #[test]
    fn reduce_order_is_outer_approximation() {
        let z = Zonotope::new(
            vec![0.1, -0.2, 0.3],
            vec![
                vec![1.0, 0.2, 0.0],
                vec![0.0, 0.8, 0.1],
                vec![0.1, 0.1, 0.6],
                vec![0.4, -0.3, 0.2],
                vec![0.05, 0.02, -0.01],
                vec![-0.2, 0.1, 0.3],
            ],
        );
        let r = z.reduce_order(4);
        assert!(r.generators().len() <= 4.max(z.dim()));
        assert_eq!(r.center(), z.center());
        for dir in [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, -1.0, 0.5],
            [-0.7, 0.3, 1.3],
        ] {
            let orig = z.support(&dir).unwrap();
            let red = r.support(&dir).unwrap();
            assert!(
                red >= orig - 1e-9,
                "reduction must not shrink: {red} < {orig} in {dir:?}"
            );
        }
    }

    #[test]
    fn reduce_order_noop_below_cap() {
        let z = Zonotope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
        assert_eq!(z.reduce_order(8), z);
    }

    #[test]
    fn scale_shrinks() {
        let z = Zonotope::from_box(&[-2.0, -2.0], &[2.0, 2.0]);
        let half = z.scale(0.5);
        assert!(half.contains(&[1.0, 1.0]));
        assert!(!half.contains(&[1.5, 0.0]));
    }
}
