//! Convex polytopes in halfspace representation.

use oic_linalg::{LuDecomposition, Matrix};
use oic_lp::LinearProgram;

use crate::{GeomError, Halfspace, SupportFunction};

/// Default membership tolerance (absolute, on the constraint slack).
pub(crate) const CONTAINS_TOL: f64 = 1e-7;

/// Tolerance used by redundancy removal and inclusion certificates.
const INCLUSION_TOL: f64 = 1e-6;

/// A convex polyhedron `{ x : Aᵀᵢ x ≤ bᵢ }` in halfspace (H-) representation.
///
/// The representation may be unbounded (a polyhedron rather than a polytope);
/// queries that require boundedness ([`support`](Self::support),
/// [`bounding_box`](Self::bounding_box)) report
/// [`GeomError::Unbounded`] when it matters.
///
/// # Examples
///
/// ```
/// use oic_geom::{Halfspace, Polytope};
///
/// // The triangle x ≥ 0, y ≥ 0, x + y ≤ 1.
/// let tri = Polytope::new(2, vec![
///     Halfspace::new(vec![-1.0, 0.0], 0.0),
///     Halfspace::new(vec![0.0, -1.0], 0.0),
///     Halfspace::new(vec![1.0, 1.0], 1.0),
/// ]);
/// assert!(tri.contains(&[0.2, 0.3]));
/// assert!(!tri.contains(&[0.8, 0.8]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polytope {
    dim: usize,
    halfspaces: Vec<Halfspace>,
}

impl Polytope {
    /// Creates a polytope from halfspaces.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or any halfspace has a different dimension.
    pub fn new(dim: usize, halfspaces: Vec<Halfspace>) -> Self {
        assert!(dim > 0, "polytope dimension must be positive");
        for h in &halfspaces {
            assert_eq!(h.dim(), dim, "halfspace dimension mismatch");
        }
        Self { dim, halfspaces }
    }

    /// Creates the axis-aligned box `[lo₁,hi₁] × … × [loₙ,hiₙ]`.
    ///
    /// Degenerate intervals (`lo == hi`) are allowed; they produce flat
    /// polytopes such as the paper's disturbance set `[−1,1] × {0}`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty, have different lengths, or if any
    /// `lo > hi`.
    pub fn from_box(lo: &[f64], hi: &[f64]) -> Self {
        assert!(!lo.is_empty(), "box must have at least one dimension");
        assert_eq!(lo.len(), hi.len(), "box bounds length mismatch");
        let dim = lo.len();
        let mut halfspaces = Vec::with_capacity(2 * dim);
        for i in 0..dim {
            assert!(lo[i] <= hi[i], "box lower bound exceeds upper bound");
            let mut up = vec![0.0; dim];
            up[i] = 1.0;
            halfspaces.push(Halfspace::new(up, hi[i]));
            let mut down = vec![0.0; dim];
            down[i] = -1.0;
            halfspaces.push(Halfspace::new(down, -lo[i]));
        }
        Self { dim, halfspaces }
    }

    /// The whole space `Rⁿ` (no constraints).
    pub fn universe(dim: usize) -> Self {
        Self::new(dim, Vec::new())
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The defining halfspaces.
    pub fn halfspaces(&self) -> &[Halfspace] {
        &self.halfspaces
    }

    /// Number of halfspace constraints.
    pub fn num_halfspaces(&self) -> usize {
        self.halfspaces.len()
    }

    /// Tests membership with the default tolerance (`1e-7` on slack).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the ambient dimension.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.contains_with_tol(x, CONTAINS_TOL)
    }

    /// Tests membership with an explicit tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the ambient dimension.
    pub fn contains_with_tol(&self, x: &[f64], tol: f64) -> bool {
        self.halfspaces.iter().all(|h| h.contains(x, tol))
    }

    /// Worst (most negative) slack over all constraints; `≥ 0` iff the point
    /// is inside. Useful as a signed "depth" of membership.
    ///
    /// Returns `+∞` for the universe polytope.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the ambient dimension.
    pub fn min_slack(&self, x: &[f64]) -> f64 {
        self.halfspaces
            .iter()
            .map(|h| h.slack(x))
            .fold(f64::INFINITY, f64::min)
    }

    /// Intersection with another polytope (constraint concatenation).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn intersection(&self, other: &Polytope) -> Polytope {
        assert_eq!(self.dim, other.dim, "dimension mismatch in intersection");
        let mut halfspaces = self.halfspaces.clone();
        halfspaces.extend(other.halfspaces.iter().cloned());
        Polytope {
            dim: self.dim,
            halfspaces,
        }
    }

    /// Emptiness test via LP feasibility.
    pub fn is_empty(&self) -> bool {
        if self.halfspaces.is_empty() {
            return false;
        }
        let mut lp = LinearProgram::minimize(&vec![0.0; self.dim]);
        for h in &self.halfspaces {
            lp.add_le(h.normal(), h.offset());
        }
        matches!(lp.solve(), Err(oic_lp::LpError::Infeasible))
    }

    /// Chebyshev center: the center and radius of the largest inscribed ball.
    ///
    /// # Errors
    ///
    /// * [`GeomError::EmptySet`] — the polytope is empty.
    /// * [`GeomError::Unbounded`] — the inscribed radius is unbounded.
    pub fn chebyshev_center(&self) -> Result<(Vec<f64>, f64), GeomError> {
        // Variables (x, r); maximize r s.t. aᵢ·x + ‖aᵢ‖ r ≤ bᵢ, r ≥ 0.
        let mut costs = vec![0.0; self.dim + 1];
        costs[self.dim] = 1.0;
        let mut lp = LinearProgram::maximize(&costs);
        lp.set_lower_bound(self.dim, 0.0);
        for h in &self.halfspaces {
            let norm: f64 = h.normal().iter().map(|v| v * v).sum::<f64>().sqrt();
            let mut row = h.normal().to_vec();
            row.push(norm);
            lp.add_le(&row, h.offset());
        }
        let sol = lp.solve().map_err(GeomError::from)?;
        Ok((sol.x()[..self.dim].to_vec(), sol.objective()))
    }

    /// Axis-aligned bounding box `(lo, hi)`.
    ///
    /// # Errors
    ///
    /// * [`GeomError::Unbounded`] — the polytope is unbounded along an axis.
    /// * [`GeomError::EmptySet`] — the polytope is empty.
    pub fn bounding_box(&self) -> Result<(Vec<f64>, Vec<f64>), GeomError> {
        let mut lo = vec![0.0; self.dim];
        let mut hi = vec![0.0; self.dim];
        let mut dir = vec![0.0; self.dim];
        for i in 0..self.dim {
            dir[i] = 1.0;
            hi[i] = self.support(&dir)?;
            dir[i] = -1.0;
            lo[i] = -self.support(&dir)?;
            dir[i] = 0.0;
        }
        Ok((lo, hi))
    }

    /// Minkowski difference `self ⊖ S = { x : x + s ∈ self ∀ s ∈ S }`.
    ///
    /// In H-rep this only shrinks offsets: `bᵢ ← bᵢ − h_S(aᵢ)`.
    ///
    /// # Errors
    ///
    /// Propagates support-function failures of `S` ([`GeomError::Unbounded`]
    /// if `S` is unbounded in a facet direction, [`GeomError::EmptySet`] if
    /// `S` is empty).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn minkowski_diff<S: SupportFunction>(&self, other: &S) -> Result<Polytope, GeomError> {
        assert_eq!(
            self.dim,
            other.dim(),
            "dimension mismatch in Minkowski difference"
        );
        // One batched support query over all facet normals: when `other`
        // is LP-backed and the revised backend is active, the whole loop
        // reuses a single warm-started program.
        let normals: Vec<&[f64]> = self.halfspaces.iter().map(|h| h.normal()).collect();
        let shrinks = other.support_batch(&normals)?;
        let halfspaces = self
            .halfspaces
            .iter()
            .zip(shrinks)
            .map(|(h, shrink)| Halfspace::new(h.normal().to_vec(), h.offset() - shrink))
            .collect();
        Ok(Polytope {
            dim: self.dim,
            halfspaces,
        })
    }

    /// Exact Minkowski sum `self ⊕ other` in any dimension, via the lifted
    /// formulation `{ (x, y) : x − y ∈ self, y ∈ other }` projected back
    /// onto `x` by Fourier–Motzkin elimination.
    ///
    /// This replaces the planar vertex-hull construction
    /// ([`crate::minkowski_sum_2d`]) as the dimension-generic path; for
    /// sums with zonotopes prefer staying in generator form
    /// ([`crate::Zonotope::minkowski_sum`]), which is exact and cheap.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptySet`] when either operand is empty (the
    /// 2-D contract, kept so the deprecated wrapper is drop-in).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn minkowski_sum(&self, other: &Polytope) -> Result<Polytope, GeomError> {
        assert_eq!(self.dim, other.dim, "dimension mismatch in Minkowski sum");
        if self.is_empty() || other.is_empty() {
            return Err(GeomError::EmptySet);
        }
        let n = self.dim;
        let mut rows = Vec::with_capacity(self.halfspaces.len() + other.halfspaces.len());
        for h in &self.halfspaces {
            // a·(x − y) ≤ b.
            let mut normal = h.normal().to_vec();
            normal.extend(h.normal().iter().map(|v| -v));
            rows.push(Halfspace::new(normal, h.offset()));
        }
        for h in &other.halfspaces {
            let mut normal = vec![0.0; n];
            normal.extend_from_slice(h.normal());
            rows.push(Halfspace::new(normal, h.offset()));
        }
        Ok(Polytope::new(2 * n, rows).project_to_first(n))
    }

    /// Affine pre-image `{ x : M x + shift ∈ self }`.
    ///
    /// This is the workhorse of backward reachability: the paper's
    /// `B(Y, z)` operators are pre-images of `Y ⊖ W` under the dynamics.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.rows() != self.dim()` or
    /// `shift.len() != self.dim()`.
    pub fn preimage(&self, matrix: &Matrix, shift: &[f64]) -> Polytope {
        assert_eq!(
            matrix.rows(),
            self.dim,
            "matrix rows must match polytope dimension"
        );
        assert_eq!(shift.len(), self.dim, "shift dimension mismatch");
        let new_dim = matrix.cols();
        let mut halfspaces = Vec::with_capacity(self.halfspaces.len());
        for h in &self.halfspaces {
            // a·(Mx + c) ≤ b  ⇔  (aᵀM)·x ≤ b − a·c.
            let normal = matrix.vec_mul(h.normal());
            let shift_dot: f64 = h.normal().iter().zip(shift).map(|(a, c)| a * c).sum();
            halfspaces.push(Halfspace::new(normal, h.offset() - shift_dot));
        }
        Polytope {
            dim: new_dim,
            halfspaces,
        }
    }

    /// Affine image `{ M x + shift : x ∈ self }` for invertible `M`.
    ///
    /// Returns `None` when `M` is singular (the image of a polytope under a
    /// rank-deficient map is not representable exactly in H-rep).
    ///
    /// # Panics
    ///
    /// Panics if `M` is not square of the polytope dimension or `shift` has
    /// the wrong length.
    pub fn affine_image_invertible(&self, matrix: &Matrix, shift: &[f64]) -> Option<Polytope> {
        assert!(matrix.is_square(), "image matrix must be square");
        assert_eq!(matrix.rows(), self.dim, "matrix dimension mismatch");
        assert_eq!(shift.len(), self.dim, "shift dimension mismatch");
        let inv = LuDecomposition::new(matrix).ok()?.inverse().ok()?;
        // y = Mx + c  ⇔  x = M⁻¹(y − c);  a·x ≤ b ⇔ (aᵀM⁻¹)·y ≤ b + aᵀM⁻¹c.
        let mut halfspaces = Vec::with_capacity(self.halfspaces.len());
        for h in &self.halfspaces {
            let normal = inv.vec_mul(h.normal());
            let shift_dot: f64 = normal.iter().zip(shift).map(|(a, c)| a * c).sum();
            halfspaces.push(Halfspace::new(normal, h.offset() + shift_dot));
        }
        Some(Polytope {
            dim: self.dim,
            halfspaces,
        })
    }

    /// Translate by `t`: `{ x + t : x ∈ self }`.
    ///
    /// # Panics
    ///
    /// Panics if `t.len()` differs from the ambient dimension.
    pub fn translate(&self, t: &[f64]) -> Polytope {
        Polytope {
            dim: self.dim,
            halfspaces: self.halfspaces.iter().map(|h| h.translated(t)).collect(),
        }
    }

    /// Scales about the origin: `{ α x : x ∈ self }`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ≤ 0`.
    pub fn scale(&self, alpha: f64) -> Polytope {
        assert!(alpha > 0.0, "scale factor must be positive");
        Polytope {
            dim: self.dim,
            halfspaces: self
                .halfspaces
                .iter()
                .map(|h| Halfspace::new(h.normal().to_vec(), h.offset() * alpha))
                .collect(),
        }
    }

    /// Inclusion certificate `self ⊆ other` (up to tolerance), via one
    /// support LP per facet of `other`.
    ///
    /// An empty `self` is a subset of everything; an unbounded `self` cannot
    /// be contained in a facet direction of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::Lp`] if an LP fails numerically.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn is_subset_of(&self, other: &Polytope, tol: f64) -> Result<bool, GeomError> {
        assert_eq!(self.dim, other.dim, "dimension mismatch in inclusion test");
        // When the revised backend is forced, all facet supports run
        // through one warm-started LP (same gate as `support_batch`); the
        // default path keeps per-facet solves with early exit, bit- and
        // work-identical to the pre-batch code.
        if other.halfspaces.len() >= 2 && oic_lp::forced_backend() == Some(oic_lp::Backend::Revised)
        {
            let normals: Vec<&[f64]> = other.halfspaces.iter().map(|h| h.normal()).collect();
            return match self.support_batch(&normals) {
                Ok(sup) => Ok(sup
                    .iter()
                    .zip(&other.halfspaces)
                    .all(|(v, h)| *v <= h.offset() + tol)),
                Err(GeomError::EmptySet) => Ok(true),
                Err(GeomError::Unbounded) => Ok(false),
                Err(e) => Err(e),
            };
        }
        for h in &other.halfspaces {
            match self.support(h.normal()) {
                Ok(v) => {
                    if v > h.offset() + tol {
                        return Ok(false);
                    }
                }
                Err(GeomError::EmptySet) => return Ok(true),
                Err(GeomError::Unbounded) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Set equality up to tolerance (mutual inclusion).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::Lp`] if an LP fails numerically.
    pub fn set_eq(&self, other: &Polytope, tol: f64) -> Result<bool, GeomError> {
        Ok(self.is_subset_of(other, tol)? && other.is_subset_of(self, tol)?)
    }

    /// Removes redundant halfspaces (those implied by the rest) and exact
    /// duplicates. The result describes the same set with (weakly) fewer
    /// constraints.
    pub fn remove_redundant(&self) -> Polytope {
        // Normalize and drop trivial / duplicate rows first.
        let mut rows: Vec<Halfspace> = Vec::new();
        for h in &self.halfspaces {
            match h.normalized() {
                Some(n) => {
                    // Keep only the tighter of two parallel constraints.
                    let parallel = rows.iter_mut().find(|r| {
                        r.normal()
                            .iter()
                            .zip(n.normal())
                            .all(|(a, b)| (a - b).abs() < 1e-9)
                    });
                    if let Some(existing) = parallel {
                        if n.offset() < existing.offset() {
                            *existing = n;
                        }
                    } else {
                        rows.push(n);
                    }
                }
                None => {
                    if h.offset() < -1e-9 {
                        // 0·x ≤ negative: the set is empty; keep the witness.
                        rows.push(h.clone());
                    }
                    // 0·x ≤ nonneg is trivially true: drop.
                }
            }
        }

        // LP-based redundancy filter. When the revised LP backend is
        // forced process-wide, all tests ride one compiled warm-start
        // template (shape-stable rows, RHS-only updates) — the batched
        // path Fourier–Motzkin elimination leans on. The default path is
        // the original one-cold-LP-per-row loop, kept bit-identical.
        let filtered =
            if rows.len() >= 3 && oic_lp::forced_backend() == Some(oic_lp::Backend::Revised) {
                self.redundancy_filter_warm(&rows)
            } else {
                self.redundancy_filter_cold(&rows)
            };
        let Some(keep) = filtered else {
            // Infeasible even with a row relaxed: the polytope is empty;
            // return a canonical empty set.
            return Polytope::new(self.dim, vec![Halfspace::new(vec![0.0; self.dim], -1.0)]);
        };
        let halfspaces = rows
            .into_iter()
            .zip(keep)
            .filter_map(|(r, k)| k.then_some(r))
            .collect();
        Polytope {
            dim: self.dim,
            halfspaces,
        }
    }

    /// The original sequential redundancy filter: one cold LP per row,
    /// already-dropped rows excluded from later tests. Returns the keep
    /// mask, or `None` when the system is infeasible (empty polytope).
    fn redundancy_filter_cold(&self, rows: &[Halfspace]) -> Option<Vec<bool>> {
        let mut keep = vec![true; rows.len()];
        for i in 0..rows.len() {
            if rows[i].normalized().is_none() {
                continue; // infeasibility witness row, always kept
            }
            // Maximize aᵢ·x subject to all other kept rows, with aᵢ·x ≤ bᵢ+1
            // added to keep the LP bounded in the test direction.
            let mut lp = LinearProgram::maximize(rows[i].normal());
            let mut has_others = false;
            for (j, r) in rows.iter().enumerate() {
                if j == i || !keep[j] {
                    continue;
                }
                lp.add_le(r.normal(), r.offset());
                has_others = true;
            }
            if !has_others {
                continue;
            }
            lp.add_le(rows[i].normal(), rows[i].offset() + 1.0);
            match lp.solve() {
                Ok(sol) => {
                    if sol.objective() <= rows[i].offset() + INCLUSION_TOL {
                        keep[i] = false;
                    }
                }
                Err(oic_lp::LpError::Infeasible) => return None,
                Err(_) => { /* keep the row on numerical failure: safe */ }
            }
        }
        Some(keep)
    }

    /// Warm-templated redundancy filter: one `LinearProgram` holding every
    /// candidate row is compiled once; per test only the objective and the
    /// RHS vector change, so the revised backend carries its basis and
    /// factorization across the whole sweep (the per-elimination pruning
    /// of [`Polytope::eliminate`] is the hot caller — an elimination step
    /// tests `O(rows)` candidates against the same constraint matrix).
    ///
    /// Dropped rows stay in the template with their RHS relaxed by the
    /// same `+1` used for the tested row — the shape-stable equivalent of
    /// excluding them (a dropped row is implied by the kept rows within
    /// tolerance, so its relaxed copy is inactive on the kept region,
    /// while near-parallel pairs still block each other from being
    /// dropped jointly).
    fn redundancy_filter_warm(&self, rows: &[Halfspace]) -> Option<Vec<bool>> {
        let mut keep = vec![true; rows.len()];
        let mut lp = LinearProgram::maximize(rows[0].normal());
        let mut rhs: Vec<f64> = Vec::with_capacity(rows.len());
        for r in rows {
            lp.add_le(r.normal(), r.offset());
            rhs.push(r.offset());
        }
        let mut warm = oic_lp::WarmStart::new();
        for i in 0..rows.len() {
            if rows[i].normalized().is_none() {
                continue; // infeasibility witness row, always kept
            }
            rhs[i] = rows[i].offset() + 1.0;
            lp.set_objective(rows[i].normal());
            match lp.solve_warm_with_rhs(&rhs, &mut warm) {
                Ok(sol) => {
                    if sol.objective() <= rows[i].offset() + INCLUSION_TOL {
                        keep[i] = false; // leave rhs[i] relaxed
                    } else {
                        rhs[i] = rows[i].offset();
                    }
                }
                Err(oic_lp::LpError::Infeasible) => return None,
                Err(_) => {
                    rhs[i] = rows[i].offset(); // keep the row: safe
                }
            }
        }
        Some(keep)
    }

    /// An extreme point achieving the support value in direction `d`
    /// (an argmax of `d·x` over the set).
    ///
    /// # Errors
    ///
    /// * [`GeomError::EmptySet`] — the polytope is empty.
    /// * [`GeomError::Unbounded`] — unbounded in direction `d`.
    pub fn extreme_point(&self, direction: &[f64]) -> Result<Vec<f64>, GeomError> {
        assert_eq!(direction.len(), self.dim, "direction dimension mismatch");
        if self.halfspaces.is_empty() {
            return Err(GeomError::Unbounded);
        }
        let mut lp = LinearProgram::maximize(direction);
        for h in &self.halfspaces {
            lp.add_le(h.normal(), h.offset());
        }
        let sol = lp.solve().map_err(GeomError::from)?;
        Ok(sol.x().to_vec())
    }

    /// Area of a bounded 2-D polytope (shoelace formula over the vertex
    /// enumeration).
    ///
    /// # Errors
    ///
    /// * [`GeomError::NotTwoDimensional`] — ambient dimension is not 2.
    /// * [`GeomError::EmptySet`] — no vertices (empty set).
    pub fn area_2d(&self) -> Result<f64, GeomError> {
        let verts = self.vertices_2d()?;
        let n = verts.len();
        if n < 3 {
            return Ok(0.0);
        }
        let mut twice_area = 0.0;
        for i in 0..n {
            let [x1, y1] = verts[i];
            let [x2, y2] = verts[(i + 1) % n];
            twice_area += x1 * y2 - x2 * y1;
        }
        Ok(0.5 * twice_area.abs())
    }

    /// Enumerates the vertices of a bounded 2-D polytope, ordered
    /// counter-clockwise.
    ///
    /// # Errors
    ///
    /// * [`GeomError::NotTwoDimensional`] — ambient dimension is not 2.
    /// * [`GeomError::EmptySet`] — the polytope has no vertices.
    pub fn vertices_2d(&self) -> Result<Vec<[f64; 2]>, GeomError> {
        if self.dim != 2 {
            return Err(GeomError::NotTwoDimensional);
        }
        let hs = &self.halfspaces;
        let mut verts: Vec<[f64; 2]> = Vec::new();
        for i in 0..hs.len() {
            for j in (i + 1)..hs.len() {
                let (a1, a2) = (hs[i].normal(), hs[j].normal());
                let det = a1[0] * a2[1] - a1[1] * a2[0];
                if det.abs() < 1e-10 {
                    continue;
                }
                let (b1, b2) = (hs[i].offset(), hs[j].offset());
                let x = (b1 * a2[1] - b2 * a1[1]) / det;
                let y = (a1[0] * b2 - a2[0] * b1) / det;
                let p = [x, y];
                if self.contains_with_tol(&p, 1e-6)
                    && !verts
                        .iter()
                        .any(|v| (v[0] - x).abs() < 1e-7 && (v[1] - y).abs() < 1e-7)
                {
                    verts.push(p);
                }
            }
        }
        if verts.is_empty() {
            return Err(GeomError::EmptySet);
        }
        // Order counter-clockwise around the centroid.
        let cx = verts.iter().map(|v| v[0]).sum::<f64>() / verts.len() as f64;
        let cy = verts.iter().map(|v| v[1]).sum::<f64>() / verts.len() as f64;
        verts.sort_by(|p, q| {
            let ap = (p[1] - cy).atan2(p[0] - cx);
            let aq = (q[1] - cy).atan2(q[0] - cx);
            ap.partial_cmp(&aq).unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(verts)
    }
}

impl SupportFunction for Polytope {
    fn dim(&self) -> usize {
        self.dim
    }

    /// Support function via LP: `max d·x s.t. x ∈ self`.
    ///
    /// # Errors
    ///
    /// * [`GeomError::EmptySet`] — the polytope is empty.
    /// * [`GeomError::Unbounded`] — unbounded in direction `d`.
    fn support(&self, direction: &[f64]) -> Result<f64, GeomError> {
        assert_eq!(direction.len(), self.dim, "direction dimension mismatch");
        if self.halfspaces.is_empty() {
            // Universe: bounded only in the zero direction.
            return if direction.iter().all(|v| *v == 0.0) {
                Ok(0.0)
            } else {
                Err(GeomError::Unbounded)
            };
        }
        let mut lp = LinearProgram::maximize(direction);
        for h in &self.halfspaces {
            lp.add_le(h.normal(), h.offset());
        }
        let sol = lp.solve().map_err(GeomError::from)?;
        Ok(sol.objective())
    }

    /// Batched support: one LP over the polytope's constraints, re-targeted
    /// per direction and re-solved **warm** (the feasible region never
    /// changes, so the previous optimal basis stays primal feasible and
    /// each re-solve is a handful of pivots).
    ///
    /// The warm path only engages when the revised LP backend is forced
    /// process-wide (`OIC_LP_BACKEND=revised`): under the default backend
    /// selection every solve must stay bit-identical to the one-shot
    /// [`support`](SupportFunction::support) calls that the committed
    /// baselines were recorded with.
    fn support_batch(&self, directions: &[&[f64]]) -> Result<Vec<f64>, GeomError> {
        if directions.len() < 2
            || self.halfspaces.is_empty()
            || oic_lp::forced_backend() != Some(oic_lp::Backend::Revised)
        {
            return directions.iter().map(|d| self.support(d)).collect();
        }
        let mut lp = LinearProgram::maximize(directions[0]);
        for h in &self.halfspaces {
            lp.add_le(h.normal(), h.offset());
        }
        let mut warm = oic_lp::WarmStart::new();
        let mut out = Vec::with_capacity(directions.len());
        for d in directions {
            assert_eq!(d.len(), self.dim, "direction dimension mismatch");
            lp.set_objective(d);
            let sol = lp.solve_warm(&mut warm).map_err(GeomError::from)?;
            out.push(sol.objective());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Polytope {
        Polytope::from_box(&[-1.0, -1.0], &[1.0, 1.0])
    }

    #[test]
    fn box_membership_and_support() {
        let b = unit_box();
        assert!(b.contains(&[0.0, 0.0]));
        assert!(b.contains(&[1.0, -1.0]));
        assert!(!b.contains(&[1.1, 0.0]));
        assert!((b.support(&[1.0, 1.0]).unwrap() - 2.0).abs() < 1e-9);
        assert!((b.support(&[-2.0, 0.0]).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_box_is_flat() {
        // The paper's disturbance set [-1,1] × {0}.
        let w = Polytope::from_box(&[-1.0, 0.0], &[1.0, 0.0]);
        assert!(w.contains(&[0.5, 0.0]));
        assert!(!w.contains(&[0.5, 0.1]));
        assert!((w.support(&[0.0, 1.0]).unwrap()).abs() < 1e-9);
        assert!((w.support(&[1.0, 5.0]).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn emptiness() {
        let mut hs = unit_box().halfspaces().to_vec();
        hs.push(Halfspace::new(vec![1.0, 0.0], -2.0)); // x ≤ -2 contradicts x ≥ -1
        let p = Polytope::new(2, hs);
        assert!(p.is_empty());
        assert!(!unit_box().is_empty());
        assert!(!Polytope::universe(3).is_empty());
    }

    #[test]
    fn chebyshev_center_of_box() {
        let b = Polytope::from_box(&[0.0, 0.0], &[4.0, 2.0]);
        let (c, r) = b.chebyshev_center().unwrap();
        assert!((c[1] - 1.0).abs() < 1e-6);
        assert!((r - 1.0).abs() < 1e-6);
    }

    #[test]
    fn minkowski_diff_shrinks_box() {
        let b = Polytope::from_box(&[-2.0, -2.0], &[2.0, 2.0]);
        let w = Polytope::from_box(&[-0.5, -0.5], &[0.5, 0.5]);
        let d = b.minkowski_diff(&w).unwrap();
        assert!(d.contains(&[1.5, 1.5]));
        assert!(!d.contains(&[1.6, 0.0]));
        // Defining property: d ⊕ w ⊆ b on sampled points.
        for x in [[1.5, -1.5], [0.0, 1.5]] {
            for s in [[0.5, 0.5], [-0.5, 0.5]] {
                assert!(b.contains(&[x[0] + s[0], x[1] + s[1]]));
            }
        }
    }

    #[test]
    fn preimage_of_scaling() {
        let b = unit_box();
        let m = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let pre = b.preimage(&m, &[0.0, 0.0]);
        // {x : 2x ∈ [-1,1]²} = [-0.5, 0.5]².
        assert!(pre.contains(&[0.5, -0.5]));
        assert!(!pre.contains(&[0.6, 0.0]));
    }

    #[test]
    fn preimage_with_shift() {
        let b = unit_box();
        let m = Matrix::identity(2);
        let pre = b.preimage(&m, &[1.0, 0.0]);
        // {x : x + (1,0) ∈ box} = [-2,0] × [-1,1].
        assert!(pre.contains(&[-2.0, 0.0]));
        assert!(!pre.contains(&[0.5, 0.0]));
    }

    #[test]
    fn affine_image_roundtrip() {
        let b = unit_box();
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let img = b.affine_image_invertible(&m, &[0.5, 0.0]).unwrap();
        // Check via definition on sampled source points.
        for x in [[1.0, 1.0], [-1.0, 1.0], [0.3, -0.7]] {
            let y = [x[0] + x[1] + 0.5, x[1]];
            assert!(img.contains(&y), "{y:?}");
        }
        assert!(!img.contains(&[3.0, 0.0]));
    }

    #[test]
    fn translate_and_scale() {
        let b = unit_box();
        let t = b.translate(&[10.0, 0.0]);
        assert!(t.contains(&[10.5, 0.5]));
        assert!(!t.contains(&[0.0, 0.0]));
        let s = b.scale(3.0);
        assert!(s.contains(&[2.9, -2.9]));
        assert!(!s.contains(&[3.1, 0.0]));
    }

    #[test]
    fn subset_certificates() {
        let small = Polytope::from_box(&[-0.5, -0.5], &[0.5, 0.5]);
        let big = unit_box();
        assert!(small.is_subset_of(&big, 1e-9).unwrap());
        assert!(!big.is_subset_of(&small, 1e-9).unwrap());
        assert!(big.set_eq(&big.clone(), 1e-9).unwrap());
    }

    #[test]
    fn empty_set_is_subset_of_everything() {
        let empty = Polytope::new(
            1,
            vec![
                Halfspace::new(vec![1.0], 0.0),
                Halfspace::new(vec![-1.0], -1.0),
            ],
        );
        assert!(empty.is_empty());
        let any = Polytope::from_box(&[5.0], &[6.0]);
        assert!(empty.is_subset_of(&any, 1e-9).unwrap());
    }

    #[test]
    fn redundancy_removal() {
        let mut hs = unit_box().halfspaces().to_vec();
        hs.push(Halfspace::new(vec![1.0, 0.0], 5.0)); // implied by x ≤ 1
        hs.push(Halfspace::new(vec![1.0, 1.0], 10.0)); // implied
        hs.push(Halfspace::new(vec![2.0, 0.0], 2.0)); // duplicate of x ≤ 1 (scaled)
        let p = Polytope::new(2, hs);
        let r = p.remove_redundant();
        assert_eq!(r.num_halfspaces(), 4);
        assert!(r.set_eq(&unit_box(), 1e-7).unwrap());
    }

    #[test]
    fn vertices_of_triangle() {
        let tri = Polytope::new(
            2,
            vec![
                Halfspace::new(vec![-1.0, 0.0], 0.0),
                Halfspace::new(vec![0.0, -1.0], 0.0),
                Halfspace::new(vec![1.0, 1.0], 1.0),
            ],
        );
        let v = tri.vertices_2d().unwrap();
        assert_eq!(v.len(), 3);
        for expect in [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]] {
            assert!(
                v.iter()
                    .any(|p| (p[0] - expect[0]).abs() < 1e-7 && (p[1] - expect[1]).abs() < 1e-7),
                "missing vertex {expect:?} in {v:?}"
            );
        }
    }

    #[test]
    fn bounding_box_roundtrip() {
        let p = Polytope::from_box(&[-3.0, 2.0], &[-1.0, 7.0]);
        let (lo, hi) = p.bounding_box().unwrap();
        assert!((lo[0] + 3.0).abs() < 1e-9 && (hi[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn support_of_universe() {
        let u = Polytope::universe(2);
        assert_eq!(u.support(&[1.0, 0.0]).unwrap_err(), GeomError::Unbounded);
        assert_eq!(u.support(&[0.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn extreme_point_achieves_support() {
        let b = Polytope::from_box(&[-1.0, -2.0], &[3.0, 4.0]);
        let p = b.extreme_point(&[1.0, 1.0]).unwrap();
        assert!((p[0] - 3.0).abs() < 1e-9 && (p[1] - 4.0).abs() < 1e-9);
        let q = b.extreme_point(&[-1.0, 0.0]).unwrap();
        assert!((q[0] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_of_box_and_triangle() {
        let b = Polytope::from_box(&[0.0, 0.0], &[4.0, 3.0]);
        assert!((b.area_2d().unwrap() - 12.0).abs() < 1e-7);
        let tri = Polytope::new(
            2,
            vec![
                Halfspace::new(vec![-1.0, 0.0], 0.0),
                Halfspace::new(vec![0.0, -1.0], 0.0),
                Halfspace::new(vec![1.0, 1.0], 2.0),
            ],
        );
        assert!((tri.area_2d().unwrap() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn area_of_degenerate_box_is_zero() {
        let flat = Polytope::from_box(&[-1.0, 0.0], &[1.0, 0.0]);
        assert!(flat.area_2d().unwrap().abs() < 1e-9);
    }

    #[test]
    fn support_batch_matches_single_queries() {
        let p = Polytope::new(
            2,
            vec![
                Halfspace::new(vec![1.0, 0.3], 2.0),
                Halfspace::new(vec![-1.0, 0.2], 1.5),
                Halfspace::new(vec![0.1, 1.0], 1.0),
                Halfspace::new(vec![-0.2, -1.0], 2.5),
            ],
        );
        let dirs: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![-1.0, 2.0],
            vec![3.0, -0.5],
        ];
        let views: Vec<&[f64]> = dirs.iter().map(Vec::as_slice).collect();
        let batch = p.support_batch(&views).unwrap();
        for (d, b) in dirs.iter().zip(&batch) {
            let single = p.support(d).unwrap();
            assert!(
                (single - b).abs() < 1e-9,
                "batch {b} vs single {single} in {d:?}"
            );
        }
    }

    #[test]
    fn minkowski_sum_of_boxes_any_dim() {
        let a = Polytope::from_box(&[-1.0, -1.0, -1.0], &[1.0, 1.0, 1.0]);
        let b = Polytope::from_box(&[-0.5, -0.25, 0.0], &[0.5, 0.25, 0.0]);
        let s = a.minkowski_sum(&b).unwrap();
        assert_eq!(s.dim(), 3);
        assert!(s.contains(&[1.5, 1.25, 1.0]));
        assert!(!s.contains(&[1.6, 0.0, 0.0]));
        assert!(!s.contains(&[0.0, 1.3, 0.0]));
        assert!(!s.contains(&[0.0, 0.0, 1.1]));
    }

    #[test]
    fn minkowski_sum_support_is_additive() {
        let a = Polytope::from_box(&[-1.0, -2.0], &[3.0, 2.0]);
        let b = Polytope::new(
            2,
            vec![
                Halfspace::new(vec![-1.0, 0.0], 0.0),
                Halfspace::new(vec![0.0, -1.0], 0.0),
                Halfspace::new(vec![1.0, 1.0], 1.0),
            ],
        );
        let s = a.minkowski_sum(&b).unwrap();
        for dir in [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [-2.0, 0.5]] {
            let lhs = s.support(&dir).unwrap();
            let rhs = a.support(&dir).unwrap() + b.support(&dir).unwrap();
            assert!((lhs - rhs).abs() < 1e-6, "dir {dir:?}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn minkowski_sum_empty_operand_errors() {
        let a = Polytope::from_box(&[-1.0], &[1.0]);
        let empty = Polytope::new(
            1,
            vec![
                Halfspace::new(vec![1.0], 0.0),
                Halfspace::new(vec![-1.0], -1.0),
            ],
        );
        assert_eq!(a.minkowski_sum(&empty).unwrap_err(), GeomError::EmptySet);
    }

    #[test]
    fn min_slack_signed_depth() {
        let b = unit_box();
        assert!((b.min_slack(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((b.min_slack(&[0.5, 0.0]) - 0.5).abs() < 1e-12);
        assert!(b.min_slack(&[2.0, 0.0]) < 0.0);
    }
}
