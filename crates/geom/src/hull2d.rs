//! Planar convex hulls and V-rep → H-rep conversion.
//!
//! Used by the zonotope → polytope conversion and by 2-D Minkowski sums
//! (vertex sums followed by a hull). Only the 2-D case is needed: the ACC
//! case study has a 2-dimensional state, and higher-dimensional sets in this
//! workspace stay in H-rep or zonotope form.

use crate::{GeomError, Halfspace, Polytope};

/// Cross product `(b − a) × (c − a)`; positive for a counter-clockwise turn.
fn cross(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> f64 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

/// Computes the convex hull of a planar point set (Andrew's monotone chain),
/// returned in counter-clockwise order without repetition.
///
/// Collinear boundary points are dropped. Returns fewer than 3 points for
/// degenerate inputs (a single point, or a segment).
///
/// # Examples
///
/// ```
/// let hull = oic_geom::convex_hull_2d(&[
///     [0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.5, 0.5],
/// ]);
/// assert_eq!(hull.len(), 4);
/// ```
pub fn convex_hull_2d(points: &[[f64; 2]]) -> Vec<[f64; 2]> {
    let mut pts: Vec<[f64; 2]> = points.to_vec();
    pts.sort_by(|p, q| {
        p[0].partial_cmp(&q[0])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(p[1].partial_cmp(&q[1]).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup_by(|a, b| (a[0] - b[0]).abs() < 1e-12 && (a[1] - b[1]).abs() < 1e-12);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let mut hull: Vec<[f64; 2]> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 1e-12 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 1e-12
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    if hull.len() < 3 {
        // All points collinear: return the two extremes.
        return vec![pts[0], pts[n - 1]];
    }
    hull
}

/// Builds the H-representation of the convex hull of planar points.
///
/// Degenerate hulls are handled: a single point becomes the intersection of
/// four axis-aligned constraints pinning it; a segment becomes two parallel
/// line constraints plus two end-cap constraints.
///
/// # Errors
///
/// Returns [`GeomError::EmptySet`] for an empty input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), oic_geom::GeomError> {
/// let p = oic_geom::polytope_from_points_2d(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])?;
/// assert!(p.contains(&[0.5, 0.5]));
/// assert!(!p.contains(&[1.5, 1.5]));
/// # Ok(())
/// # }
/// ```
pub fn polytope_from_points_2d(points: &[[f64; 2]]) -> Result<Polytope, GeomError> {
    if points.is_empty() {
        return Err(GeomError::EmptySet);
    }
    let hull = convex_hull_2d(points);
    match hull.len() {
        1 => {
            let p = hull[0];
            Ok(Polytope::from_box(&[p[0], p[1]], &[p[0], p[1]]))
        }
        2 => {
            let (a, b) = (hull[0], hull[1]);
            let d = [b[0] - a[0], b[1] - a[1]];
            let n = [-d[1], d[0]]; // normal to the segment
            let mut hs = Vec::with_capacity(4);
            let nd = n[0] * a[0] + n[1] * a[1];
            hs.push(Halfspace::new(vec![n[0], n[1]], nd));
            hs.push(Halfspace::new(vec![-n[0], -n[1]], -nd));
            let da = d[0] * a[0] + d[1] * a[1];
            let db = d[0] * b[0] + d[1] * b[1];
            hs.push(Halfspace::new(vec![d[0], d[1]], da.max(db)));
            hs.push(Halfspace::new(vec![-d[0], -d[1]], -da.min(db)));
            Ok(Polytope::new(2, hs))
        }
        _ => {
            let m = hull.len();
            let mut hs = Vec::with_capacity(m);
            for i in 0..m {
                let a = hull[i];
                let b = hull[(i + 1) % m];
                // Outward normal of a CCW edge is the right-hand normal.
                let n = [b[1] - a[1], a[0] - b[0]];
                let off = n[0] * a[0] + n[1] * a[1];
                hs.push(Halfspace::new(vec![n[0], n[1]], off));
            }
            Ok(Polytope::new(2, hs))
        }
    }
}

/// Exact Minkowski sum of two bounded 2-D polytopes.
///
/// Deprecated thin wrapper: the sum is now computed by the
/// dimension-generic [`Polytope::minkowski_sum`] (lifted formulation +
/// Fourier–Motzkin projection); the original vertex-hull construction is
/// retained as [`minkowski_sum_2d_vertex_reference`] and the two are
/// cross-checked by property tests.
///
/// # Errors
///
/// * [`GeomError::NotTwoDimensional`] — either operand is not 2-D.
/// * [`GeomError::EmptySet`] — either operand is empty.
#[deprecated(note = "use the dimension-generic `Polytope::minkowski_sum`")]
pub fn minkowski_sum_2d(a: &Polytope, b: &Polytope) -> Result<Polytope, GeomError> {
    if a.dim() != 2 || b.dim() != 2 {
        return Err(GeomError::NotTwoDimensional);
    }
    a.minkowski_sum(b)
}

/// The pre-refactor planar Minkowski sum — vertex sums followed by a
/// convex hull — retained as the independent reference the n-D projection
/// path is property-tested against.
///
/// # Errors
///
/// * [`GeomError::NotTwoDimensional`] — either operand is not 2-D.
/// * [`GeomError::EmptySet`] — either operand is empty.
pub fn minkowski_sum_2d_vertex_reference(
    a: &Polytope,
    b: &Polytope,
) -> Result<Polytope, GeomError> {
    if a.dim() != 2 || b.dim() != 2 {
        return Err(GeomError::NotTwoDimensional);
    }
    let va = a.vertices_2d()?;
    let vb = b.vertices_2d()?;
    let mut sums = Vec::with_capacity(va.len() * vb.len());
    for p in &va {
        for q in &vb {
            sums.push([p[0] + q[0], p[1] + q[1]]);
        }
    }
    polytope_from_points_2d(&sums)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let hull = convex_hull_2d(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [1.0, 1.0],
            [0.0, 1.0],
            [0.5, 0.5],
            [0.25, 0.75],
        ]);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn hull_collinear_returns_extremes() {
        let hull = convex_hull_2d(&[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [0.5, 0.5]]);
        assert_eq!(hull.len(), 2);
        assert_eq!(hull[0], [0.0, 0.0]);
        assert_eq!(hull[1], [2.0, 2.0]);
    }

    #[test]
    fn hull_single_point() {
        let hull = convex_hull_2d(&[[3.0, 4.0], [3.0, 4.0]]);
        assert_eq!(hull.len(), 1);
    }

    #[test]
    fn polytope_from_triangle_contains_centroid() {
        let p = polytope_from_points_2d(&[[0.0, 0.0], [3.0, 0.0], [0.0, 3.0]]).unwrap();
        assert!(p.contains(&[1.0, 1.0]));
        assert!(p.contains(&[0.0, 0.0]));
        assert!(!p.contains(&[2.0, 2.0]));
    }

    #[test]
    fn polytope_from_segment() {
        let p = polytope_from_points_2d(&[[0.0, 0.0], [2.0, 2.0]]).unwrap();
        assert!(p.contains(&[1.0, 1.0]));
        assert!(!p.contains(&[1.0, 1.2]));
        assert!(!p.contains(&[3.0, 3.0]));
    }

    #[test]
    fn polytope_from_point() {
        let p = polytope_from_points_2d(&[[1.0, -2.0]]).unwrap();
        assert!(p.contains(&[1.0, -2.0]));
        assert!(!p.contains(&[1.0, -1.9]));
    }

    #[test]
    fn minkowski_sum_of_boxes() {
        let a = Polytope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
        let b = Polytope::from_box(&[-0.5, -0.25], &[0.5, 0.25]);
        #[allow(deprecated)]
        let s = minkowski_sum_2d(&a, &b).unwrap();
        assert!(s.contains(&[1.5, 1.25]));
        assert!(!s.contains(&[1.6, 0.0]));
        assert!(!s.contains(&[0.0, 1.3]));
    }

    #[test]
    fn minkowski_sum_with_segment() {
        // Box ⊕ vertical segment grows only vertically.
        let a = Polytope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
        let seg = polytope_from_points_2d(&[[0.0, -0.5], [0.0, 0.5]]).unwrap();
        #[allow(deprecated)]
        let s = minkowski_sum_2d(&a, &seg).unwrap();
        assert!(s.contains(&[1.0, 1.5]));
        assert!(!s.contains(&[1.1, 0.0]));
    }

    #[test]
    fn vrep_hrep_roundtrip() {
        let pts = [[0.0, 0.0], [4.0, 0.0], [4.0, 3.0], [0.0, 3.0]];
        let p = polytope_from_points_2d(&pts).unwrap();
        let verts = p.vertices_2d().unwrap();
        assert_eq!(verts.len(), 4);
        for want in pts {
            assert!(verts
                .iter()
                .any(|v| (v[0] - want[0]).abs() < 1e-7 && (v[1] - want[1]).abs() < 1e-7));
        }
    }
}
