//! Polytope geometry and reachability primitives.
//!
//! The paper's safety machinery is built from a handful of set operations on
//! convex polytopes: support functions, Minkowski differences, affine
//! pre-images (one-step backward reachable sets), intersections, and
//! projections (Fourier–Motzkin elimination, used to compute the feasible
//! set of the robust MPC and the `Pre` operator of controlled invariant
//! sets). No reachability crates exist offline, so this crate implements
//! them from scratch on top of [`oic_lp`].
//!
//! Sets are represented in **halfspace form** (`H-rep`): a [`Polytope`] is a
//! conjunction of [`Halfspace`] constraints `aᵀx ≤ b`. [`Zonotope`]s are the
//! second representation, used where Minkowski sums must stay exact (the
//! Raković invariant-set approximation).
//!
//! # Examples
//!
//! ```
//! use oic_geom::{Polytope, SupportFunction};
//!
//! # fn main() -> Result<(), oic_geom::GeomError> {
//! let unit_box = Polytope::from_box(&[-1.0, -1.0], &[1.0, 1.0]);
//! assert!(unit_box.contains(&[0.5, -0.5]));
//! assert!((unit_box.support(&[3.0, 4.0])? - 7.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod halfspace;
mod hull2d;
mod polytope;
mod projection;
mod support;
mod zonotope;

pub use halfspace::Halfspace;
#[allow(deprecated)]
pub use hull2d::minkowski_sum_2d;
pub use hull2d::{convex_hull_2d, minkowski_sum_2d_vertex_reference, polytope_from_points_2d};
pub use polytope::Polytope;
pub use support::{AffineImage, SupportFunction};
pub use zonotope::{canonical_unit, Zonotope};

use std::error::Error;
use std::fmt;

/// Error type for geometric queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// The set is unbounded in the queried direction.
    Unbounded,
    /// The set is empty, so the query has no answer.
    EmptySet,
    /// The operation requires a 2-dimensional set.
    NotTwoDimensional,
    /// The underlying LP solver failed (degenerate / ill-conditioned data).
    Lp(oic_lp::LpError),
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::Unbounded => write!(f, "set is unbounded in the queried direction"),
            GeomError::EmptySet => write!(f, "set is empty"),
            GeomError::NotTwoDimensional => {
                write!(f, "operation is only implemented for 2-dimensional sets")
            }
            GeomError::Lp(e) => write!(f, "lp solver failure: {e}"),
        }
    }
}

impl Error for GeomError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GeomError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<oic_lp::LpError> for GeomError {
    fn from(e: oic_lp::LpError) -> Self {
        match e {
            oic_lp::LpError::Infeasible => GeomError::EmptySet,
            oic_lp::LpError::Unbounded => GeomError::Unbounded,
            other => GeomError::Lp(other),
        }
    }
}
