//! Lockstep episode kernel ⇔ scalar reference loop equivalence.
//!
//! The lockstep kernel's whole contract is that it changes *when* work
//! happens, never *what* is computed: per-episode RNG streams, dropout
//! draws, and every floating-point operation execute in exactly the
//! scalar order, so the JSON report — aggregates and per-episode detail
//! alike — must be **byte-identical** under either kernel, at any
//! thread count. These tests pin that contract end to end through the
//! public API, across state dimensions 2–4 (monomorphized kernels) and
//! the dynamic-dimension fallback inputs, with and without actuation
//! dropouts, and with learned (DRL) and tube-MPC cells in the roster.

use oic_engine::{
    run_batch_opts, BatchConfig, DropoutSpec, KernelChoice, PolicySpec, SweepOptions,
};
use oic_scenarios::{
    AccScenario, CstrScenario, DoubleIntegratorScenario, ScenarioRegistry, TwoMassSpringScenario,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sweep rendered to its canonical JSON bytes.
fn sweep_json(
    registry: &ScenarioRegistry,
    policies: &[PolicySpec],
    config: &BatchConfig,
    dropouts: &[DropoutSpec],
    kernel: KernelChoice,
) -> String {
    let opts = SweepOptions {
        dropouts: Some(dropouts),
        kernel,
        ..Default::default()
    };
    let (report, _) = run_batch_opts(registry, policies, config, &opts).expect("sweep runs");
    report.to_json(true).to_json()
}

fn test_blob(sizes: &[usize], seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    oic_nn::Mlp::new(sizes, oic_nn::Activation::Relu, &mut rng)
        .to_bytes()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Reports are byte-identical between kernels across state dims 2–4,
    /// thread counts {1, 8}, and dropout axes {none, mk-1-4}.
    #[test]
    fn lockstep_matches_scalar_bytes(
        scenario_ix in 0..3usize,
        threads_ix in 0..2usize,
        with_dropout in 0..2usize,
        seed in 0..1_000u64,
    ) {
        let mut registry = ScenarioRegistry::new();
        match scenario_ix {
            0 => registry.register(Box::new(DoubleIntegratorScenario)), // n = 2
            1 => registry.register(Box::new(CstrScenario::default())),  // n = 3
            _ => registry.register(Box::new(TwoMassSpringScenario::default())), // n = 4
        }
        let policies = [
            PolicySpec::BangBang,
            PolicySpec::Random(0.3),
            PolicySpec::MaxSkip(2),
        ];
        let config = BatchConfig {
            episodes: 10,
            steps: 30,
            threads: [1, 8][threads_ix],
            chunk: 3,
            seed,
            detail: true,
            ..Default::default()
        };
        let dropouts: &[DropoutSpec] = if with_dropout == 1 {
            &[DropoutSpec::None, DropoutSpec::WeaklyHard { m: 1, k: 4 }]
        } else {
            &[DropoutSpec::None]
        };
        let lockstep =
            sweep_json(&registry, &policies, &config, dropouts, KernelChoice::Lockstep);
        let scalar = sweep_json(&registry, &policies, &config, dropouts, KernelChoice::Scalar);
        prop_assert_eq!(lockstep, scalar);
    }
}

/// A roster mixing tube-MPC actuation (acc) with a learned skipping
/// policy exercises the kernel's LP-solver and batched-MLP paths; the
/// bytes must still match the scalar loop at both thread counts.
#[test]
fn mpc_and_drl_roster_is_kernel_invariant() {
    let mut registry = ScenarioRegistry::new();
    registry.register(Box::new(AccScenario::default()));
    registry.register(Box::new(DoubleIntegratorScenario));
    // 2 states + one 2-dim disturbance-history slot → 4 network inputs.
    let policies = [
        PolicySpec::AlwaysRun,
        PolicySpec::drl("test", test_blob(&[4, 8, 2], 7)),
        PolicySpec::Periodic(4),
    ];
    for threads in [1, 8] {
        let config = BatchConfig {
            episodes: 6,
            steps: 25,
            threads,
            chunk: 2,
            detail: true,
            ..Default::default()
        };
        let lockstep = sweep_json(
            &registry,
            &policies,
            &config,
            &[DropoutSpec::None],
            KernelChoice::Lockstep,
        );
        let scalar = sweep_json(
            &registry,
            &policies,
            &config,
            &[DropoutSpec::None],
            KernelChoice::Scalar,
        );
        assert_eq!(lockstep, scalar, "threads = {threads}");
    }
}
