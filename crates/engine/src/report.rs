//! Batch results and their aggregation.

use oic_core::RunStats;

use crate::accumulator::CellAccumulator;
use crate::json::JsonValue;
use crate::spec::ShardInfo;

/// The outcome of one episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Episode index within its (scenario, policy) cell.
    pub episode: usize,
    /// The derived per-episode seed (for exact replay; serialized as a
    /// string — it does not fit losslessly in a JSON number).
    pub seed: u64,
    /// Runtime statistics from Algorithm 1.
    pub stats: RunStats,
    /// Steps at which the state was outside the safe set `X` (Theorem 1
    /// demands 0).
    pub safety_violations: usize,
    /// Steps at which the state was outside the invariant set `XI`.
    pub invariant_violations: usize,
    /// Worst-case slack to the safe-set boundary over the trajectory
    /// (negative would mean a violation).
    pub min_safe_slack: f64,
    /// Steps where the environment dropped a commanded input (actuator
    /// dropout); always 0 without a dropout spec.
    pub forced_skips: usize,
}

/// Whether a cell ran to completion or degraded under a fault.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CellOutcome {
    /// The cell's episodes all completed; aggregates are valid.
    #[default]
    Ok,
    /// The cell failed (a panicking worker, a diverging plant, a broken
    /// scenario): its aggregates are zeroed and only the reason is
    /// reported. The *rest* of the sweep is unaffected — a failed cell
    /// degrades one report entry instead of aborting the run.
    Failed {
        /// Human-readable failure cause, deterministic across thread
        /// counts (the lowest `(chunk, episode)` failure of the cell).
        reason: String,
    },
}

/// Aggregate statistics of one (scenario, policy) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy label.
    pub policy: String,
    /// Episodes executed.
    pub episodes: usize,
    /// Steps per episode.
    pub steps_per_episode: usize,
    /// Total steps across episodes.
    pub total_steps: usize,
    /// Mean fraction of steps skipped.
    pub mean_skip_rate: f64,
    /// Population variance of the per-episode skip rate.
    pub var_skip_rate: f64,
    /// Total skipped steps.
    pub skipped_steps: usize,
    /// Total monitor-forced runs.
    pub forced_runs: usize,
    /// Total policy-chosen runs.
    pub policy_runs: usize,
    /// Mean actuation effort per episode (`Σ‖u − u_skip‖₁`).
    pub mean_actuation_effort: f64,
    /// Population variance of the per-episode actuation effort.
    pub var_actuation_effort: f64,
    /// Safety violations across all episodes (must be 0).
    pub safety_violations: usize,
    /// Invariant-set violations across all episodes (must be 0).
    pub invariant_violations: usize,
    /// Worst slack to the safe-set boundary across all episodes.
    pub min_safe_slack: f64,
    /// Largest per-episode worst-case slack (brackets the boundary
    /// approach together with `min_safe_slack`).
    pub max_safe_slack: f64,
    /// Canonical dropout-spec label of the cell's environment axis
    /// (`"none"` for ordinary cells — then no dropout fields render, so
    /// reports without the axis stay byte-identical to schema v2).
    pub dropout: String,
    /// Environment-forced skips across all episodes (dropout cells).
    pub forced_skips: usize,
    /// Episodes with at least one safety violation (dropout cells: the
    /// violation-under-dropout tally).
    pub violation_episodes: usize,
    /// Completion status; `Failed` cells render a minimal entry.
    pub outcome: CellOutcome,
    /// Per-episode records, in episode order.
    pub episodes_detail: Vec<EpisodeRecord>,
}

impl CellReport {
    /// Finalizes a streaming accumulator into a cell report (no
    /// per-episode detail — the whole point of streaming is not having
    /// the records; attach detail separately if it was kept).
    pub fn from_accumulator(
        scenario: &str,
        policy: &str,
        steps_per_episode: usize,
        acc: &CellAccumulator,
    ) -> Self {
        Self {
            scenario: scenario.to_string(),
            policy: policy.to_string(),
            episodes: acc.episodes,
            steps_per_episode,
            total_steps: acc.total_steps,
            mean_skip_rate: acc.skip_rate.mean(),
            var_skip_rate: acc.skip_rate.variance(),
            skipped_steps: acc.skipped_steps,
            forced_runs: acc.forced_runs,
            policy_runs: acc.policy_runs,
            mean_actuation_effort: acc.actuation_effort.mean(),
            var_actuation_effort: acc.actuation_effort.variance(),
            safety_violations: acc.safety_violations,
            invariant_violations: acc.invariant_violations,
            min_safe_slack: acc.min_safe_slack,
            max_safe_slack: acc.max_safe_slack,
            dropout: "none".to_string(),
            forced_skips: acc.forced_skips,
            violation_episodes: acc.violation_episodes,
            outcome: CellOutcome::Ok,
            episodes_detail: Vec::new(),
        }
    }

    /// A degraded cell entry: the cell could not complete (worker panic,
    /// diverging plant, broken scenario) and reports only its identity
    /// and the failure reason. Aggregates are zeroed so a failed cell
    /// contributes nothing to report totals.
    pub fn failed(
        scenario: &str,
        policy: &str,
        dropout: &str,
        steps_per_episode: usize,
        reason: String,
    ) -> Self {
        Self {
            scenario: scenario.to_string(),
            policy: policy.to_string(),
            episodes: 0,
            steps_per_episode,
            total_steps: 0,
            mean_skip_rate: 0.0,
            var_skip_rate: 0.0,
            skipped_steps: 0,
            forced_runs: 0,
            policy_runs: 0,
            mean_actuation_effort: 0.0,
            var_actuation_effort: 0.0,
            safety_violations: 0,
            invariant_violations: 0,
            min_safe_slack: 0.0,
            max_safe_slack: 0.0,
            dropout: dropout.to_string(),
            forced_skips: 0,
            violation_episodes: 0,
            outcome: CellOutcome::Failed { reason },
            episodes_detail: Vec::new(),
        }
    }

    /// Whether the cell degraded under a fault.
    pub fn is_failed(&self) -> bool {
        matches!(self.outcome, CellOutcome::Failed { .. })
    }

    /// Folds episode records (already in episode order) into a cell.
    ///
    /// This is definitionally the one-at-a-time [`CellAccumulator`] fold:
    /// the streaming engine and this batch constructor agree exactly on
    /// every aggregate (the accumulator property test pins that down).
    pub fn from_episodes(
        scenario: &str,
        policy: &str,
        steps_per_episode: usize,
        episodes: Vec<EpisodeRecord>,
    ) -> Self {
        let mut acc = CellAccumulator::new();
        for record in &episodes {
            acc.push(record);
        }
        let mut report = Self::from_accumulator(scenario, policy, steps_per_episode, &acc);
        report.episodes_detail = episodes;
        report
    }

    /// JSON form (aggregates only; per-episode detail included when
    /// `detail` is set).
    ///
    /// Ordinary cells render exactly the schema-v2 fields; the dropout
    /// fields appear only on cells with a non-`none` dropout axis, and
    /// failed cells render a minimal `outcome: "failed"` entry — so a
    /// sweep without faults or dropout is byte-identical to v2 output.
    pub fn to_json(&self, detail: bool) -> JsonValue {
        if let CellOutcome::Failed { reason } = &self.outcome {
            let mut doc = JsonValue::object()
                .with("scenario", self.scenario.as_str())
                .with("policy", self.policy.as_str());
            if self.dropout != "none" {
                doc = doc.with("dropout", self.dropout.as_str());
            }
            return doc
                .with("outcome", "failed")
                .with("reason", reason.as_str());
        }
        let mut doc = JsonValue::object()
            .with("scenario", self.scenario.as_str())
            .with("policy", self.policy.as_str())
            .with("episodes", self.episodes)
            .with("steps_per_episode", self.steps_per_episode)
            .with("total_steps", self.total_steps)
            .with("mean_skip_rate", self.mean_skip_rate)
            .with("var_skip_rate", self.var_skip_rate)
            .with("skipped_steps", self.skipped_steps)
            .with("forced_runs", self.forced_runs)
            .with("policy_runs", self.policy_runs)
            .with("mean_actuation_effort", self.mean_actuation_effort)
            .with("var_actuation_effort", self.var_actuation_effort)
            .with("safety_violations", self.safety_violations)
            .with("invariant_violations", self.invariant_violations)
            .with("min_safe_slack", self.min_safe_slack)
            .with("max_safe_slack", self.max_safe_slack);
        if self.dropout != "none" {
            doc = doc
                .with("dropout", self.dropout.as_str())
                .with("forced_skips", self.forced_skips)
                .with("violation_episodes", self.violation_episodes);
        }
        if detail {
            let rows: Vec<JsonValue> = self
                .episodes_detail
                .iter()
                .map(|r| {
                    let mut row = JsonValue::object()
                        .with("episode", r.episode)
                        .with("seed", r.seed.to_string())
                        .with("steps", r.stats.steps)
                        .with("skipped", r.stats.skipped)
                        .with("forced_runs", r.stats.forced_runs)
                        .with("actuation_effort", r.stats.actuation_effort)
                        .with("safety_violations", r.safety_violations)
                        .with("min_safe_slack", r.min_safe_slack);
                    if self.dropout != "none" {
                        row = row.with("forced_skips", r.forced_skips);
                    }
                    row
                })
                .collect();
            doc = doc.with("episodes_detail", JsonValue::Array(rows));
        }
        doc
    }
}

/// The full result of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The base seed the batch derived everything from.
    pub seed: u64,
    /// Which shard of the materialized cell grid this report covers
    /// (`None` for a complete run; `Some` reports interleave back into
    /// the unsharded byte stream via `merge`).
    pub shard: Option<ShardInfo>,
    /// One cell per (scenario, policy) pair, in scenario-major order.
    pub cells: Vec<CellReport>,
}

impl BatchReport {
    /// Total safety violations across the whole batch.
    pub fn total_safety_violations(&self) -> usize {
        self.cells.iter().map(|c| c.safety_violations).sum()
    }

    /// Looks up one cell by `(scenario, policy)` — the first match in
    /// report order, which is the `dropout == "none"` variant when the
    /// sweep carried a dropout axis.
    pub fn cell(&self, scenario: &str, policy: &str) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy)
    }

    /// Looks up one cell by its full `(scenario, policy, dropout)` key.
    pub fn cell_with_dropout(
        &self,
        scenario: &str,
        policy: &str,
        dropout: &str,
    ) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy && c.dropout == dropout)
    }

    /// Cells that degraded under a fault.
    pub fn failed_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.is_failed()).count()
    }

    /// JSON form. `detail` controls per-episode rows.
    ///
    /// The output is deterministic for a given seed and configuration —
    /// wall-clock timing is intentionally excluded. The schema version
    /// renders as 3 only when the report carries a `Failed` cell (the
    /// entry shape v2 consumers never saw); fully-successful reports —
    /// with or without dropout cells — keep rendering version 2, so
    /// fault-free sweeps stay byte-identical across the schema bump.
    pub fn to_json(&self, detail: bool) -> JsonValue {
        let version: usize = if self.cells.iter().any(CellReport::is_failed) {
            3
        } else {
            2
        };
        let mut doc = JsonValue::object()
            .with("kind", "oic-engine-batch")
            .with("version", version)
            .with("seed", self.seed.to_string());
        if let Some(shard) = &self.shard {
            doc = doc.with("shard", format!("{}/{}", shard.index, shard.of));
        }
        doc.with(
            "cells",
            JsonValue::Array(self.cells.iter().map(|c| c.to_json(detail)).collect()),
        )
        .with("total_safety_violations", self.total_safety_violations())
    }

    /// A plain-text summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:<14} {:>9} {:>11} {:>12} {:>12} {:>11}\n",
            "scenario", "policy", "episodes", "skip rate", "forced runs", "effort/ep", "violations"
        ));
        out.push_str(&"-".repeat(95));
        out.push('\n');
        for cell in &self.cells {
            if let CellOutcome::Failed { reason } = &cell.outcome {
                out.push_str(&format!(
                    "{:<20} {:<14} FAILED: {}\n",
                    cell.scenario, cell.policy, reason,
                ));
                continue;
            }
            let policy = if cell.dropout == "none" {
                cell.policy.clone()
            } else {
                format!("{}@{}", cell.policy, cell.dropout)
            };
            out.push_str(&format!(
                "{:<20} {:<14} {:>9} {:>10.1}% {:>12} {:>12.2} {:>11}\n",
                cell.scenario,
                policy,
                cell.episodes,
                100.0 * cell.mean_skip_rate,
                cell.forced_runs,
                cell.mean_actuation_effort,
                cell.safety_violations,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(episode: usize, skipped: usize) -> EpisodeRecord {
        EpisodeRecord {
            episode,
            seed: 42 + episode as u64,
            stats: RunStats {
                steps: 10,
                skipped,
                forced_runs: 1,
                policy_runs: 10 - skipped - 1,
                actuation_effort: 5.0,
            },
            safety_violations: 0,
            invariant_violations: 0,
            min_safe_slack: 1.5 - episode as f64 * 0.25,
            forced_skips: 0,
        }
    }

    #[test]
    fn aggregation_adds_up() {
        let cell =
            CellReport::from_episodes("demo", "bang-bang", 10, vec![record(0, 4), record(1, 6)]);
        assert_eq!(cell.episodes, 2);
        assert_eq!(cell.total_steps, 20);
        assert_eq!(cell.skipped_steps, 10);
        assert_eq!(cell.forced_runs, 2);
        assert!((cell.mean_skip_rate - 0.5).abs() < 1e-12);
        // Rates 0.4 and 0.6: population variance 0.01.
        assert!((cell.var_skip_rate - 0.01).abs() < 1e-12);
        assert!((cell.mean_actuation_effort - 5.0).abs() < 1e-12);
        assert!(cell.var_actuation_effort.abs() < 1e-12);
        assert!((cell.min_safe_slack - 1.25).abs() < 1e-12);
        assert!((cell.max_safe_slack - 1.5).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_fields() {
        let report = BatchReport {
            seed: 7,
            shard: None,
            cells: vec![CellReport::from_episodes(
                "demo",
                "p",
                10,
                vec![record(0, 3)],
            )],
        };
        // Episode seeds exceed 2^53; the string form must be exact.
        let big = u64::MAX - 1;
        let row = JsonValue::object().with("seed", big.to_string()).to_json();
        assert!(row.contains(&format!("\"{big}\"")));
        let json = report.to_json(true).to_json_pretty();
        assert!(json.contains("\"kind\": \"oic-engine-batch\""));
        assert!(json.contains("\"seed\": \"7\""));
        assert!(json.contains("\"episodes_detail\""));
        let compact = report.to_json(false).to_json();
        assert!(!compact.contains("episodes_detail"));
    }

    #[test]
    fn fault_free_reports_render_schema_v2_with_no_new_fields() {
        let report = BatchReport {
            seed: 7,
            shard: None,
            cells: vec![CellReport::from_episodes(
                "demo",
                "p",
                10,
                vec![record(0, 3)],
            )],
        };
        let json = report.to_json(true).to_json_pretty();
        assert!(json.contains("\"version\": 2"));
        for absent in ["dropout", "forced_skips", "outcome", "violation_episodes"] {
            assert!(!json.contains(absent), "{absent:?} must not render");
        }
    }

    #[test]
    fn failed_cells_render_minimal_entries_and_bump_the_version() {
        let report = BatchReport {
            seed: 7,
            shard: None,
            cells: vec![
                CellReport::from_episodes("demo", "p", 10, vec![record(0, 3)]),
                CellReport::failed("demo", "q", "none", 10, "episode 3: panicked: boom".into()),
            ],
        };
        assert_eq!(report.failed_cells(), 1);
        let json = report.to_json(false).to_json_pretty();
        assert!(json.contains("\"version\": 3"), "schema bump: {json}");
        assert!(json.contains("\"outcome\": \"failed\""));
        assert!(json.contains("\"reason\": \"episode 3: panicked: boom\""));
        assert!(
            !json.contains("\"outcome\": \"ok\""),
            "ok cells carry no outcome field"
        );
        assert_eq!(report.total_safety_violations(), 0, "failed cells zeroed");
    }

    #[test]
    fn dropout_cells_render_their_axis_and_tallies() {
        let mut cell = CellReport::from_episodes("demo", "p", 10, vec![record(0, 3)]);
        cell.dropout = "mk-1-5".to_string();
        cell.forced_skips = 17;
        cell.violation_episodes = 2;
        let report = BatchReport {
            seed: 7,
            shard: None,
            cells: vec![cell],
        };
        let json = report.to_json(true).to_json_pretty();
        assert!(json.contains("\"version\": 2"), "dropout alone is not v3");
        assert!(json.contains("\"dropout\": \"mk-1-5\""));
        assert!(json.contains("\"forced_skips\": 17"));
        assert!(json.contains("\"violation_episodes\": 2"));
        assert!(
            report
                .cell_with_dropout("demo", "p", "mk-1-5")
                .is_some_and(|c| c.forced_skips == 17),
            "full-key lookup"
        );
    }

    #[test]
    fn table_renders_every_cell() {
        let report = BatchReport {
            seed: 1,
            shard: None,
            cells: vec![
                CellReport::from_episodes("a", "p1", 10, vec![record(0, 3)]),
                CellReport::from_episodes("b", "p2", 10, vec![record(0, 5)]),
            ],
        };
        let table = report.render_table();
        assert!(table.contains("a") && table.contains("p2"));
        assert_eq!(table.lines().count(), 4);
    }
}
