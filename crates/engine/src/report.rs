//! Batch results and their aggregation.

use oic_core::RunStats;

use crate::accumulator::CellAccumulator;
use crate::json::JsonValue;
use crate::spec::ShardInfo;

/// The outcome of one episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Episode index within its (scenario, policy) cell.
    pub episode: usize,
    /// The derived per-episode seed (for exact replay; serialized as a
    /// string — it does not fit losslessly in a JSON number).
    pub seed: u64,
    /// Runtime statistics from Algorithm 1.
    pub stats: RunStats,
    /// Steps at which the state was outside the safe set `X` (Theorem 1
    /// demands 0).
    pub safety_violations: usize,
    /// Steps at which the state was outside the invariant set `XI`.
    pub invariant_violations: usize,
    /// Worst-case slack to the safe-set boundary over the trajectory
    /// (negative would mean a violation).
    pub min_safe_slack: f64,
}

/// Aggregate statistics of one (scenario, policy) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy label.
    pub policy: String,
    /// Episodes executed.
    pub episodes: usize,
    /// Steps per episode.
    pub steps_per_episode: usize,
    /// Total steps across episodes.
    pub total_steps: usize,
    /// Mean fraction of steps skipped.
    pub mean_skip_rate: f64,
    /// Population variance of the per-episode skip rate.
    pub var_skip_rate: f64,
    /// Total skipped steps.
    pub skipped_steps: usize,
    /// Total monitor-forced runs.
    pub forced_runs: usize,
    /// Total policy-chosen runs.
    pub policy_runs: usize,
    /// Mean actuation effort per episode (`Σ‖u − u_skip‖₁`).
    pub mean_actuation_effort: f64,
    /// Population variance of the per-episode actuation effort.
    pub var_actuation_effort: f64,
    /// Safety violations across all episodes (must be 0).
    pub safety_violations: usize,
    /// Invariant-set violations across all episodes (must be 0).
    pub invariant_violations: usize,
    /// Worst slack to the safe-set boundary across all episodes.
    pub min_safe_slack: f64,
    /// Largest per-episode worst-case slack (brackets the boundary
    /// approach together with `min_safe_slack`).
    pub max_safe_slack: f64,
    /// Per-episode records, in episode order.
    pub episodes_detail: Vec<EpisodeRecord>,
}

impl CellReport {
    /// Finalizes a streaming accumulator into a cell report (no
    /// per-episode detail — the whole point of streaming is not having
    /// the records; attach detail separately if it was kept).
    pub fn from_accumulator(
        scenario: &str,
        policy: &str,
        steps_per_episode: usize,
        acc: &CellAccumulator,
    ) -> Self {
        Self {
            scenario: scenario.to_string(),
            policy: policy.to_string(),
            episodes: acc.episodes,
            steps_per_episode,
            total_steps: acc.total_steps,
            mean_skip_rate: acc.skip_rate.mean(),
            var_skip_rate: acc.skip_rate.variance(),
            skipped_steps: acc.skipped_steps,
            forced_runs: acc.forced_runs,
            policy_runs: acc.policy_runs,
            mean_actuation_effort: acc.actuation_effort.mean(),
            var_actuation_effort: acc.actuation_effort.variance(),
            safety_violations: acc.safety_violations,
            invariant_violations: acc.invariant_violations,
            min_safe_slack: acc.min_safe_slack,
            max_safe_slack: acc.max_safe_slack,
            episodes_detail: Vec::new(),
        }
    }

    /// Folds episode records (already in episode order) into a cell.
    ///
    /// This is definitionally the one-at-a-time [`CellAccumulator`] fold:
    /// the streaming engine and this batch constructor agree exactly on
    /// every aggregate (the accumulator property test pins that down).
    pub fn from_episodes(
        scenario: &str,
        policy: &str,
        steps_per_episode: usize,
        episodes: Vec<EpisodeRecord>,
    ) -> Self {
        let mut acc = CellAccumulator::new();
        for record in &episodes {
            acc.push(record);
        }
        let mut report = Self::from_accumulator(scenario, policy, steps_per_episode, &acc);
        report.episodes_detail = episodes;
        report
    }

    /// JSON form (aggregates only; per-episode detail included when
    /// `detail` is set).
    pub fn to_json(&self, detail: bool) -> JsonValue {
        let mut doc = JsonValue::object()
            .with("scenario", self.scenario.as_str())
            .with("policy", self.policy.as_str())
            .with("episodes", self.episodes)
            .with("steps_per_episode", self.steps_per_episode)
            .with("total_steps", self.total_steps)
            .with("mean_skip_rate", self.mean_skip_rate)
            .with("var_skip_rate", self.var_skip_rate)
            .with("skipped_steps", self.skipped_steps)
            .with("forced_runs", self.forced_runs)
            .with("policy_runs", self.policy_runs)
            .with("mean_actuation_effort", self.mean_actuation_effort)
            .with("var_actuation_effort", self.var_actuation_effort)
            .with("safety_violations", self.safety_violations)
            .with("invariant_violations", self.invariant_violations)
            .with("min_safe_slack", self.min_safe_slack)
            .with("max_safe_slack", self.max_safe_slack);
        if detail {
            let rows: Vec<JsonValue> = self
                .episodes_detail
                .iter()
                .map(|r| {
                    JsonValue::object()
                        .with("episode", r.episode)
                        .with("seed", r.seed.to_string())
                        .with("steps", r.stats.steps)
                        .with("skipped", r.stats.skipped)
                        .with("forced_runs", r.stats.forced_runs)
                        .with("actuation_effort", r.stats.actuation_effort)
                        .with("safety_violations", r.safety_violations)
                        .with("min_safe_slack", r.min_safe_slack)
                })
                .collect();
            doc = doc.with("episodes_detail", JsonValue::Array(rows));
        }
        doc
    }
}

/// The full result of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The base seed the batch derived everything from.
    pub seed: u64,
    /// Which shard of the materialized cell grid this report covers
    /// (`None` for a complete run; `Some` reports interleave back into
    /// the unsharded byte stream via `merge`).
    pub shard: Option<ShardInfo>,
    /// One cell per (scenario, policy) pair, in scenario-major order.
    pub cells: Vec<CellReport>,
}

impl BatchReport {
    /// Total safety violations across the whole batch.
    pub fn total_safety_violations(&self) -> usize {
        self.cells.iter().map(|c| c.safety_violations).sum()
    }

    /// Looks up one cell.
    pub fn cell(&self, scenario: &str, policy: &str) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy)
    }

    /// JSON form. `detail` controls per-episode rows.
    ///
    /// The output is deterministic for a given seed and configuration —
    /// wall-clock timing is intentionally excluded.
    pub fn to_json(&self, detail: bool) -> JsonValue {
        let mut doc = JsonValue::object()
            .with("kind", "oic-engine-batch")
            .with("version", 2usize)
            .with("seed", self.seed.to_string());
        if let Some(shard) = &self.shard {
            doc = doc.with("shard", format!("{}/{}", shard.index, shard.of));
        }
        doc.with(
            "cells",
            JsonValue::Array(self.cells.iter().map(|c| c.to_json(detail)).collect()),
        )
        .with("total_safety_violations", self.total_safety_violations())
    }

    /// A plain-text summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:<14} {:>9} {:>11} {:>12} {:>12} {:>11}\n",
            "scenario", "policy", "episodes", "skip rate", "forced runs", "effort/ep", "violations"
        ));
        out.push_str(&"-".repeat(95));
        out.push('\n');
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<20} {:<14} {:>9} {:>10.1}% {:>12} {:>12.2} {:>11}\n",
                cell.scenario,
                cell.policy,
                cell.episodes,
                100.0 * cell.mean_skip_rate,
                cell.forced_runs,
                cell.mean_actuation_effort,
                cell.safety_violations,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(episode: usize, skipped: usize) -> EpisodeRecord {
        EpisodeRecord {
            episode,
            seed: 42 + episode as u64,
            stats: RunStats {
                steps: 10,
                skipped,
                forced_runs: 1,
                policy_runs: 10 - skipped - 1,
                actuation_effort: 5.0,
            },
            safety_violations: 0,
            invariant_violations: 0,
            min_safe_slack: 1.5 - episode as f64 * 0.25,
        }
    }

    #[test]
    fn aggregation_adds_up() {
        let cell =
            CellReport::from_episodes("demo", "bang-bang", 10, vec![record(0, 4), record(1, 6)]);
        assert_eq!(cell.episodes, 2);
        assert_eq!(cell.total_steps, 20);
        assert_eq!(cell.skipped_steps, 10);
        assert_eq!(cell.forced_runs, 2);
        assert!((cell.mean_skip_rate - 0.5).abs() < 1e-12);
        // Rates 0.4 and 0.6: population variance 0.01.
        assert!((cell.var_skip_rate - 0.01).abs() < 1e-12);
        assert!((cell.mean_actuation_effort - 5.0).abs() < 1e-12);
        assert!(cell.var_actuation_effort.abs() < 1e-12);
        assert!((cell.min_safe_slack - 1.25).abs() < 1e-12);
        assert!((cell.max_safe_slack - 1.5).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_fields() {
        let report = BatchReport {
            seed: 7,
            shard: None,
            cells: vec![CellReport::from_episodes(
                "demo",
                "p",
                10,
                vec![record(0, 3)],
            )],
        };
        // Episode seeds exceed 2^53; the string form must be exact.
        let big = u64::MAX - 1;
        let row = JsonValue::object().with("seed", big.to_string()).to_json();
        assert!(row.contains(&format!("\"{big}\"")));
        let json = report.to_json(true).to_json_pretty();
        assert!(json.contains("\"kind\": \"oic-engine-batch\""));
        assert!(json.contains("\"seed\": \"7\""));
        assert!(json.contains("\"episodes_detail\""));
        let compact = report.to_json(false).to_json();
        assert!(!compact.contains("episodes_detail"));
    }

    #[test]
    fn table_renders_every_cell() {
        let report = BatchReport {
            seed: 1,
            shard: None,
            cells: vec![
                CellReport::from_episodes("a", "p1", 10, vec![record(0, 3)]),
                CellReport::from_episodes("b", "p2", 10, vec![record(0, 5)]),
            ],
        };
        let table = report.render_table();
        assert!(table.contains("a") && table.contains("p2"));
        assert_eq!(table.lines().count(), 4);
    }
}
