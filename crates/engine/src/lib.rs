//! Parallel batch evaluation engine for the intermittent-control
//! framework.
//!
//! The paper evaluates 500 episodes per figure; the ROADMAP wants
//! fleet-scale throughput over many scenarios. This crate is the layer
//! that gets there:
//!
//! * [`run_batch`] chunks every `(scenario, policy)` cell into
//!   episode-range tasks and drains them all through one work-stealing
//!   pool ([`run_work_stealing`]: global injector + per-worker deques,
//!   pure `std`), one [`IntermittentController`] (Algorithm 1) per
//!   episode;
//! * aggregation streams: each chunk folds its episodes into a
//!   [`CellAccumulator`] (Welford means/variances, saturating safety
//!   tallies) and chunks merge in deterministic chunk order — memory is
//!   O(cells), not O(episodes);
//! * seeding is deterministic per `(base seed, scenario, policy,
//!   episode)` and chunk boundaries never depend on the thread count —
//!   results are byte-identical for any number of workers;
//! * [`BatchReport`] aggregates [`oic_core::RunStats`] per cell (skip
//!   rate, forced runs, actuation effort, safety violations) and emits
//!   machine-readable JSON via the dependency-free [`JsonValue`]
//!   writer/parser;
//! * every cell is a pure function of its canonical spec: [`SweepSpec`]
//!   pins the canonical wire form, [`cell_hash`] content-addresses each
//!   `(scenario, policy, dropout)` cell, and [`run_batch_opts`] layers
//!   the [`CellCache`], shard selection ([`ShardInfo`]), and streaming
//!   cell callbacks over the same byte-identical results;
//! * faults degrade, never abort: a panicking worker, a NaN plant
//!   update, or a diverging trajectory turns its cell into a
//!   [`CellOutcome::Failed`] report entry while the sweep completes,
//!   and the environment-forced actuation-dropout axis
//!   ([`DropoutSpec`], [`FaultPlan`] — re-exported from `oic-faults`)
//!   stays byte-reproducible at any thread count.
//!
//! [`IntermittentController`]: oic_core::IntermittentController
//!
//! # Examples
//!
//! ```
//! use oic_engine::{run_batch, BatchConfig, PolicySpec};
//! use oic_scenarios::{DoubleIntegratorScenario, ScenarioRegistry};
//!
//! let mut registry = ScenarioRegistry::new();
//! registry.register(Box::new(DoubleIntegratorScenario));
//! let config = BatchConfig { episodes: 4, steps: 25, ..Default::default() };
//! let report = run_batch(&registry, &[PolicySpec::BangBang], &config).unwrap();
//! assert_eq!(report.total_safety_violations(), 0); // Theorem 1
//! println!("{}", report.to_json(false).to_json_pretty());
//! ```

mod accumulator;
mod cache;
mod hashing;
mod json;
mod kernel;
mod report;
mod runner;
mod spec;
mod steal;

pub use accumulator::{CellAccumulator, Moments};
pub use cache::{decode_cell, encode_cell, CacheError, CacheStats, CellCache};
pub use hashing::{from_hex, sha256, to_hex, Sha256};
pub use json::{JsonParseError, JsonValue};
pub use oic_faults::{CellFault, DropoutSpec, FaultPlan};
pub use report::{BatchReport, CellOutcome, CellReport, EpisodeRecord};
pub use runner::{
    episode_seed, executed_throughput, run_batch, run_batch_opts, run_batch_with_stats,
    run_episode, run_episode_opts, BatchConfig, CellTiming, EngineError, EpisodeFaults,
    ExecutedThroughput, KernelChoice, PolicySpec, PreparedPolicy, SweepOptions, SweepStats,
};
pub use spec::{
    canonical_policy, cell_hash, cell_hash_canonical, parse_policy, ShardInfo, SweepSpec,
    CACHE_EPOCH,
};
pub use steal::{run_work_stealing, StealStats};
