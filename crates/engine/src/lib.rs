//! Parallel batch evaluation engine for the intermittent-control
//! framework.
//!
//! The paper evaluates 500 episodes per figure; the ROADMAP wants
//! fleet-scale throughput over many scenarios. This crate is the layer
//! that gets there:
//!
//! * [`run_batch`] executes every `(scenario, policy)` cell of a batch in
//!   parallel over worker threads, one [`IntermittentController`]
//!   (Algorithm 1) per episode;
//! * seeding is deterministic per `(base seed, scenario, policy,
//!   episode)` — results are byte-identical for any thread count;
//! * [`BatchReport`] aggregates [`oic_core::RunStats`] per cell (skip
//!   rate, forced runs, actuation effort, safety violations) and emits
//!   machine-readable JSON via the dependency-free [`JsonValue`] writer.
//!
//! [`IntermittentController`]: oic_core::IntermittentController
//!
//! # Examples
//!
//! ```
//! use oic_engine::{run_batch, BatchConfig, PolicySpec};
//! use oic_scenarios::{DoubleIntegratorScenario, ScenarioRegistry};
//!
//! let mut registry = ScenarioRegistry::new();
//! registry.register(Box::new(DoubleIntegratorScenario));
//! let config = BatchConfig { episodes: 4, steps: 25, ..Default::default() };
//! let report = run_batch(&registry, &[PolicySpec::BangBang], &config).unwrap();
//! assert_eq!(report.total_safety_violations(), 0); // Theorem 1
//! println!("{}", report.to_json(false).to_json_pretty());
//! ```

mod json;
mod report;
mod runner;

pub use json::JsonValue;
pub use report::{BatchReport, CellReport, EpisodeRecord};
pub use runner::{
    episode_seed, run_batch, run_episode, BatchConfig, EngineError, PolicySpec, PreparedPolicy,
};
