//! Streaming per-cell aggregation.
//!
//! The first-cut engine buffered every [`EpisodeRecord`] of a cell and
//! folded them after the join — O(episodes) memory, which caps
//! million-episode sweeps. The [`CellAccumulator`] replaces that buffer:
//! it folds records *as they finish* into constant-size state (Welford
//! moments for the means/variances, saturating integer tallies for the
//! safety counters, running min/max for the slack), so a sweep's memory
//! is O(cells) regardless of episode count.
//!
//! Determinism contract: [`CellAccumulator::push`] in episode order is the
//! canonical fold ([`crate::CellReport::from_episodes`] uses exactly it),
//! and [`CellAccumulator::merge`] combines chunk accumulators with Chan's
//! parallel-moments formula. The scheduler merges chunks in ascending
//! chunk index, and chunk boundaries depend only on the configuration —
//! never on the thread count — so reports are byte-identical for any
//! number of workers.

use crate::report::EpisodeRecord;

/// Running mean/variance via Welford's online algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// Folds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator (Chan et al.'s pairwise formula).
    ///
    /// Merging an empty side is exact (the other side is returned
    /// verbatim), so zero-length chunks cannot perturb the fold.
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.count += other.count;
    }

    /// Number of observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (0 when empty, matching the report convention).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            // Guard the tiny negative values floating-point cancellation
            // can leave in m2.
            (self.m2 / self.count as f64).max(0.0)
        }
    }
}

/// Constant-size streaming aggregate of one (scenario, policy) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAccumulator {
    /// Episodes folded so far.
    pub episodes: usize,
    /// Total closed-loop steps (saturating).
    pub total_steps: usize,
    /// Total skipped steps (saturating).
    pub skipped_steps: usize,
    /// Total monitor-forced runs (saturating).
    pub forced_runs: usize,
    /// Total policy-chosen runs (saturating).
    pub policy_runs: usize,
    /// Safety violations across episodes (saturating; Theorem 1 demands
    /// this stays 0, so saturation is a reporting nicety, not a loophole).
    pub safety_violations: usize,
    /// Invariant-set violations across episodes (saturating).
    pub invariant_violations: usize,
    /// Environment-forced skips (actuator dropout) across episodes
    /// (saturating; always 0 without a dropout spec).
    pub forced_skips: usize,
    /// Episodes with at least one safety violation (saturating) — the
    /// violation-under-dropout tally: under forced dropout Theorem 1's
    /// premise no longer holds, and this counts how many episodes
    /// actually left `X`.
    pub violation_episodes: usize,
    /// Per-episode skip-rate moments.
    pub skip_rate: Moments,
    /// Per-episode actuation-effort moments.
    pub actuation_effort: Moments,
    /// Worst (smallest) safe-set slack over all episodes.
    pub min_safe_slack: f64,
    /// Best (largest) per-episode worst-case slack — together with the min
    /// this brackets how close trajectories get to the boundary.
    pub max_safe_slack: f64,
}

impl Default for CellAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl CellAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            episodes: 0,
            total_steps: 0,
            skipped_steps: 0,
            forced_runs: 0,
            policy_runs: 0,
            safety_violations: 0,
            invariant_violations: 0,
            forced_skips: 0,
            violation_episodes: 0,
            skip_rate: Moments::default(),
            actuation_effort: Moments::default(),
            min_safe_slack: f64::INFINITY,
            max_safe_slack: f64::NEG_INFINITY,
        }
    }

    /// Folds one episode record. This is the canonical (sequential) fold
    /// order: chunks push records in ascending episode index.
    pub fn push(&mut self, record: &EpisodeRecord) {
        self.episodes = self.episodes.saturating_add(1);
        self.total_steps = self.total_steps.saturating_add(record.stats.steps);
        self.skipped_steps = self.skipped_steps.saturating_add(record.stats.skipped);
        self.forced_runs = self.forced_runs.saturating_add(record.stats.forced_runs);
        self.policy_runs = self.policy_runs.saturating_add(record.stats.policy_runs);
        self.safety_violations = self
            .safety_violations
            .saturating_add(record.safety_violations);
        self.invariant_violations = self
            .invariant_violations
            .saturating_add(record.invariant_violations);
        self.forced_skips = self.forced_skips.saturating_add(record.forced_skips);
        if record.safety_violations > 0 {
            self.violation_episodes = self.violation_episodes.saturating_add(1);
        }
        self.skip_rate.push(record.stats.skip_rate());
        self.actuation_effort.push(record.stats.actuation_effort);
        self.min_safe_slack = self.min_safe_slack.min(record.min_safe_slack);
        self.max_safe_slack = self.max_safe_slack.max(record.min_safe_slack);
    }

    /// Merges a later chunk's accumulator into this one.
    ///
    /// Callers must merge in ascending chunk order — the scheduler's
    /// per-cell merge state guarantees it — so the result is independent
    /// of which worker finished which chunk first.
    pub fn merge(&mut self, other: &CellAccumulator) {
        self.episodes = self.episodes.saturating_add(other.episodes);
        self.total_steps = self.total_steps.saturating_add(other.total_steps);
        self.skipped_steps = self.skipped_steps.saturating_add(other.skipped_steps);
        self.forced_runs = self.forced_runs.saturating_add(other.forced_runs);
        self.policy_runs = self.policy_runs.saturating_add(other.policy_runs);
        self.safety_violations = self
            .safety_violations
            .saturating_add(other.safety_violations);
        self.invariant_violations = self
            .invariant_violations
            .saturating_add(other.invariant_violations);
        self.forced_skips = self.forced_skips.saturating_add(other.forced_skips);
        self.violation_episodes = self
            .violation_episodes
            .saturating_add(other.violation_episodes);
        self.skip_rate.merge(&other.skip_rate);
        self.actuation_effort.merge(&other.actuation_effort);
        self.min_safe_slack = self.min_safe_slack.min(other.min_safe_slack);
        self.max_safe_slack = self.max_safe_slack.max(other.max_safe_slack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_core::RunStats;

    fn record(episode: usize, skipped: usize, effort: f64, slack: f64) -> EpisodeRecord {
        EpisodeRecord {
            episode,
            seed: episode as u64,
            stats: RunStats {
                steps: 10,
                skipped,
                forced_runs: 1,
                policy_runs: 9 - skipped,
                actuation_effort: effort,
            },
            safety_violations: 0,
            invariant_violations: 0,
            min_safe_slack: slack,
            forced_skips: 0,
        }
    }

    #[test]
    fn welford_matches_naive_two_pass() {
        let xs = [0.3, 0.7, 0.1, 0.9, 0.5, 0.2];
        let mut m = Moments::default();
        for x in xs {
            m.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = Moments::default();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn merge_with_empty_is_exact_identity() {
        let mut m = Moments::default();
        for x in [1.0, 2.0, 4.0] {
            m.push(x);
        }
        let before = m;
        m.merge(&Moments::default());
        assert_eq!(m, before, "empty right side must not perturb");
        let mut empty = Moments::default();
        empty.merge(&before);
        assert_eq!(empty, before, "empty left side must copy verbatim");
    }

    #[test]
    fn chunked_merge_is_chunking_deterministic() {
        // The same chunk boundaries must give the same floats no matter
        // which order the chunks *finished* in — merge order is what the
        // scheduler fixes, and this is the property it relies on.
        let records: Vec<EpisodeRecord> = (0..30)
            .map(|i| record(i, i % 7, 0.37 * i as f64, 1.0 - 0.01 * i as f64))
            .collect();
        let chunk = |range: std::ops::Range<usize>| {
            let mut acc = CellAccumulator::new();
            for r in &records[range] {
                acc.push(r);
            }
            acc
        };
        let (a, b, c) = (chunk(0..10), chunk(10..20), chunk(20..30));
        let mut merged = CellAccumulator::new();
        merged.merge(&a);
        merged.merge(&b);
        merged.merge(&c);
        let mut again = CellAccumulator::new();
        again.merge(&a);
        again.merge(&b);
        again.merge(&c);
        assert_eq!(merged, again);
        assert_eq!(merged.episodes, 30);
        assert_eq!(
            merged.skipped_steps,
            records.iter().map(|r| r.stats.skipped).sum::<usize>()
        );
    }

    #[test]
    fn merged_moments_track_sequential_closely() {
        let records: Vec<EpisodeRecord> = (0..50)
            .map(|i| record(i, i % 5, (i as f64).sin().abs() * 10.0, 2.0))
            .collect();
        let mut sequential = CellAccumulator::new();
        for r in &records {
            sequential.push(r);
        }
        let mut chunked = CellAccumulator::new();
        for chunk in records.chunks(7) {
            let mut acc = CellAccumulator::new();
            for r in chunk {
                acc.push(r);
            }
            chunked.merge(&acc);
        }
        assert_eq!(chunked.episodes, sequential.episodes);
        assert_eq!(chunked.skipped_steps, sequential.skipped_steps);
        assert!((chunked.skip_rate.mean() - sequential.skip_rate.mean()).abs() < 1e-12);
        assert!((chunked.skip_rate.variance() - sequential.skip_rate.variance()).abs() < 1e-12);
        assert!(
            (chunked.actuation_effort.mean() - sequential.actuation_effort.mean()).abs() < 1e-9
        );
        assert_eq!(chunked.min_safe_slack, sequential.min_safe_slack);
        assert_eq!(chunked.max_safe_slack, sequential.max_safe_slack);
    }

    #[test]
    fn tallies_saturate_instead_of_overflowing() {
        let mut acc = CellAccumulator::new();
        acc.safety_violations = usize::MAX - 1;
        let mut r = record(0, 3, 1.0, 0.5);
        r.safety_violations = 10;
        acc.push(&r);
        assert_eq!(acc.safety_violations, usize::MAX);
        let mut other = CellAccumulator::new();
        other.total_steps = usize::MAX;
        acc.merge(&other);
        assert_eq!(acc.total_steps, usize::MAX);
    }
}
