//! Content-addressed cell-result cache: in-memory LRU over an optional
//! on-disk store, keyed by [`cell_hash`](crate::spec::cell_hash).
//!
//! A cell's aggregates are a pure function of its hashed spec, so a
//! cache hit can substitute for the whole episode loop — the byte-level
//! report is unchanged (the warm-run integration tests pin this). Disk
//! entries use a fixed little-endian binary codec that stores every
//! float as its raw bit pattern: round-tripping a cell through the
//! store is **bitwise** exact, including negative zero and infinities
//! (the property test sweeps random bit patterns).
//!
//! Every record carries a SHA-256 checksum of its payload, verified on
//! read: a bit-flipped or truncated `.cell` file is detected, moved to
//! `<dir>/quarantine/` for postmortem (never silently deleted), counted
//! as `cache.corrupt`, and recounted as a miss — the sweep recomputes
//! the cell and the next store heals the slot.
//!
//! Cache traffic is counted twice: always into the cache's own relaxed
//! atomics (so callers can report hit rates without enabling
//! telemetry), and into the `oic-obs` registry (`cache.mem_hits`,
//! `cache.disk_hits`, `cache.misses`, `cache.stores`,
//! `cache.rejected`, `cache.corrupt`, `cache.bytes_read`,
//! `cache.bytes_written`) when metrics are on. Neither path feeds back
//! into results.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hashing::{sha256, to_hex};
use crate::report::CellReport;

/// Format magic; `OICCELL2` added the payload checksum and the dropout
/// axis fields (epoch-2 hashes never collide with epoch-1 paths, but a
/// distinct magic keeps hand-copied stores honest too).
const MAGIC: &[u8; 8] = b"OICCELL2";

/// Errors from the cell codec and store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The blob is not a cell record (bad magic, truncation, trailing
    /// bytes, a checksum mismatch, or a non-UTF-8 name).
    Malformed(&'static str),
    /// Cells carrying per-episode detail are not cacheable.
    DetailNotCacheable,
    /// `Failed` cells are not cacheable: a failure describes one run's
    /// degradation, not the cell's pure value.
    FailedNotCacheable,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Malformed(what) => write!(f, "malformed cell record: {what}"),
            CacheError::DetailNotCacheable => {
                write!(f, "cells with per-episode detail cannot be cached")
            }
            CacheError::FailedNotCacheable => {
                write!(f, "failed cells cannot be cached")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Serializes a cell's aggregates to the on-disk record format.
///
/// Layout (all integers little-endian): the 8-byte magic `OICCELL2`, a
/// 32-byte SHA-256 of everything after it, then the payload: three
/// `u32`-length-prefixed UTF-8 strings (scenario, policy label, dropout
/// label), ten `u64` tallies, then six `f64`s stored as raw bit
/// patterns.
///
/// # Errors
///
/// [`CacheError::DetailNotCacheable`] when the cell carries per-episode
/// records (the cache stores aggregates only — detail is O(episodes));
/// [`CacheError::FailedNotCacheable`] for `Failed` cells.
pub fn encode_cell(cell: &CellReport) -> Result<Vec<u8>, CacheError> {
    if !cell.episodes_detail.is_empty() {
        return Err(CacheError::DetailNotCacheable);
    }
    if cell.is_failed() {
        return Err(CacheError::FailedNotCacheable);
    }
    let mut payload =
        Vec::with_capacity(160 + cell.scenario.len() + cell.policy.len() + cell.dropout.len());
    for text in [&cell.scenario, &cell.policy, &cell.dropout] {
        payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
        payload.extend_from_slice(text.as_bytes());
    }
    for tally in [
        cell.episodes,
        cell.steps_per_episode,
        cell.total_steps,
        cell.skipped_steps,
        cell.forced_runs,
        cell.policy_runs,
        cell.safety_violations,
        cell.invariant_violations,
        cell.forced_skips,
        cell.violation_episodes,
    ] {
        payload.extend_from_slice(&(tally as u64).to_le_bytes());
    }
    for float in [
        cell.mean_skip_rate,
        cell.var_skip_rate,
        cell.mean_actuation_effort,
        cell.var_actuation_effort,
        cell.min_safe_slack,
        cell.max_safe_slack,
    ] {
        payload.extend_from_slice(&float.to_bits().to_le_bytes());
    }
    let mut out = Vec::with_capacity(MAGIC.len() + 32 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&sha256(&payload));
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Deserializes a cell record written by [`encode_cell`], verifying the
/// payload checksum — a single flipped bit anywhere in the record fails
/// the decode.
///
/// # Errors
///
/// [`CacheError::Malformed`] on any structural violation; decoding
/// never panics on corrupt input.
pub fn decode_cell(bytes: &[u8]) -> Result<CellReport, CacheError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    if cursor.take(8)? != MAGIC {
        return Err(CacheError::Malformed("bad magic"));
    }
    let checksum: [u8; 32] = cursor.take(32)?.try_into().expect("32-byte checksum chunk");
    if sha256(&bytes[cursor.pos..]) != checksum {
        return Err(CacheError::Malformed("checksum mismatch"));
    }
    let scenario = cursor.string()?;
    let policy = cursor.string()?;
    let dropout = cursor.string()?;
    let mut tallies = [0u64; 10];
    for slot in &mut tallies {
        *slot = cursor.u64()?;
    }
    let mut floats = [0f64; 6];
    for slot in &mut floats {
        *slot = f64::from_bits(cursor.u64()?);
    }
    if cursor.pos != bytes.len() {
        return Err(CacheError::Malformed("trailing bytes"));
    }
    Ok(CellReport {
        scenario,
        policy,
        episodes: tallies[0] as usize,
        steps_per_episode: tallies[1] as usize,
        total_steps: tallies[2] as usize,
        skipped_steps: tallies[3] as usize,
        forced_runs: tallies[4] as usize,
        policy_runs: tallies[5] as usize,
        safety_violations: tallies[6] as usize,
        invariant_violations: tallies[7] as usize,
        mean_skip_rate: floats[0],
        var_skip_rate: floats[1],
        mean_actuation_effort: floats[2],
        var_actuation_effort: floats[3],
        min_safe_slack: floats[4],
        max_safe_slack: floats[5],
        dropout,
        forced_skips: tallies[8] as usize,
        violation_episodes: tallies[9] as usize,
        outcome: crate::report::CellOutcome::Ok,
        episodes_detail: Vec::new(),
    })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CacheError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(CacheError::Malformed("truncated record"))?;
        self.pos += n;
        Ok(chunk)
    }

    fn u64(&mut self) -> Result<u64, CacheError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte chunk"),
        ))
    }

    fn string(&mut self) -> Result<String, CacheError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte chunk")) as usize;
        let text = std::str::from_utf8(self.take(len)?)
            .map_err(|_| CacheError::Malformed("non-UTF-8 name"))?;
        Ok(text.to_string())
    }
}

/// Cache traffic counters (monotonic, relaxed; always on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Hits served from the in-memory LRU.
    pub mem_hits: u64,
    /// Hits served from the on-disk store (then promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Cells written to the cache.
    pub stores: u64,
    /// Disk entries discarded as corrupt or mismatched.
    pub rejected: u64,
    /// Disk entries that failed decode/checksum and were quarantined.
    pub corrupt: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Total hits, both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

struct MemTier {
    map: HashMap<[u8; 32], CellReport>,
    /// Keys in least-recently-used-first order.
    order: Vec<[u8; 32]>,
}

/// The two-tier content-addressed cell cache.
///
/// Thread-safe: the memory tier sits behind one mutex (lookups are a
/// hash probe plus an LRU touch — microseconds against episode loops
/// that run milliseconds to seconds), disk I/O happens outside it.
/// Disk writes go through a temp file + atomic rename, so a crashed or
/// concurrent writer can never leave a torn entry behind; corrupt or
/// mismatched disk entries are discarded and recounted as misses.
pub struct CellCache {
    mem: Mutex<MemTier>,
    capacity: usize,
    dir: Option<PathBuf>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    rejected: AtomicU64,
    corrupt: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl std::fmt::Debug for CellCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellCache")
            .field("capacity", &self.capacity)
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CellCache {
    /// A cache holding up to `capacity` cells in memory, optionally
    /// backed by a directory of content-addressed files (created on
    /// first write). `capacity` 0 means memory-only lookups never hit —
    /// useful to exercise the disk tier.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        Self {
            mem: Mutex::new(MemTier {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            capacity,
            dir,
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    /// A memory-only cache with the default capacity (4096 cells — a
    /// cell record is ~150 bytes, so the tier tops out well under a
    /// megabyte).
    pub fn in_memory() -> Self {
        Self::new(4096, None)
    }

    /// The on-disk path of a key: `<dir>/<first 2 hex chars>/<hex>.cell`
    /// (one fan-out level keeps directories small at millions of cells).
    pub fn entry_path(dir: &Path, key: &[u8; 32]) -> PathBuf {
        let hex = to_hex(key);
        dir.join(&hex[..2]).join(format!("{hex}.cell"))
    }

    /// Looks a cell up by its content address.
    ///
    /// Memory first, then disk; a disk hit is decoded, validated, and
    /// promoted into the memory tier. Corrupt disk entries are moved to
    /// `<dir>/quarantine/` and counted as `corrupt` + `misses`, never
    /// surfaced — the next store heals the slot.
    pub fn get(&self, key: &[u8; 32]) -> Option<CellReport> {
        {
            let mut mem = self.mem.lock().expect("cache mem lock");
            if let Some(cell) = mem.map.get(key).cloned() {
                Self::touch(&mut mem.order, key);
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                oic_obs::counter!("cache.mem_hits", "cells").incr();
                return Some(cell);
            }
        }
        if let Some(dir) = &self.dir {
            let path = Self::entry_path(dir, key);
            if let Ok(bytes) = std::fs::read(&path) {
                self.bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                oic_obs::counter!("cache.bytes_read", "bytes").add(bytes.len() as u64);
                match decode_cell(&bytes) {
                    Ok(cell) => {
                        self.insert_mem(key, &cell);
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        oic_obs::counter!("cache.disk_hits", "cells").incr();
                        return Some(cell);
                    }
                    Err(_) => {
                        // A torn, bit-flipped, or foreign file under our
                        // key: quarantine it for postmortem (deleting
                        // would destroy the only evidence of silent
                        // corruption) so the slot heals on the next
                        // store.
                        Self::quarantine(dir, &path);
                        self.corrupt.fetch_add(1, Ordering::Relaxed);
                        oic_obs::counter!("cache.corrupt", "cells").incr();
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        oic_obs::counter!("cache.misses", "cells").incr();
        None
    }

    /// Stores a cell under its content address (both tiers).
    ///
    /// # Errors
    ///
    /// Propagates codec errors (detail cells) and disk I/O failures;
    /// the memory tier is updated regardless, so a read-only disk
    /// degrades the cache rather than the sweep.
    pub fn put(&self, key: &[u8; 32], cell: &CellReport) -> Result<(), String> {
        let bytes = encode_cell(cell).map_err(|e| e.to_string())?;
        self.insert_mem(key, cell);
        self.stores.fetch_add(1, Ordering::Relaxed);
        oic_obs::counter!("cache.stores", "cells").incr();
        if let Some(dir) = &self.dir {
            let path = Self::entry_path(dir, key);
            let parent = path.parent().expect("entry path has a parent");
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            // Temp file + rename: concurrent writers of the same key race
            // benignly (identical contents), and readers never see a
            // half-written record.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, &bytes)
                .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, &path)
                .map_err(|e| format!("cannot rename into {}: {e}", path.display()))?;
            self.bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            oic_obs::counter!("cache.bytes_written", "bytes").add(bytes.len() as u64);
        }
        Ok(())
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Cells currently held in the memory tier.
    pub fn mem_len(&self) -> usize {
        self.mem.lock().expect("cache mem lock").map.len()
    }

    fn insert_mem(&self, key: &[u8; 32], cell: &CellReport) {
        if self.capacity == 0 {
            return;
        }
        let mut mem = self.mem.lock().expect("cache mem lock");
        if mem.map.insert(*key, cell.clone()).is_none() {
            mem.order.push(*key);
            if mem.map.len() > self.capacity {
                let evict = mem.order.remove(0);
                mem.map.remove(&evict);
            }
        } else {
            Self::touch(&mut mem.order, key);
        }
    }

    /// The quarantine directory of a cache root.
    pub fn quarantine_dir(dir: &Path) -> PathBuf {
        dir.join("quarantine")
    }

    /// Moves a corrupt entry into `<dir>/quarantine/<filename>`. Falls
    /// back to deletion if the rename fails (e.g. a read-only or full
    /// quarantine dir) — a corrupt file must never stay under its key,
    /// or every future lookup would re-trip on it.
    fn quarantine(dir: &Path, path: &Path) {
        let quarantine = Self::quarantine_dir(dir);
        let moved = std::fs::create_dir_all(&quarantine).is_ok()
            && path
                .file_name()
                .is_some_and(|name| std::fs::rename(path, quarantine.join(name)).is_ok());
        if !moved {
            let _ = std::fs::remove_file(path);
        }
    }

    fn touch(order: &mut Vec<[u8; 32]>, key: &[u8; 32]) {
        if let Some(at) = order.iter().position(|k| k == key) {
            let k = order.remove(at);
            order.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::EpisodeRecord;
    use oic_core::RunStats;

    fn cell(scenario: &str, policy: &str) -> CellReport {
        CellReport::from_episodes(
            scenario,
            policy,
            10,
            vec![EpisodeRecord {
                episode: 0,
                seed: 7,
                stats: RunStats {
                    steps: 10,
                    skipped: 4,
                    forced_runs: 1,
                    policy_runs: 5,
                    actuation_effort: 2.5,
                },
                safety_violations: 0,
                invariant_violations: 0,
                min_safe_slack: 0.75,
                forced_skips: 0,
            }],
        )
        .without_detail()
    }

    trait WithoutDetail {
        fn without_detail(self) -> Self;
    }
    impl WithoutDetail for CellReport {
        fn without_detail(mut self) -> Self {
            self.episodes_detail.clear();
            self
        }
    }

    fn key(tag: u8) -> [u8; 32] {
        [tag; 32]
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        let original = cell("acc", "bang-bang");
        let bytes = encode_cell(&original).unwrap();
        assert_eq!(decode_cell(&bytes).unwrap(), original);
        for cut in [0, 7, 8, bytes.len() - 1] {
            assert!(decode_cell(&bytes[..cut]).is_err(), "truncated at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_cell(&extended).is_err(), "trailing bytes");
        let mut wrong_magic = bytes;
        wrong_magic[0] ^= 0xFF;
        assert!(decode_cell(&wrong_magic).is_err(), "magic");
    }

    #[test]
    fn detail_cells_are_refused() {
        let mut detailed = cell("acc", "bang-bang");
        detailed.episodes_detail.push(EpisodeRecord {
            episode: 0,
            seed: 1,
            stats: RunStats::default(),
            safety_violations: 0,
            invariant_violations: 0,
            min_safe_slack: 0.0,
            forced_skips: 0,
        });
        assert_eq!(
            encode_cell(&detailed).unwrap_err(),
            CacheError::DetailNotCacheable
        );
    }

    #[test]
    fn failed_cells_are_refused() {
        let failed = CellReport::failed("acc", "bang-bang", "none", 10, "episode 3: boom".into());
        assert_eq!(
            encode_cell(&failed).unwrap_err(),
            CacheError::FailedNotCacheable
        );
    }

    #[test]
    fn codec_round_trips_dropout_fields() {
        let mut original = cell("acc", "bang-bang");
        original.dropout = "mk-1-4".to_string();
        original.forced_skips = 17;
        original.violation_episodes = 3;
        let decoded = decode_cell(&encode_cell(&original).unwrap()).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        // The checksum must catch a flip anywhere — magic, checksum
        // bytes themselves, strings, tallies, or float payload.
        let bytes = encode_cell(&cell("acc", "bang-bang")).unwrap();
        for pos in [0, 9, 41, 45, bytes.len() / 2, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x01;
            assert!(decode_cell(&flipped).is_err(), "flip at byte {pos}");
        }
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        let cache = CellCache::new(2, None);
        assert!(cache.get(&key(1)).is_none());
        cache.put(&key(1), &cell("a", "p")).unwrap();
        cache.put(&key(2), &cell("b", "p")).unwrap();
        assert!(cache.get(&key(1)).is_some(), "1 is now most recent");
        cache.put(&key(3), &cell("c", "p")).unwrap();
        assert!(cache.get(&key(2)).is_none(), "2 was LRU, evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.mem_hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.stores, 3);
        assert_eq!(cache.mem_len(), 2);
    }

    #[test]
    fn disk_tier_persists_across_instances() {
        let dir = std::env::temp_dir().join(format!("oic-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stored = cell("acc", "bang-bang");
        {
            let cache = CellCache::new(8, Some(dir.clone()));
            cache.put(&key(9), &stored).unwrap();
            assert!(cache.stats().bytes_written > 0);
        }
        // A fresh instance (cold memory) must hit disk and promote.
        let cache = CellCache::new(8, Some(dir.clone()));
        assert_eq!(cache.get(&key(9)), Some(stored.clone()));
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.mem_hits, 0);
        assert_eq!(cache.get(&key(9)), Some(stored.clone()));
        assert_eq!(cache.stats().mem_hits, 1, "promoted after the disk hit");
        // Corrupt the file: the entry is quarantined and missed.
        let path = CellCache::entry_path(&dir, &key(9));
        std::fs::write(&path, b"garbage").unwrap();
        let cold = CellCache::new(8, Some(dir.clone()));
        assert!(cold.get(&key(9)).is_none());
        assert_eq!(cold.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt entry leaves its slot");
        let quarantined = CellCache::quarantine_dir(&dir).join(path.file_name().unwrap());
        assert!(quarantined.exists(), "corrupt entry is kept for postmortem");
        // A fresh store heals the slot and hits again.
        cold.put(&key(9), &stored).unwrap();
        let healed = CellCache::new(8, Some(dir.clone()));
        assert!(healed.get(&key(9)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_entries_are_quarantined() {
        let dir = std::env::temp_dir().join(format!("oic-cache-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::new(0, Some(dir.clone()));
        cache.put(&key(3), &cell("acc", "periodic-4")).unwrap();
        let path = CellCache::entry_path(&dir, &key(3));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(cache.get(&key(3)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.misses, 1, "corruption recounts as a miss");
        assert!(CellCache::quarantine_dir(&dir)
            .join(path.file_name().unwrap())
            .exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_disk_entries_are_quarantined() {
        let dir = std::env::temp_dir().join(format!("oic-cache-flip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::new(0, Some(dir.clone()));
        cache.put(&key(5), &cell("acc", "bang-bang")).unwrap();
        let path = CellCache::entry_path(&dir, &key(5));
        // Flip one bit in the float payload via the deterministic
        // corruptor — exactly what the chaos CI job does.
        oic_faults::corrupt_file(&path, 99).unwrap();
        assert!(cache.get(&key(5)).is_none(), "checksum catches the flip");
        assert_eq!(cache.stats().corrupt, 1);
        assert!(CellCache::quarantine_dir(&dir)
            .join(path.file_name().unwrap())
            .exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_the_memory_tier() {
        let cache = CellCache::new(0, None);
        cache.put(&key(4), &cell("a", "p")).unwrap();
        assert!(cache.get(&key(4)).is_none());
        assert_eq!(cache.mem_len(), 0);
    }
}
