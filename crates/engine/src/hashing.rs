//! Pure-`std` SHA-256, the content-addressing primitive of the sweep
//! cache and the serve protocol.
//!
//! Cell results are cached and deduplicated by the hash of their
//! canonical spec (see [`crate::spec`]); a cryptographic digest keeps
//! accidental collisions out of the on-disk store, where a collision
//! would silently return the wrong cell. FIPS 180-4, verified against
//! the standard test vectors; no incremental-use surprises — the
//! one-shot [`sha256`] covers every call site in the workspace, and the
//! streaming [`Sha256`] exists for large inputs (weight blobs).

/// Streaming SHA-256 state.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_bytes: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0u8; 64],
            buffered: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_bytes = self.total_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered < 64 {
                // Everything fit in the partial block; the tail below
                // must not clobber the buffered count.
                return;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0x00]);
        }
        // The length block must not re-count toward the message length;
        // write it into the buffer directly and compress.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut digest = [0u8; 32];
        for (chunk, word) in digest.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        digest
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hash = Sha256::new();
    hash.update(data);
    hash.finalize()
}

/// Lowercase hex rendering of a digest (the wire/disk form of every
/// spec and cell hash).
pub fn to_hex(digest: &[u8]) -> String {
    let mut out = String::with_capacity(digest.len() * 2);
    for b in digest {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes lowercase/uppercase hex back into bytes (inverse of
/// [`to_hex`]; used by the wire protocol's `weights_hex` blobs).
///
/// # Errors
///
/// Rejects odd lengths and non-hex characters with a short message.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("hex string has odd length".to_string());
    }
    let mut out = Vec::with_capacity(text.len() / 2);
    let bytes = text.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let nibble = |b: u8| -> Result<u8, String> {
            (b as char)
                .to_digit(16)
                .map(|d| d as u8)
                .ok_or_else(|| format!("invalid hex character {:?}", b as char))
        };
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let reference = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, data.len()] {
            let mut hash = Sha256::new();
            hash.update(&data[..split]);
            hash.update(&data[split..]);
            assert_eq!(hash.finalize(), reference, "split at {split}");
        }
    }

    #[test]
    fn million_a_vector() {
        let mut hash = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            hash.update(&chunk);
        }
        assert_eq!(
            to_hex(&hash.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_round_trips() {
        let digest = sha256(b"roundtrip");
        let hex = to_hex(&digest);
        assert_eq!(from_hex(&hex).unwrap(), digest.to_vec());
        assert_eq!(from_hex("DEADbeef").unwrap(), vec![0xDE, 0xAD, 0xBE, 0xEF]);
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex digit");
    }
}
