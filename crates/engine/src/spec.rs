//! Sweep-spec canonicalization and stable hashing.
//!
//! Every `(scenario, policy)` cell the engine produces is a pure
//! function of its identifying tuple — scenario name, policy (including
//! learned weight blobs), the deduplicated report label, the base seed,
//! episode/step counts, the policy memory window, and the effective
//! episode chunk size (chunk boundaries shape the floating-point merge
//! tree). This module pins that tuple down:
//!
//! * [`canonical_policy`] / [`parse_policy`] give each [`PolicySpec`] a
//!   stable one-line string form (learned policies carry the SHA-256 of
//!   their weight blob, never the blob itself);
//! * [`cell_hash`] derives the 32-byte content address a cell result is
//!   cached and deduplicated under (see [`crate::cache`]);
//! * [`SweepSpec`] is the wire form of a whole batch request — the JSON
//!   document `oic-serve` accepts and the bench bins share — with a
//!   [`SweepSpec::canonicalize`] step and a [`SweepSpec::spec_hash`]
//!   used for request coalescing.
//!
//! What is **not** hashed: the worker thread count (reports are
//! byte-identical at any thread count by the engine's determinism
//! contract), the `detail` flag (cells cache aggregates only), and
//! output formatting. The full rules live in `docs/PROTOCOL.md`.

use oic_faults::DropoutSpec;

use crate::hashing::{from_hex, sha256, to_hex};
use crate::json::JsonValue;
use crate::runner::{BatchConfig, PolicySpec};

/// Cache-format epoch, folded into every [`cell_hash`].
///
/// Bump this whenever engine semantics change the bytes of a cell
/// result for the *same* spec (seeding, accumulator arithmetic, episode
/// stepping, report fields). Old cache entries then simply stop
/// matching — stale results can never be served (`docs/PROTOCOL.md`,
/// "Cache invalidation").
///
/// Epoch 2: the dropout axis entered the preimage and the on-disk cell
/// codec grew a payload checksum plus the dropout tallies (`OICCELL2`).
pub const CACHE_EPOCH: u32 = 2;

/// One shard assignment: this process owns the materialized cells whose
/// global index `g` satisfies `g % of == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// This shard's index, `0 ≤ index < of`.
    pub index: usize,
    /// Total number of shards.
    pub of: usize,
}

impl ShardInfo {
    /// Parses the `i/n` command-line form (`--shard 0/2`).
    ///
    /// # Errors
    ///
    /// Rejects malformed strings, `n == 0`, and `i ≥ n`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, of) = text
            .split_once('/')
            .ok_or_else(|| format!("expected i/n, got {text:?}"))?;
        let index: usize = index
            .parse()
            .map_err(|_| format!("bad shard index in {text:?}"))?;
        let of: usize = of
            .parse()
            .map_err(|_| format!("bad shard count in {text:?}"))?;
        let shard = ShardInfo { index, of };
        shard.validate()?;
        Ok(shard)
    }

    /// Checks `0 ≤ index < of`.
    ///
    /// # Errors
    ///
    /// Names the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.of == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if self.index >= self.of {
            return Err(format!(
                "shard index {} out of range for {} shards",
                self.index, self.of
            ));
        }
        Ok(())
    }

    /// Whether this shard owns global cell index `g`.
    pub fn owns(&self, g: usize) -> bool {
        g % self.of == self.index
    }
}

/// The canonical one-line string form of a policy.
///
/// Analytic policies render as their report label (`always-run`,
/// `periodic-4`, `random-0.25`, `max-skip-2`, …). Learned policies
/// render as `drl:<name>:sha256=<hex>` — the *hash* of the weight blob,
/// so two differently-named registrations of the same bytes hash apart
/// (the label feeds episode seeds) while the blob itself stays out of
/// every preimage.
pub fn canonical_policy(policy: &PolicySpec) -> String {
    match policy {
        PolicySpec::Drl { name, weights } => {
            format!("drl:{name}:sha256={}", to_hex(&sha256(weights)))
        }
        analytic => analytic.label(),
    }
}

/// Parses the canonical string form of an **analytic** policy (the
/// inverse of [`canonical_policy`] for everything but `drl:` entries,
/// whose weight bytes cannot be recovered from a hash — the wire format
/// ships learned policies as objects instead, see [`SweepSpec::from_json`]).
///
/// # Errors
///
/// Returns a short message naming the unrecognized entry.
pub fn parse_policy(text: &str) -> Result<PolicySpec, String> {
    let parsed = match text {
        "always-run" => PolicySpec::AlwaysRun,
        "bang-bang" => PolicySpec::BangBang,
        other => {
            if let Some(k) = other.strip_prefix("periodic-") {
                PolicySpec::Periodic(k.parse().map_err(|_| format!("bad period in {text:?}"))?)
            } else if let Some(p) = other.strip_prefix("random-") {
                PolicySpec::Random(
                    p.parse()
                        .map_err(|_| format!("bad probability in {text:?}"))?,
                )
            } else if let Some(b) = other.strip_prefix("max-skip-") {
                PolicySpec::MaxSkip(b.parse().map_err(|_| format!("bad budget in {text:?}"))?)
            } else {
                return Err(format!("unknown policy {text:?}"));
            }
        }
    };
    parsed.validate().map_err(|m| format!("{text:?}: {m}"))?;
    // The canonical form must round-trip exactly, or two spellings of
    // one policy ("random-0.250") would hash to different cells.
    if canonical_policy(&parsed) != text {
        return Err(format!(
            "non-canonical policy {text:?} (canonical: {:?})",
            canonical_policy(&parsed)
        ));
    }
    Ok(parsed)
}

/// The 32-byte content address of one `(scenario, policy)` cell result.
///
/// The preimage is a line-oriented canonical record of everything the
/// cell's bytes depend on — and nothing else:
///
/// ```text
/// oic-cell-v<CACHE_EPOCH>
/// scenario=<name>
/// label=<deduplicated report label>
/// policy=<canonical_policy>
/// dropout=<canonical DropoutSpec label, "none" for no axis>
/// seed=<base seed>
/// episodes=<episodes per cell>
/// steps=<steps per episode>
/// memory=<disturbance-history window>
/// chunk=<effective chunk size, BatchConfig::chunk_size()>
/// ```
///
/// Thread count and the `detail` flag are deliberately absent: neither
/// changes a cell's aggregate bytes. The fault plan is also absent —
/// faulted cells are never cached, so an injected fault can never leak
/// a wrong result into the store.
pub fn cell_hash(
    scenario: &str,
    label: &str,
    policy: &PolicySpec,
    dropout: &DropoutSpec,
    config: &BatchConfig,
) -> [u8; 32] {
    cell_hash_canonical(
        scenario,
        label,
        &canonical_policy(policy),
        &dropout.label(),
        config,
    )
}

/// [`cell_hash`] with the policy/dropout already rendered canonically —
/// the batch runner pre-renders each policy once so learned-policy
/// weight blobs are digested per policy, not per cell.
pub fn cell_hash_canonical(
    scenario: &str,
    label: &str,
    policy: &str,
    dropout: &str,
    config: &BatchConfig,
) -> [u8; 32] {
    let preimage = format!(
        "oic-cell-v{CACHE_EPOCH}\nscenario={scenario}\nlabel={label}\npolicy={policy}\ndropout={dropout}\nseed={}\nepisodes={}\nsteps={}\nmemory={}\nchunk={}\n",
        config.seed,
        config.episodes,
        config.steps,
        config.memory,
        config.chunk_size(),
    );
    sha256(preimage.as_bytes())
}

/// The wire form of one batch request: which scenarios, which policies,
/// and the engine knobs that shape results.
///
/// This is the document `POST /v1/sweep` accepts (`docs/PROTOCOL.md`)
/// and what the bench `batch` bin builds from its command line; both
/// paths share [`SweepSpec::to_config`] so a served sweep and an
/// offline sweep of the same spec produce byte-identical cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Requested scenario names. Empty means "every registered
    /// scenario". Execution always follows registry order; this list is
    /// a filter, and [`SweepSpec::canonicalize`] sorts + dedupes it.
    pub scenarios: Vec<String>,
    /// Policy roster, in request order (order matters: duplicate labels
    /// dedup to `#2`, `#3`, … suffixes which feed episode seeds).
    pub policies: Vec<PolicySpec>,
    /// Episodes per cell.
    pub episodes: usize,
    /// Steps per episode.
    pub steps: usize,
    /// Base seed.
    pub seed: u64,
    /// Disturbance-history window (`r`).
    pub memory: usize,
    /// Episodes per work-stealing chunk; 0 = the deterministic auto
    /// sizing (see [`BatchConfig::chunk_size`]).
    pub chunk: usize,
    /// Dropout axis: each entry multiplies the `(scenario, policy)` grid
    /// by one environment-forced actuation-dropout variant. Empty means
    /// the single fault-free `none` variant (the pre-axis behaviour).
    /// Request order is preserved — it fixes cell order in the report.
    pub dropouts: Vec<DropoutSpec>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        let config = BatchConfig::default();
        Self {
            scenarios: Vec::new(),
            policies: Vec::new(),
            episodes: config.episodes,
            steps: config.steps,
            seed: config.seed,
            memory: config.memory,
            chunk: config.chunk,
            dropouts: Vec::new(),
        }
    }
}

impl SweepSpec {
    /// Parses the wire JSON (see `docs/PROTOCOL.md` for the schema).
    ///
    /// Policies are strings for analytic entries (`"bang-bang"`) or
    /// objects for learned ones:
    /// `{"drl": {"name": "my-net", "weights_hex": "<oic-nn blob>"}}`.
    /// The seed may be a JSON number (if integral) or a string (full
    /// `u64` range — 64-bit values do not fit in a JSON number).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        if doc.as_object().is_none() {
            return Err("spec must be a JSON object".to_string());
        }
        if let Some(kind) = doc.get("kind") {
            if kind.as_str() != Some("oic-sweep-spec") {
                return Err(format!("unexpected kind {:?}", kind.to_json()));
            }
        }
        if let Some(version) = doc.get("version") {
            if version.as_usize() != Some(1) {
                return Err(format!("unsupported spec version {}", version.to_json()));
            }
        }
        let mut spec = SweepSpec::default();
        if let Some(scenarios) = doc.get("scenarios") {
            let list = scenarios
                .as_array()
                .ok_or("scenarios must be an array of names")?;
            for name in list {
                spec.scenarios.push(
                    name.as_str()
                        .ok_or("scenarios entries must be strings")?
                        .to_string(),
                );
            }
        }
        let policies = doc
            .get("policies")
            .and_then(JsonValue::as_array)
            .ok_or("policies must be a non-empty array")?;
        for entry in policies {
            spec.policies.push(Self::policy_from_json(entry)?);
        }
        if spec.policies.is_empty() {
            return Err("policies must be a non-empty array".to_string());
        }
        for (field, slot) in [
            ("episodes", &mut spec.episodes as &mut usize),
            ("steps", &mut spec.steps),
            ("memory", &mut spec.memory),
            ("chunk", &mut spec.chunk),
        ] {
            if let Some(value) = doc.get(field) {
                *slot = value
                    .as_usize()
                    .ok_or_else(|| format!("{field} must be a non-negative integer"))?;
            }
        }
        if let Some(seed) = doc.get("seed") {
            spec.seed = match seed {
                JsonValue::String(s) => s
                    .parse()
                    .map_err(|_| format!("seed string {s:?} is not a u64"))?,
                other => other
                    .as_usize()
                    .ok_or("seed must be an integer or a decimal string")?
                    as u64,
            };
        }
        if let Some(dropouts) = doc.get("dropout") {
            let list = dropouts
                .as_array()
                .ok_or("dropout must be an array of spec labels")?;
            for entry in list {
                let text = entry.as_str().ok_or("dropout entries must be strings")?;
                let parsed = DropoutSpec::parse(text).map_err(|e| format!("dropout: {e}"))?;
                parsed
                    .validate()
                    .map_err(|m| format!("dropout {text:?}: {m}"))?;
                spec.dropouts.push(parsed);
            }
        }
        if spec.episodes == 0 || spec.steps == 0 {
            return Err("episodes and steps must be positive".to_string());
        }
        Ok(spec)
    }

    fn policy_from_json(entry: &JsonValue) -> Result<PolicySpec, String> {
        if let Some(text) = entry.as_str() {
            return parse_policy(text);
        }
        let drl = entry
            .get("drl")
            .ok_or("policy entries must be strings or {\"drl\": {…}} objects")?;
        let name = drl
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("drl policy needs a \"name\" string")?;
        let hex = drl
            .get("weights_hex")
            .and_then(JsonValue::as_str)
            .ok_or("drl policy needs a \"weights_hex\" string")?;
        let weights = from_hex(hex).map_err(|e| format!("drl {name:?} weights_hex: {e}"))?;
        let spec = PolicySpec::drl(name, weights);
        spec.validate().map_err(|m| format!("drl {name:?}: {m}"))?;
        Ok(spec)
    }

    /// Normalizes the spec in place: the scenario filter is sorted and
    /// deduplicated (execution order is registry order either way, so
    /// request order carries no information). Policy order is preserved
    /// — it determines label deduplication and therefore episode seeds.
    /// Dropout order is preserved too (it fixes cell order), but exact
    /// duplicates collapse to the first occurrence, and a lone `none`
    /// entry collapses to the empty (default) axis.
    pub fn canonicalize(&mut self) {
        self.scenarios.sort();
        self.scenarios.dedup();
        let mut seen = Vec::new();
        self.dropouts.retain(|d| {
            let label = d.label();
            if seen.contains(&label) {
                false
            } else {
                seen.push(label);
                true
            }
        });
        if self.dropouts.len() == 1 && self.dropouts[0].is_none() {
            self.dropouts.clear();
        }
    }

    /// The dropout variants a sweep actually runs: the requested axis,
    /// or the single fault-free `none` variant when the axis is empty.
    pub fn effective_dropouts(&self) -> Vec<DropoutSpec> {
        if self.dropouts.is_empty() {
            vec![DropoutSpec::None]
        } else {
            self.dropouts.clone()
        }
    }

    /// The canonical JSON rendering the spec hash is computed over.
    ///
    /// Learned policies appear as their `drl:<name>:sha256=<hex>`
    /// canonical string — blob bytes never enter the document, so the
    /// canonical form stays small no matter how large the roster's
    /// weights are.
    pub fn canonical_json(&self) -> JsonValue {
        let mut spec = self.clone();
        spec.canonicalize();
        let mut doc = JsonValue::object()
            .with("kind", "oic-sweep-spec")
            .with("version", 1usize)
            .with("scenarios", spec.scenarios.clone())
            .with(
                "policies",
                spec.policies
                    .iter()
                    .map(canonical_policy)
                    .collect::<Vec<_>>(),
            )
            .with("episodes", spec.episodes)
            .with("steps", spec.steps)
            .with("seed", spec.seed.to_string())
            .with("memory", spec.memory)
            .with("chunk", spec.chunk_size());
        // The dropout axis only enters the canonical form when present,
        // so fault-free specs keep their pre-axis hash.
        if !spec.dropouts.is_empty() {
            doc = doc.with(
                "dropout",
                spec.dropouts
                    .iter()
                    .map(DropoutSpec::label)
                    .collect::<Vec<_>>(),
            );
        }
        doc
    }

    /// The request's content address: SHA-256 of the compact canonical
    /// JSON. Two requests with equal hashes produce byte-identical
    /// responses, which is what request coalescing relies on.
    pub fn spec_hash(&self) -> [u8; 32] {
        sha256(self.canonical_json().to_json().as_bytes())
    }

    /// The effective episode chunk size ([`BatchConfig::chunk_size`]).
    pub fn chunk_size(&self) -> usize {
        self.to_config().chunk_size()
    }

    /// The engine configuration this spec maps to. Threads are left at
    /// the auto default (they never change results) and `detail` stays
    /// off (cells cache and stream aggregates only).
    pub fn to_config(&self) -> BatchConfig {
        BatchConfig {
            episodes: self.episodes,
            steps: self.steps,
            seed: self.seed,
            memory: self.memory,
            chunk: self.chunk,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn drl(name: &str, bytes: &[u8]) -> PolicySpec {
        PolicySpec::Drl {
            name: name.to_string(),
            weights: Arc::new(bytes.to_vec()),
        }
    }

    #[test]
    fn analytic_policies_round_trip_their_canonical_form() {
        for policy in [
            PolicySpec::AlwaysRun,
            PolicySpec::BangBang,
            PolicySpec::Periodic(4),
            PolicySpec::Random(0.25),
            PolicySpec::Random(0.001),
            PolicySpec::MaxSkip(2),
        ] {
            let text = canonical_policy(&policy);
            assert_eq!(parse_policy(&text).unwrap(), policy, "{text}");
        }
        assert!(parse_policy("random-0.250").is_err(), "non-canonical float");
        assert!(parse_policy("periodic-0").is_err(), "invalid parameter");
        assert!(
            parse_policy("random-1.5").is_err(),
            "out-of-range parameter"
        );
        assert!(
            parse_policy("drl-acc").is_err(),
            "blobs cannot parse from labels"
        );
        assert!(parse_policy("mystery").is_err());
    }

    #[test]
    fn drl_canonical_form_hashes_the_blob() {
        let a = canonical_policy(&drl("net", b"weights-a"));
        let b = canonical_policy(&drl("net", b"weights-b"));
        let c = canonical_policy(&drl("other", b"weights-a"));
        assert!(a.starts_with("drl:net:sha256="));
        assert_ne!(a, b, "different bytes, different canonical form");
        assert_ne!(a, c, "different names, different canonical form");
        assert!(!a.contains("weights"), "blob bytes never appear");
    }

    #[test]
    fn cell_hash_covers_exactly_the_result_determining_fields() {
        let config = BatchConfig {
            episodes: 50,
            steps: 50,
            seed: 42,
            ..Default::default()
        };
        let base = cell_hash(
            "acc",
            "bang-bang",
            &PolicySpec::BangBang,
            &DropoutSpec::None,
            &config,
        );
        assert_eq!(
            base,
            cell_hash(
                "acc",
                "bang-bang",
                &PolicySpec::BangBang,
                &DropoutSpec::None,
                &config
            ),
            "stable"
        );
        // Thread count and detail are not hashed.
        let threaded = BatchConfig {
            threads: 8,
            detail: true,
            ..config.clone()
        };
        assert_eq!(
            base,
            cell_hash(
                "acc",
                "bang-bang",
                &PolicySpec::BangBang,
                &DropoutSpec::None,
                &threaded
            )
        );
        // Everything else is.
        for changed in [
            BatchConfig {
                seed: 43,
                ..config.clone()
            },
            BatchConfig {
                episodes: 51,
                ..config.clone()
            },
            BatchConfig {
                steps: 51,
                ..config.clone()
            },
            BatchConfig {
                memory: 2,
                ..config.clone()
            },
            BatchConfig {
                chunk: 7,
                ..config.clone()
            },
        ] {
            assert_ne!(
                base,
                cell_hash(
                    "acc",
                    "bang-bang",
                    &PolicySpec::BangBang,
                    &DropoutSpec::None,
                    &changed
                )
            );
        }
        assert_ne!(
            base,
            cell_hash(
                "cstr",
                "bang-bang",
                &PolicySpec::BangBang,
                &DropoutSpec::None,
                &config
            )
        );
        assert_ne!(
            base,
            cell_hash(
                "acc",
                "bang-bang#2",
                &PolicySpec::BangBang,
                &DropoutSpec::None,
                &config
            ),
            "the deduplicated label feeds episode seeds, so it is hashed"
        );
        assert_ne!(
            base,
            cell_hash(
                "acc",
                "bang-bang",
                &PolicySpec::AlwaysRun,
                &DropoutSpec::None,
                &config
            )
        );
    }

    #[test]
    fn explicit_auto_chunk_hashes_like_its_effective_size() {
        // chunk: 0 auto-sizes to 16 for 100 episodes; requesting 16
        // explicitly is the same cell.
        let auto = BatchConfig {
            episodes: 100,
            chunk: 0,
            ..Default::default()
        };
        let explicit = BatchConfig {
            episodes: 100,
            chunk: 16,
            ..Default::default()
        };
        assert_eq!(
            cell_hash(
                "acc",
                "bang-bang",
                &PolicySpec::BangBang,
                &DropoutSpec::None,
                &auto
            ),
            cell_hash(
                "acc",
                "bang-bang",
                &PolicySpec::BangBang,
                &DropoutSpec::None,
                &explicit
            ),
        );
    }

    #[test]
    fn shard_parsing_and_bounds() {
        assert_eq!(
            ShardInfo::parse("0/2").unwrap(),
            ShardInfo { index: 0, of: 2 }
        );
        assert_eq!(
            ShardInfo::parse("3/4").unwrap(),
            ShardInfo { index: 3, of: 4 }
        );
        for bad in ["2/2", "1/0", "x/2", "1-2", "1"] {
            assert!(ShardInfo::parse(bad).is_err(), "{bad:?}");
        }
        let shard = ShardInfo { index: 1, of: 3 };
        let owned: Vec<usize> = (0..9).filter(|g| shard.owns(*g)).collect();
        assert_eq!(owned, [1, 4, 7]);
    }

    #[test]
    fn spec_wire_round_trip() {
        let doc = JsonValue::parse(
            r#"{
                "kind": "oic-sweep-spec",
                "version": 1,
                "scenarios": ["cstr", "acc", "acc"],
                "policies": ["bang-bang", "periodic-4",
                             {"drl": {"name": "tiny", "weights_hex": "0a0b0c"}}],
                "seed": "42",
                "episodes": 10,
                "steps": 25
            }"#,
        )
        .unwrap();
        let mut spec = SweepSpec::from_json(&doc).unwrap();
        spec.canonicalize();
        assert_eq!(spec.scenarios, ["acc", "cstr"], "sorted and deduped");
        assert_eq!(spec.policies.len(), 3);
        assert_eq!(spec.policies[2].label(), "drl-tiny");
        match &spec.policies[2] {
            PolicySpec::Drl { weights, .. } => assert_eq!(***weights, [0x0A, 0x0B, 0x0C]),
            other => panic!("expected drl, got {other:?}"),
        }
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.episodes, 10);
        assert_eq!(spec.memory, 1, "default");
        let config = spec.to_config();
        assert_eq!(config.steps, 25);
        assert!(!config.detail);
    }

    #[test]
    fn spec_hash_ignores_request_order_but_not_content() {
        let a = SweepSpec {
            scenarios: vec!["cstr".into(), "acc".into()],
            policies: vec![PolicySpec::BangBang],
            ..Default::default()
        };
        let b = SweepSpec {
            scenarios: vec!["acc".into(), "cstr".into(), "acc".into()],
            policies: vec![PolicySpec::BangBang],
            ..Default::default()
        };
        assert_eq!(
            a.spec_hash(),
            b.spec_hash(),
            "scenario order is canonicalized"
        );
        let c = SweepSpec {
            policies: vec![PolicySpec::AlwaysRun],
            ..a.clone()
        };
        assert_ne!(a.spec_hash(), c.spec_hash());
        let d = SweepSpec {
            seed: 7,
            ..a.clone()
        };
        assert_ne!(a.spec_hash(), d.spec_hash());
        // Policy order is NOT canonicalized away: it shapes labels.
        let e = SweepSpec {
            policies: vec![PolicySpec::BangBang, PolicySpec::AlwaysRun],
            ..Default::default()
        };
        let f = SweepSpec {
            policies: vec![PolicySpec::AlwaysRun, PolicySpec::BangBang],
            ..Default::default()
        };
        assert_ne!(e.spec_hash(), f.spec_hash());
    }

    #[test]
    fn spec_rejections_name_the_field() {
        let no_policies = JsonValue::parse(r#"{"episodes": 5, "steps": 5}"#).unwrap();
        assert!(SweepSpec::from_json(&no_policies)
            .unwrap_err()
            .contains("policies"));
        let bad_kind = JsonValue::parse(r#"{"kind": "nope", "policies": ["bang-bang"]}"#).unwrap();
        assert!(SweepSpec::from_json(&bad_kind)
            .unwrap_err()
            .contains("kind"));
        let bad_seed =
            JsonValue::parse(r#"{"policies": ["bang-bang"], "seed": "twelve"}"#).unwrap();
        assert!(SweepSpec::from_json(&bad_seed)
            .unwrap_err()
            .contains("seed"));
        let zero = JsonValue::parse(r#"{"policies": ["bang-bang"], "episodes": 0}"#).unwrap();
        assert!(SweepSpec::from_json(&zero)
            .unwrap_err()
            .contains("positive"));
        let bad_hex =
            JsonValue::parse(r#"{"policies": [{"drl": {"name": "n", "weights_hex": "xyz"}}]}"#)
                .unwrap();
        assert!(SweepSpec::from_json(&bad_hex)
            .unwrap_err()
            .contains("weights_hex"));
        // A full u64 seed survives the string form.
        let big =
            JsonValue::parse(r#"{"policies": ["bang-bang"], "seed": "18446744073709551615"}"#)
                .unwrap();
        assert_eq!(SweepSpec::from_json(&big).unwrap().seed, u64::MAX);
    }
}
