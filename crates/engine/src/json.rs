//! A minimal JSON document builder and serializer.
//!
//! No serde is available offline, so reports are assembled as explicit
//! [`JsonValue`] trees and rendered with a deterministic writer: object
//! keys keep insertion order, floats render via Rust's shortest-roundtrip
//! formatting, and the output is stable byte-for-byte across runs — which
//! is what makes `BENCH_*.json` trajectories diffable.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered shortest-roundtrip; non-finite values render as
    /// `null` per JSON's lack of IEEE specials). There is deliberately no
    /// `From<u64>` — a 64-bit seed does not fit in an `f64`; serialize
    /// such values as strings.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Adds/replaces a key on an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-object.
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Object(entries) => {
                let value = value.into();
                if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
                    entry.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            other => panic!("JsonValue::with on non-object {other:?}"),
        }
        self
    }

    /// Fetches a key from an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with 2-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (pad, nl, sp) = match indent {
            Some(width) => (" ".repeat(width * (depth + 1)), "\n", " "),
            None => (String::new(), "", ""),
        };
        let close_pad = match indent {
            Some(width) => " ".repeat(width * depth),
            None => String::new(),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&close_pad);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push(':');
                    out.push_str(sp);
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let doc = JsonValue::object()
            .with("name", "batch")
            .with("count", 3usize)
            .with("rate", 0.25)
            .with("ok", true)
            .with("items", vec![1.0, 2.5]);
        assert_eq!(
            doc.to_json(),
            r#"{"name":"batch","count":3,"rate":0.25,"ok":true,"items":[1,2.5]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(doc.to_json(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let doc = JsonValue::object()
            .with("a", 1.0)
            .with("b", JsonValue::Array(vec![]));
        let pretty = doc.to_json_pretty();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": []\n}\n");
        assert_eq!(
            pretty,
            doc.to_json_pretty(),
            "rendering must be deterministic"
        );
    }

    #[test]
    fn with_replaces_existing_keys() {
        let doc = JsonValue::object().with("k", 1.0).with("k", 2.0);
        assert_eq!(doc.get("k"), Some(&JsonValue::Number(2.0)));
        assert_eq!(doc.to_json(), r#"{"k":2}"#);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
    }
}
