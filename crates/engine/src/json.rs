//! A minimal JSON document builder, serializer, and parser.
//!
//! No serde is available offline, so reports are assembled as explicit
//! [`JsonValue`] trees and rendered with a deterministic writer: object
//! keys keep insertion order, floats render via Rust's shortest-roundtrip
//! formatting, and the output is stable byte-for-byte across runs — which
//! is what makes `BENCH_*.json` trajectories diffable.
//!
//! [`JsonValue::parse`] is the inverse: a strict recursive-descent reader
//! used by the sweep service (`oic-serve`) to accept request specs and by
//! the shard `merge` tool to re-read reports. Parsing a document this
//! writer produced and re-rendering it is byte-identical — numbers render
//! shortest-roundtrip in both directions, which is what makes the
//! shard/merge byte-identity contract (`docs/PROTOCOL.md`) hold.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered shortest-roundtrip; non-finite values render as
    /// `null` per JSON's lack of IEEE specials). There is deliberately no
    /// `From<u64>` — a 64-bit seed does not fit in an `f64`; serialize
    /// such values as strings.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Adds/replaces a key on an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-object.
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Object(entries) => {
                let value = value.into();
                if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
                    entry.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            other => panic!("JsonValue::with on non-object {other:?}"),
        }
        self
    }

    /// Fetches a key from an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 9.0e15 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Parses one JSON document (strict: no trailing garbage, no
    /// comments, no trailing commas; `\uXXXX` escapes incl. surrogate
    /// pairs are decoded).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] naming the byte offset of the first
    /// violation.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Renders compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with 2-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (pad, nl, sp) = match indent {
            Some(width) => (" ".repeat(width * (depth + 1)), "\n", " "),
            None => (String::new(), "", ""),
        };
        let close_pad = match indent {
            Some(width) => " ".repeat(width * depth),
            None => String::new(),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&close_pad);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push(':');
                    out.push_str(sp);
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// A parse failure: the byte offset of the first violation plus a
/// human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting the parser accepts. Recursive descent puts
/// one stack frame per `[`/`{` level, so without a bound a crafted body
/// of a few hundred kilobytes of `[[[[…` could overflow the stack of
/// whatever thread parses it (the serve layer parses request bodies on
/// connection threads). 128 levels is far beyond any legitimate sweep
/// spec or report.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting level, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must be followed by
                                // `\uXXXX` carrying the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("unpaired low surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&rest[..len]).expect("input is valid UTF-8"));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number token");
        let x: f64 = text.parse().map_err(|_| JsonParseError {
            offset: start,
            message: format!("unparsable number {text:?}"),
        })?;
        Ok(JsonValue::Number(x))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let doc = JsonValue::object()
            .with("name", "batch")
            .with("count", 3usize)
            .with("rate", 0.25)
            .with("ok", true)
            .with("items", vec![1.0, 2.5]);
        assert_eq!(
            doc.to_json(),
            r#"{"name":"batch","count":3,"rate":0.25,"ok":true,"items":[1,2.5]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(doc.to_json(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let doc = JsonValue::object()
            .with("a", 1.0)
            .with("b", JsonValue::Array(vec![]));
        let pretty = doc.to_json_pretty();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": []\n}\n");
        assert_eq!(
            pretty,
            doc.to_json_pretty(),
            "rendering must be deterministic"
        );
    }

    #[test]
    fn with_replaces_existing_keys() {
        let doc = JsonValue::object().with("k", 1.0).with("k", 2.0);
        assert_eq!(doc.get("k"), Some(&JsonValue::Number(2.0)));
        assert_eq!(doc.to_json(), r#"{"k":2}"#);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output_byte_identically() {
        let doc = JsonValue::object()
            .with("name", "batch")
            .with("count", 3usize)
            .with("rate", 0.1 + 0.2) // a value whose shortest form is long
            .with("neg", -17.25)
            .with("tiny", 5e-324)
            .with("ok", true)
            .with("none", JsonValue::Null)
            .with("items", vec![1.0, 2.5])
            .with("nested", JsonValue::object().with("k", "v\n\"x\""));
        for rendered in [doc.to_json(), doc.to_json_pretty()] {
            let parsed = JsonValue::parse(&rendered).unwrap();
            assert_eq!(parsed, doc);
            assert_eq!(parsed.to_json(), doc.to_json(), "re-render is stable");
        }
    }

    #[test]
    fn parse_decodes_escapes_and_unicode() {
        let parsed = JsonValue::parse(r#""a\u0041\n\t\\\"\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed, JsonValue::from("aA\n\t\\\"é😀"));
        // Raw multi-byte UTF-8 passes through.
        let parsed = JsonValue::parse("\"héllo\"").unwrap();
        assert_eq!(parsed.as_str(), Some("héllo"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "01x",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[1 2]",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "--1",
            "1.",
            "1e",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn nesting_is_bounded_not_stack_overflowed() {
        // Exactly at the limit parses; one level past it is a parse
        // error — and a megabyte of open brackets (the stack-overflow
        // payload shape) fails fast instead of crashing the thread.
        let deep_ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(JsonValue::parse(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        let err = JsonValue::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let bomb = "[".repeat(1 << 20);
        assert!(JsonValue::parse(&bomb).is_err());
        let object_bomb = "{\"k\":".repeat(10_000);
        assert!(JsonValue::parse(&object_bomb).is_err());
        // Siblings do not accumulate depth: a wide flat document is fine.
        let wide = format!("[{}]", vec!["[1]"; 50_000].join(","));
        assert!(JsonValue::parse(&wide).is_ok());
    }

    #[test]
    fn accessors_match_variants() {
        let doc =
            JsonValue::parse(r#"{"n": 42, "s": "x", "b": false, "a": [1], "f": 1.5}"#).unwrap();
        assert_eq!(doc.get("n").and_then(JsonValue::as_usize), Some(42));
        assert_eq!(doc.get("f").and_then(JsonValue::as_usize), None);
        assert_eq!(doc.get("f").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(doc.as_object().map(<[_]>::len), Some(5));
    }

    #[test]
    fn parsed_numbers_rerender_shortest_roundtrip() {
        // The byte-identity contract for shard merging: any number our
        // writer emits reparses to the same f64 and re-renders to the
        // same bytes.
        for (text, expected) in [
            ("3", "3"),
            ("0.25", "0.25"),
            ("-0.1", "-0.1"),
            ("1e3", "1000"),
        ] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.to_json(), expected);
        }
    }
}
