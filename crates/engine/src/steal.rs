//! A pure-`std` work-stealing task pool.
//!
//! The scheduling unit is an opaque task (the runner uses
//! `(cell, chunk)` pairs). Tasks start in a global injector; each worker
//! keeps a private deque, refills it in small batches from the injector,
//! and — when both are empty — steals single tasks from the fronts of
//! other workers' deques. No task ever spawns another task, and refill
//! batches move injector → deque while both locks are held, so every
//! queued task is visible in exactly one place at all times. A worker
//! that scans own deque, injector, then every sibling (the same
//! direction tasks move) and finds all of them empty can therefore exit:
//! the only tasks it cannot see are already being executed by their
//! owners.
//!
//! Fairness/locality rationale: owners pop from the back (LIFO, warm
//! caches), thieves steal from the front (FIFO, the oldest — likely
//! largest-remaining — work), which is the classic Chase–Lev discipline
//! implemented here with `Mutex<VecDeque>` since the workspace is
//! dependency-free. Contention is one uncontended lock per task in the
//! common case; episode chunks are milliseconds of work, so the lock is
//! noise.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters describing one pool run (for logs and wall-clock summaries;
/// intentionally excluded from deterministic reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StealStats {
    /// Tasks executed in total.
    pub executed: usize,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: usize,
    /// Refill grabs from the global injector.
    pub injector_grabs: usize,
    /// Workers that actually ran.
    pub workers: usize,
}

/// Runs `tasks` to completion on `workers` threads with work stealing.
///
/// `worker_fn(worker_index, task)` is called once per task, on whichever
/// worker ended up with it; it returns `false` to request a cooperative
/// abort (remaining tasks are discarded — the runner uses this to stop a
/// sweep at the first episode error).
pub fn run_work_stealing<T, F>(tasks: Vec<T>, workers: usize, worker_fn: F) -> StealStats
where
    T: Send,
    F: Fn(usize, T) -> bool + Sync,
{
    let total = tasks.len();
    if total == 0 {
        return StealStats::default();
    }
    let workers = workers.clamp(1, total);
    // Refill batch: large enough to amortize the injector lock, small
    // enough that late stragglers still find work to steal.
    let batch = (total / (workers * 4)).clamp(1, 32);

    let injector: Mutex<VecDeque<T>> = Mutex::new(tasks.into());
    let locals: Vec<Mutex<VecDeque<T>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let abort = AtomicBool::new(false);
    let executed = AtomicUsize::new(0);
    let steals = AtomicUsize::new(0);
    let injector_grabs = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let injector = &injector;
            let locals = &locals;
            let abort = &abort;
            let executed = &executed;
            let steals = &steals;
            let injector_grabs = &injector_grabs;
            let worker_fn = &worker_fn;
            scope.spawn(move || {
                while !abort.load(Ordering::Relaxed) {
                    // 1. Own deque, newest first.
                    let task = locals[me].lock().expect("local deque lock").pop_back();
                    let task = match task {
                        Some(t) => Some(t),
                        // 2. Refill a batch from the injector. The whole
                        // batch moves injector → local deque while BOTH
                        // locks are held, so a task is always visible in
                        // exactly one queue: a sibling scanning "own,
                        // injector, victims" (in that order — the same
                        // direction tasks move) can never observe
                        // all-empty while work remains. Lock order is
                        // own-local then injector; thieves take a single
                        // victim lock while holding nothing, so there is
                        // no cycle.
                        None => {
                            let mut local = locals[me].lock().expect("local deque lock");
                            let mut inj = injector.lock().expect("injector lock");
                            let take = batch.min(inj.len());
                            if take == 0 {
                                None
                            } else {
                                injector_grabs.fetch_add(1, Ordering::Relaxed);
                                local.extend(inj.drain(..take));
                                drop(inj);
                                local.pop_back()
                            }
                        }
                    };
                    // 3. Steal the oldest task from a sibling.
                    let task = match task {
                        Some(t) => Some(t),
                        None => {
                            let mut stolen = None;
                            for offset in 1..workers {
                                let victim = (me + offset) % workers;
                                if let Some(t) = locals[victim]
                                    .lock()
                                    .expect("victim deque lock")
                                    .pop_front()
                                {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    stolen = Some(t);
                                    break;
                                }
                            }
                            stolen
                        }
                    };
                    let Some(task) = task else {
                        // Every queue was observed empty and tasks never
                        // spawn tasks: nothing will ever appear again.
                        return;
                    };
                    executed.fetch_add(1, Ordering::Relaxed);
                    if !worker_fn(me, task) {
                        abort.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    let stats = StealStats {
        executed: executed.into_inner(),
        steals: steals.into_inner(),
        injector_grabs: injector_grabs.into_inner(),
        workers,
    };
    // Mirror the pool counters into the metrics registry (one code path
    // for logs and snapshots; the adds are no-ops while metrics are off).
    oic_obs::counter!("engine.tasks_executed", "tasks").add(stats.executed as u64);
    oic_obs::counter!("engine.steals", "tasks").add(stats.steals as u64);
    oic_obs::counter!("engine.injector_grabs", "grabs").add(stats.injector_grabs as u64);
    oic_obs::gauge!("engine.workers", "workers").set(stats.workers as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_task_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let stats = run_work_stealing((0..n).collect(), 8, |_, task: usize| {
            hits[task].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert_eq!(stats.executed, n);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let sum = AtomicU64::new(0);
        let stats = run_work_stealing((1..=100u64).collect(), 1, |_, task| {
            sum.fetch_add(task, Ordering::Relaxed);
            true
        });
        assert_eq!(sum.into_inner(), 5050);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0, "one worker has nobody to rob");
    }

    #[test]
    fn worker_count_is_clamped_to_task_count() {
        let stats = run_work_stealing(vec![1, 2, 3], 64, |_, _| true);
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.executed, 3);
    }

    #[test]
    fn abort_stops_the_pool_early() {
        let n = 10_000;
        let stats = run_work_stealing((0..n).collect(), 4, |_, task: usize| task < 5);
        assert!(
            stats.executed < n,
            "abort must discard remaining tasks ({} executed)",
            stats.executed
        );
    }

    #[test]
    fn stealing_actually_happens_under_imbalance() {
        // Deterministic steal coverage. 64 tasks / 2 workers → refill
        // batches of 8, and the refilling worker always pops the batch's
        // BACK task (task 63 for the last batch) under the same lock —
        // so whichever worker runs task 63 still holds 56..62 in its
        // deque. Task 63 blocks until every other task has executed;
        // its deque-mates can therefore only run by being stolen, and
        // the sibling cannot exit while a victim deque is non-empty.
        let others = AtomicUsize::new(0);
        let stats = run_work_stealing((0..64usize).collect(), 2, |_, task| {
            if task == 63 {
                while others.load(Ordering::Relaxed) < 63 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            } else {
                others.fetch_add(1, Ordering::Relaxed);
            }
            true
        });
        assert_eq!(stats.executed, 64);
        assert!(
            stats.steals >= 7,
            "the blocked worker's deque-mates must be stolen (saw {})",
            stats.steals
        );
        assert!(
            stats.injector_grabs >= 2,
            "both batch paths exercised ({} grabs)",
            stats.injector_grabs
        );
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let stats = run_work_stealing(Vec::<usize>::new(), 4, |_, _| true);
        assert_eq!(stats, StealStats::default());
    }
}
