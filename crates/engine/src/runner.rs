//! The parallel batch runner.
//!
//! The unit of scheduling is the `(scenario, policy, episode-chunk)`
//! task: one work-stealing pool (global injector + per-worker deques,
//! see [`crate::steal`]) drains chunks from *all* cells concurrently, so
//! a slow tube-MPC cell no longer serializes the sweep behind it.
//! Each chunk folds its episodes into a [`CellAccumulator`] as they
//! finish and the per-cell merge state combines chunk accumulators in
//! ascending chunk order — memory is O(cells), not O(episodes).
//!
//! Determinism is preserved by construction: every episode derives its
//! own seed from `(base seed, scenario, policy, episode index)` via a
//! stable hash, chunk boundaries depend only on the configuration (never
//! the thread count), and chunks merge in index order — so the report is
//! byte-identical for any worker count, including 1.
//!
//! Episode failures **degrade, not abort**: a panicking worker, a NaN
//! plant update, or a diverging trajectory turns its cell into a
//! [`CellOutcome::Failed`](crate::report::CellOutcome) report entry
//! while every other cell completes normally. All chunks always run and
//! each chunk stops at its own first failure, so the reported failure —
//! the lowest `(chunk, episode)` of the cell — is a pure function of the
//! seeds and the fault plan, never of thread interleaving.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use oic_faults::{CellFault, DropoutSpec, FaultPlan};

use oic_core::skip_horizon::MaxSkipPolicy;
use oic_core::{
    AlwaysRunPolicy, BangBangPolicy, CoreError, GreedyDrlPolicy, PeriodicSkipPolicy, RandomPolicy,
    SafeSets, SkipPolicy,
};
use oic_nn::Mlp;
use oic_scenarios::{Scenario, ScenarioInstance, ScenarioRegistry};

use crate::accumulator::CellAccumulator;
use crate::cache::CellCache;
use crate::report::{BatchReport, CellReport, EpisodeRecord};
use crate::spec::ShardInfo;
use crate::steal::{run_work_stealing, StealStats};

/// Errors surfaced by the batch engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The configuration is unusable (zero episodes/steps, no policies…).
    InvalidConfig(&'static str),
    /// A scenario failed to build or a policy failed to decode/prepare;
    /// the context names the scenario/policy and the stage. Per-episode
    /// failures no longer surface here — they degrade their cell to a
    /// `Failed` report entry instead (see the module docs).
    Episode {
        /// `scenario/policy/stage` context string.
        context: String,
        /// The underlying failure.
        source: CoreError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(what) => write!(f, "invalid batch config: {what}"),
            EngineError::Episode { context, source } => {
                write!(f, "batch failed at {context}: {source}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Wall time of one `(scenario, policy)` cell, summed over its chunks.
///
/// The sum is CPU time spent in the cell's episodes (chunks of one cell
/// run concurrently on different workers), which is the right
/// denominator for per-cell `episodes_per_sec` accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTiming {
    /// Scenario name (report key).
    pub scenario: String,
    /// Policy label (report key).
    pub policy: String,
    /// Episodes the cell ran.
    pub episodes: usize,
    /// Summed chunk wall time, nanoseconds.
    pub wall_ns: u64,
}

/// Scheduler and timing diagnostics of one sweep — wall-clock facts that
/// deliberately stay out of the deterministic [`BatchReport`].
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Work-stealing pool counters.
    pub steal: StealStats,
    /// `(scenario, Drl)` cells omitted because the network's input layer
    /// does not fit the scenario's state/disturbance dimensions.
    pub cells_skipped_incompatible: usize,
    /// Cells answered from the content-addressed cache instead of
    /// running episodes (always 0 without [`SweepOptions::cache`]).
    pub cells_from_cache: usize,
    /// Cells that degraded to a `Failed` report entry (panic, NaN, or
    /// divergence in one of their episodes).
    pub cells_failed: usize,
    /// Per-cell episode counts and wall time, in report cell order.
    pub cell_timings: Vec<CellTiming>,
}

/// Throughput tallies restricted to the cells whose episodes actually
/// executed, for honest episodes-per-second accounting.
///
/// Cache-hit cells carry `wall_ns: 0` (their episodes never ran this
/// sweep) and failed cells carry partial episode work against partial
/// wall time; counting either inflates or skews a throughput quotient.
/// [`executed_throughput`] excludes both from numerator *and*
/// denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutedThroughput {
    /// Episodes of the included (executed, completed) cells.
    pub episodes: usize,
    /// Summed per-chunk wall time of the included cells (CPU-,
    /// not wall-clock-seconds: chunks run in parallel).
    pub wall_ns: u64,
    /// Included cells.
    pub cells: usize,
    /// Cells excluded as cache hits (`wall_ns == 0`).
    pub cells_from_cache: usize,
    /// Cells excluded as failed.
    pub cells_failed: usize,
}

/// Computes [`ExecutedThroughput`] for one sweep. `report.cells` and
/// `stats.cell_timings` are index-aligned (both in report cell order).
pub fn executed_throughput(report: &BatchReport, stats: &SweepStats) -> ExecutedThroughput {
    debug_assert_eq!(report.cells.len(), stats.cell_timings.len());
    let mut tally = ExecutedThroughput::default();
    for (cell, timing) in report.cells.iter().zip(&stats.cell_timings) {
        if cell.is_failed() {
            tally.cells_failed += 1;
        } else if timing.wall_ns == 0 {
            tally.cells_from_cache += 1;
        } else {
            tally.cells += 1;
            tally.episodes += timing.episodes;
            tally.wall_ns += timing.wall_ns;
        }
    }
    tally
}

/// A skipping policy the engine can instantiate per episode.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Never skip (the RMPC-only style baseline).
    AlwaysRun,
    /// Always skip inside `X′` (paper Eq. (7)).
    BangBang,
    /// Run once every `period` decisions.
    Periodic(usize),
    /// Skip with the given probability (adversarial stressor).
    Random(f64),
    /// Weakly-hard deadline policy with the given consecutive-skip budget.
    MaxSkip(usize),
    /// A trained DQN skipping policy: `weights` is the `oic-nn` binary
    /// serialization ([`oic_nn::Mlp::to_bytes`]); the blob is decoded
    /// **once** per sweep and the network `Arc`-shared across all worker
    /// deques. Cells only materialize on scenarios whose state and
    /// disturbance dimensions fit the network's input layer (a policy
    /// trained for a 2-state plant is meaningless on a 4-state one);
    /// incompatible `(scenario, policy)` pairs are skipped, not errors —
    /// but a spec that fits *no* registered scenario fails the sweep.
    Drl {
        /// Display name (label becomes `drl-{name}`).
        name: String,
        /// Serialized network weights, shared by all cells of the spec.
        weights: Arc<Vec<u8>>,
    },
}

impl PolicySpec {
    /// Convenience constructor for [`PolicySpec::Drl`].
    pub fn drl(name: impl Into<String>, weights: impl Into<Vec<u8>>) -> Self {
        PolicySpec::Drl {
            name: name.into(),
            weights: Arc::new(weights.into()),
        }
    }

    /// Display label (doubles as the JSON key).
    ///
    /// [`PolicySpec::Random`] uses `{p}` (shortest round-trip float
    /// formatting), not a fixed precision — `{p:.2}` collapsed e.g.
    /// `0.001` and `0.004` onto the same `random-0.00` key.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::AlwaysRun => "always-run".to_string(),
            PolicySpec::BangBang => "bang-bang".to_string(),
            PolicySpec::Periodic(k) => format!("periodic-{k}"),
            PolicySpec::Random(p) => format!("random-{p}"),
            PolicySpec::MaxSkip(b) => format!("max-skip-{b}"),
            PolicySpec::Drl { name, .. } => format!("drl-{name}"),
        }
    }

    /// Checks the spec's parameters without needing a scenario.
    ///
    /// # Errors
    ///
    /// Names the offending parameter (the constructors would otherwise
    /// panic inside a worker thread, bypassing [`EngineError`]).
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            PolicySpec::Random(p) if !(0.0..=1.0).contains(p) => {
                Err("random policy probability must be in [0, 1]")
            }
            PolicySpec::Periodic(0) => Err("periodic policy period must be at least 1"),
            PolicySpec::MaxSkip(0) => Err("max-skip budget must be at least 1"),
            PolicySpec::Drl { name, .. } if name.is_empty() => {
                Err("drl policy name must not be empty")
            }
            PolicySpec::Drl { weights, .. } if weights.is_empty() => {
                Err("drl policy weights must not be empty")
            }
            _ => Ok(()),
        }
    }

    /// Decodes the weight blob of a [`PolicySpec::Drl`] (`None` for the
    /// analytic specs). Called once per sweep; the decoded network is
    /// then shared by every compatible cell.
    ///
    /// # Errors
    ///
    /// Propagates blob-decode failures as [`CoreError::Policy`].
    pub fn decode_network(&self) -> Result<Option<Arc<Mlp>>, CoreError> {
        match self {
            PolicySpec::Drl { weights, .. } => GreedyDrlPolicy::decode(weights).map(Some),
            _ => Ok(None),
        }
    }

    /// Precomputes whatever the policy needs for one scenario (e.g. the
    /// consecutive-skip chain or the decoded Q-network), so per-episode
    /// instantiation is cheap.
    ///
    /// # Errors
    ///
    /// Propagates chain-synthesis failures for [`PolicySpec::MaxSkip`]
    /// and decode/dimension failures for [`PolicySpec::Drl`]. Inside
    /// [`run_batch`] incompatible Drl cells are *skipped* before this is
    /// called; calling it directly surfaces the mismatch as an error.
    pub fn prepare(&self, sets: &SafeSets) -> Result<PreparedPolicy, CoreError> {
        Ok(match self {
            PolicySpec::MaxSkip(budget) => {
                PreparedPolicy::MaxSkip(MaxSkipPolicy::new(sets, *budget)?)
            }
            PolicySpec::Drl { weights, .. } => {
                PreparedPolicy::Drl(GreedyDrlPolicy::from_bytes(weights, sets)?)
            }
            other => PreparedPolicy::Spec(other.clone()),
        })
    }
}

/// De-duplicates policy labels for report keys: repeated labels get a
/// `#2`, `#3`, … suffix in roster order, so two specs that render to the
/// same string (e.g. two `drl` blobs registered under one name) still
/// produce distinct cells — and distinct episode seeds, which hash the
/// label.
/// Runs **after** every spec passed [`PolicySpec::validate`] — suffixing
/// must never hide an invalid spec behind a fresh label, so
/// [`run_batch_opts`] validates the roster first and only then derives
/// report keys. The per-base counter persists across occurrences, which
/// keeps the whole pass O(total labels): a suffix below the counter was
/// already inserted into `used` (taken or probed), so no lower free
/// suffix is ever skipped and the output matches the naive
/// lowest-free-suffix scan.
fn dedup_labels(policies: &[PolicySpec]) -> Vec<String> {
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut next_k: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    policies
        .iter()
        .map(|p| {
            let base = p.label();
            if used.insert(base.clone()) {
                return base;
            }
            let k = next_k.entry(base.clone()).or_insert(1);
            loop {
                *k += 1;
                let label = format!("{base}#{k}");
                if used.insert(label.clone()) {
                    return label;
                }
            }
        })
        .collect()
}

/// A policy prototype bound to one scenario.
#[derive(Debug, Clone)]
pub enum PreparedPolicy {
    /// Stateless or per-episode-seeded policies.
    Spec(PolicySpec),
    /// The precomputed weakly-hard policy (chain synthesis is expensive).
    MaxSkip(MaxSkipPolicy),
    /// A learned policy bound to one scenario's encoder: the network is
    /// `Arc`-shared, so per-episode instantiation clones two small
    /// scale vectors, never the weights.
    Drl(GreedyDrlPolicy),
}

impl PreparedPolicy {
    /// Instantiates the policy for one episode.
    pub fn for_episode(&self, seed: u64) -> Box<dyn SkipPolicy> {
        match self {
            PreparedPolicy::Spec(PolicySpec::AlwaysRun) => Box::new(AlwaysRunPolicy),
            PreparedPolicy::Spec(PolicySpec::BangBang) => Box::new(BangBangPolicy),
            PreparedPolicy::Spec(PolicySpec::Periodic(k)) => Box::new(PeriodicSkipPolicy::new(*k)),
            PreparedPolicy::Spec(PolicySpec::Random(p)) => Box::new(RandomPolicy::new(*p, seed)),
            PreparedPolicy::Spec(PolicySpec::MaxSkip(_) | PolicySpec::Drl { .. }) => {
                unreachable!("prepare() replaces MaxSkip/Drl with the built policy")
            }
            PreparedPolicy::MaxSkip(policy) => Box::new(policy.clone()),
            PreparedPolicy::Drl(policy) => Box::new(policy.clone()),
        }
    }
}

/// Batch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Episodes per (scenario, policy) cell.
    pub episodes: usize,
    /// Steps per episode.
    pub steps: usize,
    /// Base seed; all per-episode seeds derive from it.
    pub seed: u64,
    /// Disturbance-history window handed to policies (`r`).
    pub memory: usize,
    /// Worker threads. `0` (the default) uses one worker per available
    /// CPU — the full `available_parallelism()`, uncapped; earlier
    /// versions silently clamped this to 8, which starved large hosts.
    pub threads: usize,
    /// Episodes per work-stealing task. `0` (the default) picks
    /// `ceil(episodes / 64)` clamped to `[16, 1024]` — a pure function of
    /// the episode count, *never* of the thread count, because chunk
    /// boundaries shape the floating-point merge tree and must not change
    /// between `--threads 1` and `--threads N`.
    pub chunk: usize,
    /// Keep per-episode records in the report (`false`, the default,
    /// streams records into the accumulator and drops them — memory stays
    /// O(cells) no matter how many episodes run).
    pub detail: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            episodes: 100,
            steps: 100,
            seed: 2020,
            memory: 1,
            threads: 0,
            chunk: 0,
            detail: false,
        }
    }
}

impl BatchConfig {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Episodes per scheduling task (deterministic: depends on the
    /// configured chunk size and episode count only).
    pub fn chunk_size(&self) -> usize {
        if self.chunk > 0 {
            self.chunk
        } else {
            self.episodes.div_ceil(64).clamp(16, 1024)
        }
    }
}

/// Stable seed derivation (FNV-1a over the identifying tuple).
pub fn episode_seed(base: u64, scenario: &str, policy: &str, episode: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&base.to_le_bytes());
    eat(scenario.as_bytes());
    eat(&[0xFF]);
    eat(policy.as_bytes());
    eat(&(episode as u64).to_le_bytes());
    hash
}

/// Fault-injection knobs for one episode ([`run_episode_opts`]).
///
/// The default is a clean, fault-free episode — exactly what
/// [`run_episode`] runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpisodeFaults<'a> {
    /// Environment-forced actuation dropout: the actuator occasionally
    /// refuses the commanded input and the plant coasts on the skip
    /// input instead. `None` means no dropout axis.
    pub dropout: Option<&'a DropoutSpec>,
    /// Infrastructure fault: overwrite the first state component with
    /// NaN after this step's plant update (the divergence guard then
    /// fails the episode deterministically).
    pub nan_step: Option<usize>,
}

/// Runs one episode against a prebuilt scenario instance.
///
/// The engine owns the plant stepping (`x⁺ = Ax + Bu + w`), so episodes
/// are exact closed-loop rollouts of the model the certificates cover.
///
/// # Errors
///
/// Propagates runtime failures ([`CoreError::OutsideInvariant`] can only
/// happen if a disturbance process escapes `W` — a scenario bug).
/// Under an active dropout axis the same condition is an expected
/// consequence of voiding Theorem 1's premise, so it ends the episode
/// early with its violations tallied instead of erroring.
pub fn run_episode(
    instance: &ScenarioInstance,
    scenario: &dyn Scenario,
    prepared: &PreparedPolicy,
    episode: usize,
    steps: usize,
    memory: usize,
    seed: u64,
) -> Result<EpisodeRecord, CoreError> {
    run_episode_opts(
        instance,
        scenario,
        prepared,
        episode,
        steps,
        memory,
        seed,
        EpisodeFaults::default(),
    )
}

/// [`run_episode`] with fault injection: environment-forced actuation
/// dropout and/or a planted NaN plant update.
///
/// The dropout stream is drawn **every step** regardless of the policy's
/// decision, so the realized fault pattern is a pure function of the
/// episode seed — two policies under the same seed face the same
/// environment. A drop only *overrides* steps the policy decided to
/// actuate ([`oic_core::IntermittentController::notify_dropout`]
/// re-books the step);
/// those overrides are tallied as [`EpisodeRecord::forced_skips`].
///
/// Every step also passes a divergence guard: a non-finite or
/// astronomically large state component fails the episode with
/// [`CoreError::NonFinite`] instead of silently folding NaN into the
/// cell's aggregates.
///
/// # Errors
///
/// The [`run_episode`] contract plus [`CoreError::NonFinite`] from the
/// divergence guard.
#[allow(clippy::too_many_arguments)]
pub fn run_episode_opts(
    instance: &ScenarioInstance,
    scenario: &dyn Scenario,
    prepared: &PreparedPolicy,
    episode: usize,
    steps: usize,
    memory: usize,
    seed: u64,
    faults: EpisodeFaults<'_>,
) -> Result<EpisodeRecord, CoreError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let x0 = instance.sample_initial_state(&mut rng);
    let mut process = scenario.disturbance_process(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut runtime = instance.runtime(prepared.for_episode(seed), memory);
    let sys = instance.sets().plant().system().clone();
    let safe = instance.sets().safe();
    let invariant = instance.sets().invariant();
    let mut dropout = faults
        .dropout
        .filter(|spec| !spec.is_none())
        .map(|spec| spec.stream(seed));

    let mut x = x0;
    let mut safety_violations = 0usize;
    let mut invariant_violations = 0usize;
    let mut min_safe_slack = f64::INFINITY;
    let mut forced_skips = 0usize;
    let mut escaped = false;
    for t in 0..steps {
        min_safe_slack = min_safe_slack.min(safe.min_slack(&x));
        if !safe.contains_with_tol(&x, 1e-6) {
            safety_violations += 1;
        }
        if !invariant.contains_with_tol(&x, 1e-6) {
            invariant_violations += 1;
        }
        let mut decision = match runtime.step(&x, &[]) {
            Ok(decision) => decision,
            // Dropout deliberately breaks Theorem 1's precondition (the
            // actuator did not do what Algorithm 1 commanded), so the
            // state escaping XI *is the measured result* of that regime:
            // the episode ends here with its violation tallies — the
            // offending state was already counted above — instead of
            // failing the whole cell. Without an active dropout axis the
            // same error still indicates a broken certificate and
            // propagates.
            Err(CoreError::OutsideInvariant { .. }) if dropout.is_some() => {
                escaped = true;
                break;
            }
            Err(e) => return Err(e),
        };
        if let Some(stream) = dropout.as_mut() {
            // Drawn every step — the realized pattern must not depend on
            // what the policy decided — but only steps the policy chose
            // to actuate can be overridden into a forced skip.
            if stream.dropped() && !decision.skipped {
                decision.input = runtime.notify_dropout();
                forced_skips += 1;
            }
        }
        let w = process.next(t);
        x = sys.step(&x, &decision.input, &w);
        if faults.nan_step == Some(t) {
            x[0] = f64::NAN;
        }
        if !x.iter().all(|v| v.is_finite() && v.abs() < 1e12) {
            return Err(CoreError::NonFinite { step: t });
        }
    }
    // The final post-step state has no control decision after it but is
    // still a trajectory point Theorem 1 speaks about — tally it too. An
    // escaped episode already counted its terminal state at the top of
    // the iteration that broke out.
    if !escaped {
        min_safe_slack = min_safe_slack.min(safe.min_slack(&x));
        if !safe.contains_with_tol(&x, 1e-6) {
            safety_violations += 1;
        }
        if !invariant.contains_with_tol(&x, 1e-6) {
            invariant_violations += 1;
        }
    }

    Ok(EpisodeRecord {
        episode,
        seed,
        stats: runtime.stats().clone(),
        safety_violations,
        invariant_violations,
        min_safe_slack,
        forced_skips,
    })
}

/// One fully prepared (scenario, policy, dropout) cell, shared read-only
/// by all workers (and by the lockstep kernel in [`crate::kernel`]).
pub(crate) struct CellJob<'a> {
    pub(crate) scenario: &'a dyn Scenario,
    pub(crate) instance: ScenarioInstance,
    pub(crate) prepared: PreparedPolicy,
    pub(crate) label: String,
    /// The cell's dropout variant and its canonical label (report key).
    pub(crate) dropout: DropoutSpec,
    pub(crate) dropout_label: String,
    /// The planned infrastructure fault for this cell, derived from the
    /// sweep's [`FaultPlan`] and the cell hash ([`CellFault::None`]
    /// without a plan).
    pub(crate) fault: CellFault,
    /// The cell's content address (see [`crate::spec::cell_hash`]).
    pub(crate) hash: [u8; 32],
}

/// The scheduling unit: one episode chunk of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ChunkTask {
    cell: usize,
    chunk: usize,
}

/// The streamed output of one chunk.
struct ChunkOutput {
    acc: CellAccumulator,
    detail: Vec<EpisodeRecord>,
    wall_ns: u64,
}

/// Per-cell streaming merge state: chunk accumulators are folded into
/// `acc` strictly in ascending chunk order; finished-out-of-order chunks
/// park in `pending` until their turn. Entries are constant-size in
/// stream mode, so even the worst case — a stalled early chunk parking
/// every later chunk of its cell, up to (chunks per cell − 1) entries —
/// keeps streamed sweeps O(cells) in *records*; typically `pending`
/// holds only the few chunks in flight on other workers.
struct CellMerge {
    next: usize,
    acc: CellAccumulator,
    pending: BTreeMap<usize, ChunkOutput>,
    detail: Vec<EpisodeRecord>,
    wall_ns: u64,
}

impl CellMerge {
    fn new() -> Self {
        Self {
            next: 0,
            acc: CellAccumulator::new(),
            pending: BTreeMap::new(),
            detail: Vec::new(),
            wall_ns: 0,
        }
    }

    fn submit(&mut self, chunk: usize, output: ChunkOutput) {
        // Wall time sums immediately (addition is order-independent);
        // only the floating-point accumulator merge must wait its turn.
        self.wall_ns += output.wall_ns;
        self.pending.insert(chunk, output);
        while let Some(output) = self.pending.remove(&self.next) {
            self.acc.merge(&output.acc);
            self.detail.extend(output.detail);
            self.next += 1;
        }
    }
}

/// Which episode-loop implementation a sweep runs.
///
/// Both produce byte-identical reports (see the `kernel` module's docs
/// for why); the choice only trades wall-clock speed against the
/// scalar loop's per-episode telemetry spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// The lockstep kernel, unless `OIC_EPISODE_KERNEL=scalar` is set in
    /// the environment (the escape hatch for A/B timing and debugging).
    #[default]
    Auto,
    /// Force the lockstep kernel.
    Lockstep,
    /// Force the scalar per-episode reference loop.
    Scalar,
}

impl KernelChoice {
    /// Resolves the effective choice (consults the environment once per
    /// sweep, not per chunk).
    fn lockstep(self) -> bool {
        match self {
            KernelChoice::Lockstep => true,
            KernelChoice::Scalar => false,
            KernelChoice::Auto => {
                !matches!(std::env::var("OIC_EPISODE_KERNEL").as_deref(), Ok("scalar"))
            }
        }
    }
}

/// Optional sweep behaviors layered over the plain batch run: scenario
/// filtering, shard selection, the content-addressed cell cache, and a
/// cell-completion callback.
///
/// Every option preserves the byte-identity contract: a filtered,
/// sharded, cached, or streamed sweep produces exactly the cell bytes
/// the plain sweep would for the cells it covers.
#[derive(Default)]
pub struct SweepOptions<'a> {
    /// Run only these scenarios (`None` runs every registered one).
    /// Registry order still decides cell order; unknown names are an
    /// error, not an empty report.
    pub scenarios: Option<&'a [String]>,
    /// Own only the cells whose global index `g` over the materialized
    /// grid satisfies [`ShardInfo::owns`]; the report records the shard
    /// so `merge` can interleave the pieces back.
    pub shard: Option<ShardInfo>,
    /// Content-addressed cell cache: hits skip the episode loop
    /// entirely, completed cells are stored under their
    /// [`cell_hash`](crate::spec::cell_hash). Ignored when
    /// `config.detail` is set — the cache stores aggregates only.
    pub cache: Option<&'a CellCache>,
    /// Called once per owned cell as it completes — cache hits
    /// immediately, run cells when their last chunk merges — with the
    /// cell's global index. Cells complete out of order and the callback
    /// runs on worker threads; callers that need report order must
    /// buffer on the index.
    pub on_cell: Option<CellCallback<'a>>,
    /// The environment-forced actuation-dropout axis: each entry
    /// multiplies the `(scenario, policy)` grid by one dropout variant
    /// (grid order is scenario → policy → dropout). `None` or an empty
    /// slice runs the single fault-free `none` variant.
    pub dropouts: Option<&'a [DropoutSpec]>,
    /// Seeded infrastructure-fault plan: per-cell worker panics and NaN
    /// plant updates, derived from the cell hash so the faulted set is
    /// byte-reproducible at any thread count. Faulted cells bypass the
    /// cache and degrade to `Failed` report entries.
    pub faults: Option<&'a FaultPlan>,
    /// Episode-loop implementation (lockstep kernel vs scalar reference
    /// loop); both produce byte-identical reports.
    pub kernel: KernelChoice,
}

/// The [`SweepOptions::on_cell`] completion callback: `(global cell
/// index, completed cell)`, invoked from worker threads.
pub type CellCallback<'a> = &'a (dyn Fn(usize, &CellReport) + Sync);

impl std::fmt::Debug for SweepOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("scenarios", &self.scenarios)
            .field("shard", &self.shard)
            .field("cache", &self.cache.is_some())
            .field("on_cell", &self.on_cell.is_some())
            .field("dropouts", &self.dropouts)
            .field("faults", &self.faults)
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// Runs the full batch: every scenario × every policy × `episodes`
/// episodes, chunked and drained by one work-stealing pool across all
/// cells at once.
///
/// # Errors
///
/// * [`EngineError::InvalidConfig`] on empty configurations.
/// * [`EngineError::Episode`] naming a scenario that failed to build or
///   a policy that failed to decode/prepare. Per-episode failures do
///   **not** error the sweep: the affected cell degrades to a
///   [`CellOutcome::Failed`](crate::report::CellOutcome) report entry
///   naming the lowest failing `(chunk, episode)` — a deterministic
///   choice, because every chunk always runs (see the module docs).
pub fn run_batch(
    registry: &ScenarioRegistry,
    policies: &[PolicySpec],
    config: &BatchConfig,
) -> Result<BatchReport, EngineError> {
    run_batch_with_stats(registry, policies, config).map(|(report, _)| report)
}

/// [`run_batch`] plus the sweep's [`SweepStats`] (scheduler counters,
/// skipped-cell counts, per-cell wall time — wall-clock diagnostics that
/// deliberately stay out of the deterministic report).
///
/// # Errors
///
/// Same contract as [`run_batch`].
pub fn run_batch_with_stats(
    registry: &ScenarioRegistry,
    policies: &[PolicySpec],
    config: &BatchConfig,
) -> Result<(BatchReport, SweepStats), EngineError> {
    run_batch_opts(registry, policies, config, &SweepOptions::default())
}

/// [`run_batch_with_stats`] with [`SweepOptions`] — the cell-granular
/// entry point the serve layer and the sharded/cached bench runs build
/// on.
///
/// # Errors
///
/// The [`run_batch`] contract, plus [`EngineError::InvalidConfig`] for
/// invalid shards and scenario filters naming unregistered scenarios.
pub fn run_batch_opts(
    registry: &ScenarioRegistry,
    policies: &[PolicySpec],
    config: &BatchConfig,
    opts: &SweepOptions<'_>,
) -> Result<(BatchReport, SweepStats), EngineError> {
    if registry.is_empty() {
        return Err(EngineError::InvalidConfig("no scenarios registered"));
    }
    if policies.is_empty() {
        return Err(EngineError::InvalidConfig("no policies given"));
    }
    if config.episodes == 0 || config.steps == 0 {
        return Err(EngineError::InvalidConfig(
            "episodes and steps must be positive",
        ));
    }
    if let Some(shard) = &opts.shard {
        if shard.validate().is_err() {
            return Err(EngineError::InvalidConfig(
                "invalid shard: need 0 <= index < of",
            ));
        }
    }
    if let Some(filter) = opts.scenarios {
        if filter.is_empty() {
            return Err(EngineError::InvalidConfig("empty scenario filter"));
        }
        for name in filter {
            if !registry.iter().any(|s| s.name() == name) {
                return Err(EngineError::InvalidConfig(
                    "scenario filter names an unregistered scenario",
                ));
            }
        }
    }
    for policy in policies {
        policy.validate().map_err(EngineError::InvalidConfig)?;
    }
    if let Some(dropouts) = opts.dropouts {
        for dropout in dropouts {
            if dropout.validate().is_err() {
                return Err(EngineError::InvalidConfig(
                    "invalid dropout spec (p must be in (0, 1], m/k need 1 <= m <= k)",
                ));
            }
        }
    }
    if let Some(plan) = opts.faults {
        if plan.validate().is_err() {
            return Err(EngineError::InvalidConfig(
                "invalid fault plan: rates must be in [0, 1] and sum to at most 1",
            ));
        }
    }

    // Decode every learned policy's weight blob exactly once; the
    // decoded networks are `Arc`-shared by all compatible cells (and
    // through them by every worker deque).
    let mut networks: Vec<Option<Arc<Mlp>>> = Vec::with_capacity(policies.len());
    for policy in policies {
        networks.push(
            policy
                .decode_network()
                .map_err(|source| EngineError::Episode {
                    context: format!("{}/decode", policy.label()),
                    source,
                })?,
        );
    }
    let labels = dedup_labels(policies);
    // Canonical policy strings feed cell hashes; computed once so drl
    // weight blobs are digested per policy, not per cell.
    let canonical: Vec<String> = policies.iter().map(crate::spec::canonical_policy).collect();

    // The dropout axis (innermost grid dimension); absent or empty means
    // the single fault-free variant, which renders without any dropout
    // fields and keeps fault-free reports byte-identical to the pre-axis
    // schema.
    let dropouts: Vec<DropoutSpec> = match opts.dropouts {
        Some(list) if !list.is_empty() => list.to_vec(),
        _ => vec![DropoutSpec::None],
    };

    // Build every cell up front (instance construction — invariant-set
    // synthesis — is the expensive, non-parallel part and is shared by
    // all of the cell's chunks).
    let mut jobs = Vec::with_capacity(registry.len() * policies.len() * dropouts.len());
    let mut cells_skipped_incompatible = 0usize;
    for scenario in registry.iter() {
        if let Some(filter) = opts.scenarios {
            if !filter.iter().any(|name| name == scenario.name()) {
                continue;
            }
        }
        let instance = scenario.build().map_err(|source| EngineError::Episode {
            context: format!("{}/build", scenario.name()),
            source,
        })?;
        for (((policy, network), label), canon) in
            policies.iter().zip(&networks).zip(&labels).zip(&canonical)
        {
            let prepared = match network {
                // Learned policies only apply where the architecture fits
                // the plant (see `PolicySpec::Drl`); other cells are
                // omitted from the report — counted per omitted grid
                // cell, so shrunken sweeps are explainable.
                Some(net) => {
                    if GreedyDrlPolicy::infer_memory(net, instance.sets()).is_none() {
                        cells_skipped_incompatible += dropouts.len();
                        oic_obs::counter!("engine.cells_skipped_incompatible", "cells").incr();
                        continue;
                    }
                    GreedyDrlPolicy::from_network(net.clone(), instance.sets())
                        .map(PreparedPolicy::Drl)
                }
                None => policy.prepare(instance.sets()),
            }
            .map_err(|source| EngineError::Episode {
                context: format!("{}/{}/prepare", scenario.name(), label),
                source,
            })?;
            // One cell per dropout variant; the policy is prepared once
            // per (scenario, policy) and cloned across the axis.
            for dropout in &dropouts {
                let dropout_label = dropout.label();
                let hash = crate::spec::cell_hash_canonical(
                    scenario.name(),
                    label,
                    canon,
                    &dropout_label,
                    config,
                );
                let fault = opts.faults.map_or(CellFault::None, |plan| {
                    plan.cell_fault(&hash, config.episodes, config.steps)
                });
                jobs.push(CellJob {
                    scenario,
                    instance: instance.clone(),
                    prepared: prepared.clone(),
                    label: label.clone(),
                    dropout: *dropout,
                    dropout_label,
                    fault,
                    hash,
                });
            }
        }
    }
    if jobs.is_empty() {
        return Err(EngineError::InvalidConfig(
            "no cells to run: no policy applies to any registered scenario",
        ));
    }
    // A learned policy that fits *no* scenario is a misconfiguration,
    // not a quietly empty report row.
    for (network, label) in networks.iter().zip(&labels) {
        if network.is_some() && !jobs.iter().any(|job| &job.label == label) {
            return Err(EngineError::Episode {
                context: format!("{label}/prepare"),
                source: CoreError::Policy {
                    reason: "network fits no registered scenario's state/disturbance dimensions"
                        .into(),
                },
            });
        }
    }

    // Shard selection happens over the *materialized* grid (after the
    // dimension-compatibility skips above), so every shard of a sweep
    // agrees on the global index of every cell.
    let owned: Vec<usize> = (0..jobs.len())
        .filter(|&g| opts.shard.is_none_or(|shard| shard.owns(g)))
        .collect();

    // The cache stores aggregates only; detail sweeps bypass it both
    // ways rather than serve a cell without the rows the caller asked
    // for.
    let cache = if config.detail { None } else { opts.cache };

    // One result slot per owned cell (report order); cache hits fill
    // theirs immediately, the rest at last-chunk merge time.
    let slots: Vec<Mutex<Option<CellReport>>> = owned.iter().map(|_| Mutex::new(None)).collect();
    let mut cells_from_cache = 0usize;
    let mut run: Vec<usize> = Vec::with_capacity(owned.len());
    for (slot_idx, &g) in owned.iter().enumerate() {
        let job = &jobs[g];
        // A cell with a planned fault must actually *run into* that
        // fault — serving it from a pre-fault cache entry would silently
        // defeat the injection (the plan is not part of the hash).
        if let Some(cache) = cache.filter(|_| job.fault == CellFault::None) {
            if let Some(cell) = cache.get(&job.hash) {
                // The names are part of the hash preimage; a mismatch
                // means a corrupted store — rerun rather than mislabel.
                if cell.scenario == job.instance.name()
                    && cell.policy == job.label
                    && cell.dropout == job.dropout_label
                {
                    cells_from_cache += 1;
                    oic_obs::counter!("engine.cells_from_cache", "cells").incr();
                    if let Some(on_cell) = opts.on_cell {
                        on_cell(g, &cell);
                    }
                    *slots[slot_idx].lock().expect("cell slot") = Some(cell);
                    continue;
                }
            }
        }
        run.push(slot_idx);
    }

    let chunk_size = config.chunk_size();
    let chunks_per_cell = config.episodes.div_ceil(chunk_size);
    let mut tasks = Vec::with_capacity(run.len() * chunks_per_cell);
    for cell in 0..run.len() {
        for chunk in 0..chunks_per_cell {
            tasks.push(ChunkTask { cell, chunk });
        }
    }

    let lockstep = opts.kernel.lockstep();
    let merges: Vec<Mutex<CellMerge>> = run.iter().map(|_| Mutex::new(CellMerge::new())).collect();
    // Per-cell failure slot: the lowest (chunk, episode) failure of the
    // cell. Every chunk always runs and stops at its *own* first
    // failure, so the winning entry is a pure function of the seeds and
    // the fault plan — never of thread interleaving.
    let failures: Vec<Mutex<Option<(usize, usize, String)>>> =
        run.iter().map(|_| Mutex::new(None)).collect();
    // Chunks of a cell retired so far (merged or failed); the thread
    // that retires the last one finalizes the cell.
    let done: Vec<AtomicUsize> = run.iter().map(|_| AtomicUsize::new(0)).collect();
    let cells_failed = AtomicUsize::new(0);

    let steal = run_work_stealing(tasks, config.worker_count(), |_, task: ChunkTask| {
        let slot_idx = run[task.cell];
        let g = owned[slot_idx];
        let job = &jobs[g];
        let _span = oic_obs::span_with("engine.chunk", "engine", || {
            format!("{}/{} chunk {}", job.instance.name(), job.label, task.chunk)
        });
        let chunk_started = Instant::now();
        let start = task.chunk * chunk_size;
        let end = (start + chunk_size).min(config.episodes);
        let mut acc = CellAccumulator::new();
        let mut detail = Vec::with_capacity(if config.detail { end - start } else { 0 });
        let mut chunk_failure: Option<(usize, String)> = None;
        if lockstep {
            // The lockstep kernel replays the whole chunk behind one
            // unwind boundary; `marker` carries the episode being
            // computed so a panic — injected or genuine — degrades to
            // the same Failed-cell bytes the scalar loop produces.
            let marker = std::cell::Cell::new(start);
            match catch_unwind(AssertUnwindSafe(|| {
                crate::kernel::run_chunk(job, config, start, end, &marker)
            })) {
                Ok(output) => {
                    acc = output.acc;
                    detail = output.detail;
                    chunk_failure = output.failure;
                }
                Err(payload) => {
                    chunk_failure = Some((
                        marker.get(),
                        format!("panicked: {}", panic_message(&*payload)),
                    ));
                }
            }
        } else {
            for episode in start..end {
                let _span = oic_obs::span("engine.episode", "engine");
                let seed = episode_seed(config.seed, job.instance.name(), &job.label, episode);
                let inject_panic =
                    matches!(job.fault, CellFault::Panic { episode: e } if e == episode);
                let nan_step = match job.fault {
                    CellFault::Nan { episode: e, step } if e == episode => Some(step),
                    _ => None,
                };
                // The unwind boundary is what turns a panicking episode —
                // injected or genuine — into a Failed *cell* instead of an
                // aborted process. Everything captured is either read-only
                // or chunk-local, so observing it after an unwind is sound;
                // a partially-updated chunk accumulator is discarded with
                // the chunk anyway.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if inject_panic {
                        panic!("injected fault: worker panic at episode {episode}");
                    }
                    run_episode_opts(
                        &job.instance,
                        job.scenario,
                        &job.prepared,
                        episode,
                        config.steps,
                        config.memory,
                        seed,
                        EpisodeFaults {
                            dropout: Some(&job.dropout),
                            nan_step,
                        },
                    )
                }));
                match result {
                    Ok(Ok(record)) => {
                        acc.push(&record);
                        if config.detail {
                            detail.push(record);
                        }
                    }
                    Ok(Err(source)) => {
                        chunk_failure = Some((episode, source.to_string()));
                        break;
                    }
                    Err(payload) => {
                        chunk_failure =
                            Some((episode, format!("panicked: {}", panic_message(&*payload))));
                        break;
                    }
                }
            }
        }
        let wall_ns = chunk_started.elapsed().as_nanos() as u64;
        oic_obs::histogram!("engine.chunk_ns", "ns").record(wall_ns);
        if let Some((episode, reason)) = chunk_failure {
            let mut slot = failures[task.cell].lock().expect("failure slot");
            if slot
                .as_ref()
                .is_none_or(|(c, e, _)| (task.chunk, episode) < (*c, *e))
            {
                *slot = Some((task.chunk, episode, reason));
            }
        } else {
            let mut merge = merges[task.cell].lock().expect("cell merge lock");
            merge.submit(
                task.chunk,
                ChunkOutput {
                    acc,
                    detail,
                    wall_ns,
                },
            );
        }
        // Last chunk of the cell retired (merged *or* failed): finalize.
        // The AcqRel fetch_add orders this thread's view after every
        // sibling chunk's mutex release, so the finalizer reads complete
        // merge/failure state.
        if done[task.cell].fetch_add(1, Ordering::AcqRel) + 1 == chunks_per_cell {
            let failed = failures[task.cell].lock().expect("failure slot").take();
            let cell = match failed {
                Some((_chunk, episode, reason)) => {
                    cells_failed.fetch_add(1, Ordering::Relaxed);
                    oic_obs::counter!("engine.cells_failed", "cells").incr();
                    CellReport::failed(
                        job.instance.name(),
                        &job.label,
                        &job.dropout_label,
                        config.steps,
                        format!("episode {episode}: {reason}"),
                    )
                }
                None => {
                    let mut merge = merges[task.cell].lock().expect("cell merge lock");
                    let mut cell = CellReport::from_accumulator(
                        job.instance.name(),
                        &job.label,
                        config.steps,
                        &merge.acc,
                    );
                    cell.dropout = job.dropout_label.clone();
                    cell.episodes_detail = std::mem::take(&mut merge.detail);
                    drop(merge);
                    if let Some(cache) = cache {
                        // A full disk (or read-only cache dir) degrades
                        // the cache, not the sweep: the memory tier is
                        // already updated and the error carries no
                        // result data. Failed cells never get here.
                        let _ = cache.put(&job.hash, &cell);
                    }
                    cell
                }
            };
            if let Some(on_cell) = opts.on_cell {
                on_cell(g, &cell);
            }
            *slots[slot_idx].lock().expect("cell slot") = Some(cell);
        }
        true
    });

    // Wall-time accounting for the cells that actually ran; cached
    // cells report zero wall time (their episodes never executed) and
    // failed cells report only their completed chunks' time.
    let mut wall_by_slot: Vec<u64> = vec![0; owned.len()];
    for (&slot_idx, merge) in run.iter().zip(merges) {
        let merge = merge.into_inner().expect("workers joined");
        oic_obs::histogram!("engine.cell_ns", "ns").record(merge.wall_ns);
        wall_by_slot[slot_idx] = merge.wall_ns;
    }

    let mut cells = Vec::with_capacity(owned.len());
    let mut cell_timings = Vec::with_capacity(owned.len());
    for (slot_idx, slot) in slots.into_iter().enumerate() {
        let cell = slot
            .into_inner()
            .expect("workers joined")
            .expect("every owned cell completed or the sweep errored");
        cell_timings.push(CellTiming {
            scenario: cell.scenario.clone(),
            policy: cell.policy.clone(),
            episodes: cell.episodes,
            wall_ns: wall_by_slot[slot_idx],
        });
        cells.push(cell);
    }
    Ok((
        BatchReport {
            seed: config.seed,
            shard: opts.shard,
            cells,
        },
        SweepStats {
            steal,
            cells_skipped_incompatible,
            cells_from_cache,
            cells_failed: cells_failed.into_inner(),
            cell_timings,
        },
    ))
}

/// Renders a panic payload for a `Failed` cell's reason string. Panics
/// raised with a literal or a formatted message (the overwhelmingly
/// common cases) surface verbatim; anything else gets a stable
/// placeholder so reports stay deterministic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CellOutcome;
    use oic_scenarios::DoubleIntegratorScenario;

    fn tiny_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(DoubleIntegratorScenario));
        registry
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = episode_seed(1, "s", "p", 0);
        assert_eq!(a, episode_seed(1, "s", "p", 0));
        assert_ne!(a, episode_seed(1, "s", "p", 1));
        assert_ne!(a, episode_seed(2, "s", "p", 0));
        assert_ne!(episode_seed(1, "sp", "x", 0), episode_seed(1, "s", "px", 0));
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let registry = tiny_registry();
        let policies = [PolicySpec::BangBang, PolicySpec::Random(0.5)];
        let serial = BatchConfig {
            episodes: 12,
            steps: 40,
            threads: 1,
            ..Default::default()
        };
        let parallel = BatchConfig {
            episodes: 12,
            steps: 40,
            threads: 4,
            ..Default::default()
        };
        let a = run_batch(&registry, &policies, &serial).unwrap();
        let b = run_batch(&registry, &policies, &parallel).unwrap();
        assert_eq!(a, b, "thread count must not change results");
        assert_eq!(a.to_json(true).to_json(), b.to_json(true).to_json());
    }

    #[test]
    fn small_chunks_exercise_out_of_order_merge_deterministically() {
        // chunk 2 over 30 episodes → 15 chunks per cell: plenty of
        // out-of-order completion for the per-cell merge state to reorder.
        let registry = tiny_registry();
        let policies = [PolicySpec::Random(0.3)];
        let base = BatchConfig {
            episodes: 30,
            steps: 25,
            chunk: 2,
            detail: true,
            ..Default::default()
        };
        let serial = run_batch(
            &registry,
            &policies,
            &BatchConfig {
                threads: 1,
                ..base.clone()
            },
        )
        .unwrap();
        let parallel =
            run_batch(&registry, &policies, &BatchConfig { threads: 8, ..base }).unwrap();
        assert_eq!(serial, parallel);
        // Detail survives chunked streaming, in episode order.
        let detail = &serial.cells[0].episodes_detail;
        assert_eq!(detail.len(), 30);
        assert!(detail.windows(2).all(|w| w[0].episode + 1 == w[1].episode));
    }

    #[test]
    fn auto_chunk_size_ignores_thread_count() {
        for (episodes, expected) in [(1usize, 16), (100, 16), (5_000, 79), (1_000_000, 1024)] {
            let config = BatchConfig {
                episodes,
                ..Default::default()
            };
            assert_eq!(config.chunk_size(), expected, "episodes = {episodes}");
            let more_threads = BatchConfig {
                threads: 32,
                ..config
            };
            assert_eq!(more_threads.chunk_size(), expected);
        }
        let explicit = BatchConfig {
            episodes: 100,
            chunk: 7,
            ..Default::default()
        };
        assert_eq!(explicit.chunk_size(), 7);
    }

    #[test]
    fn worker_count_is_no_longer_capped_at_eight() {
        let config = BatchConfig {
            threads: 48,
            ..Default::default()
        };
        assert_eq!(config.worker_count(), 48, "explicit thread counts win");
        let auto = BatchConfig::default();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(auto.worker_count(), cores, "auto means every core");
    }

    #[test]
    fn scheduler_stats_cover_every_chunk() {
        let registry = tiny_registry();
        let config = BatchConfig {
            episodes: 40,
            steps: 10,
            chunk: 4,
            threads: 4,
            ..Default::default()
        };
        let (report, stats) =
            run_batch_with_stats(&registry, &[PolicySpec::BangBang], &config).unwrap();
        assert_eq!(report.cells[0].episodes, 40);
        assert_eq!(stats.steal.executed, 10, "40 episodes / chunk 4 = 10 tasks");
        assert!(stats.steal.workers >= 1 && stats.steal.workers <= 4);
        assert_eq!(stats.cells_skipped_incompatible, 0);
        assert_eq!(stats.cell_timings.len(), report.cells.len());
        let timing = &stats.cell_timings[0];
        assert_eq!(timing.scenario, report.cells[0].scenario);
        assert_eq!(timing.episodes, 40);
        assert!(timing.wall_ns > 0, "chunk timing is always collected");
    }

    #[test]
    fn sweep_stats_count_skipped_incompatible_cells() {
        use oic_scenarios::CstrScenario;
        let mut registry = tiny_registry();
        registry.register(Box::new(CstrScenario::default()));
        // Fits the 2-state double integrator, not the 3-state CSTR.
        let policies = [
            PolicySpec::AlwaysRun,
            PolicySpec::drl("di-only", test_blob(&[4, 6, 2], 3)),
        ];
        let config = BatchConfig {
            episodes: 2,
            steps: 10,
            ..Default::default()
        };
        let (report, stats) = run_batch_with_stats(&registry, &policies, &config).unwrap();
        assert_eq!(stats.cells_skipped_incompatible, 1, "cstr × drl-di-only");
        assert_eq!(report.cells.len(), 3);
        assert_eq!(stats.cell_timings.len(), 3);
    }

    #[test]
    fn different_seeds_differ() {
        let registry = tiny_registry();
        let policies = [PolicySpec::Random(0.5)];
        let c1 = BatchConfig {
            episodes: 4,
            steps: 30,
            seed: 1,
            detail: true,
            ..Default::default()
        };
        let c2 = BatchConfig {
            episodes: 4,
            steps: 30,
            seed: 2,
            detail: true,
            ..Default::default()
        };
        let a = run_batch(&registry, &policies, &c1).unwrap();
        let b = run_batch(&registry, &policies, &c2).unwrap();
        assert_ne!(a.cells[0].episodes_detail, b.cells[0].episodes_detail);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let registry = tiny_registry();
        let err = run_batch(&registry, &[], &BatchConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        let err = run_batch(
            &registry,
            &[PolicySpec::BangBang],
            &BatchConfig {
                episodes: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        let empty = ScenarioRegistry::new();
        let err = run_batch(&empty, &[PolicySpec::BangBang], &BatchConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn bad_policy_parameters_are_invalid_config_not_panics() {
        let registry = tiny_registry();
        for bad in [
            PolicySpec::Random(1.5),
            PolicySpec::Random(-0.1),
            PolicySpec::Periodic(0),
            PolicySpec::MaxSkip(0),
        ] {
            let err = run_batch(&registry, &[bad], &BatchConfig::default()).unwrap_err();
            assert!(matches!(err, EngineError::InvalidConfig(_)));
        }
    }

    #[test]
    fn detail_false_drops_episode_records() {
        let registry = tiny_registry();
        let config = BatchConfig {
            episodes: 3,
            steps: 20,
            detail: false,
            ..Default::default()
        };
        let report = run_batch(&registry, &[PolicySpec::BangBang], &config).unwrap();
        assert!(report.cells[0].episodes_detail.is_empty());
        assert_eq!(report.cells[0].episodes, 3, "aggregates survive the drop");
    }

    fn test_blob(sizes: &[usize], seed: u64) -> Vec<u8> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(sizes, oic_nn::Activation::Relu, &mut rng)
            .to_bytes()
            .to_vec()
    }

    #[test]
    fn random_labels_do_not_collide_at_three_decimals() {
        // Regression: `{p:.2}` rendered 0.001 and 0.004 as the same key.
        let a = PolicySpec::Random(0.001).label();
        let b = PolicySpec::Random(0.004).label();
        assert_ne!(a, b, "labels must distinguish close probabilities");
        assert_eq!(a, "random-0.001");
        // The committed BENCH_batch.json key is unchanged by the widening.
        assert_eq!(PolicySpec::Random(0.25).label(), "random-0.25");
    }

    #[test]
    fn duplicate_labels_are_deduplicated_in_reports() {
        let registry = tiny_registry();
        let policies = [
            PolicySpec::Random(0.3),
            PolicySpec::Random(0.3),
            PolicySpec::Random(0.3),
        ];
        let config = BatchConfig {
            episodes: 4,
            steps: 10,
            ..Default::default()
        };
        let report = run_batch(&registry, &policies, &config).unwrap();
        let keys: Vec<&str> = report.cells.iter().map(|c| c.policy.as_str()).collect();
        assert_eq!(keys, ["random-0.3", "random-0.3#2", "random-0.3#3"]);
        // The suffixed copies hash to different episode seeds, so the
        // cells are genuinely independent samples.
        assert_ne!(report.cells[0].mean_skip_rate, 0.0);
    }

    #[test]
    fn invalid_spec_errors_before_labels_are_suffixed() {
        // Roster validation must run before label de-duplication: a bad
        // spec sandwiched between duplicates fails the sweep instead of
        // being laundered behind a fresh `#k` report key.
        let registry = tiny_registry();
        let policies = [
            PolicySpec::Random(0.3),
            PolicySpec::Random(1.5),
            PolicySpec::Random(0.3),
        ];
        let config = BatchConfig {
            episodes: 2,
            steps: 5,
            ..Default::default()
        };
        let err = run_batch(&registry, &policies, &config).unwrap_err();
        assert!(
            matches!(err, EngineError::InvalidConfig(_)),
            "expected InvalidConfig, got {err}"
        );
    }

    #[test]
    fn explicit_suffix_labels_probe_past_collisions() {
        // A roster whose *explicit* labels already contain `#k` must not
        // collide with generated suffixes: the per-base counter probes
        // past taken suffixes exactly like the naive lowest-free scan.
        let registry = tiny_registry();
        let policies = [
            PolicySpec::drl("t", test_blob(&[4, 8, 2], 1)),
            PolicySpec::drl("t#2", test_blob(&[4, 8, 2], 2)),
            PolicySpec::drl("t", test_blob(&[4, 8, 2], 3)),
        ];
        let config = BatchConfig {
            episodes: 2,
            steps: 5,
            ..Default::default()
        };
        let report = run_batch(&registry, &policies, &config).unwrap();
        let keys: Vec<&str> = report.cells.iter().map(|c| c.policy.as_str()).collect();
        assert_eq!(keys, ["drl-t", "drl-t#2", "drl-t#3"]);
    }

    #[test]
    fn drl_cells_run_and_are_deterministic_across_threads() {
        let registry = tiny_registry();
        // Double integrator: 2 states + 1·2-dim disturbance history → 4.
        let policies = [
            PolicySpec::BangBang,
            PolicySpec::drl("test", test_blob(&[4, 8, 2], 7)),
        ];
        let run = |threads| {
            run_batch(
                &registry,
                &policies,
                &BatchConfig {
                    episodes: 16,
                    steps: 30,
                    threads,
                    chunk: 2,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel, "learned cells must stay thread-stable");
        assert_eq!(
            serial.to_json(true).to_json(),
            parallel.to_json(true).to_json()
        );
        assert_eq!(serial.cells.len(), 2);
        assert_eq!(serial.cells[1].policy, "drl-test");
        assert_eq!(serial.cells[1].safety_violations, 0, "Theorem 1");
    }

    #[test]
    fn reports_are_byte_identical_with_telemetry_enabled() {
        // The oic-obs invariant, exercised end to end: recording metrics
        // and spans must not perturb the deterministic report — at any
        // thread count, compared against a telemetry-off baseline.
        let registry = tiny_registry();
        let policies = [
            PolicySpec::BangBang,
            PolicySpec::drl("test", test_blob(&[4, 8, 2], 7)),
        ];
        let run = |threads| {
            run_batch(
                &registry,
                &policies,
                &BatchConfig {
                    episodes: 16,
                    steps: 30,
                    threads,
                    chunk: 2,
                    ..Default::default()
                },
            )
            .unwrap()
            .to_json(true)
            .to_json()
        };
        let baseline = run(1);
        oic_obs::set_metrics_enabled(true);
        oic_obs::set_trace_enabled(true);
        let telemetry_serial = run(1);
        let telemetry_parallel = run(8);
        oic_obs::set_metrics_enabled(false);
        oic_obs::set_trace_enabled(false);
        assert_eq!(
            baseline, telemetry_serial,
            "telemetry must stay off the result path"
        );
        assert_eq!(
            telemetry_serial, telemetry_parallel,
            "telemetry must stay thread-count-independent"
        );
    }

    #[test]
    fn incompatible_drl_cells_are_skipped_not_errors() {
        use oic_scenarios::CstrScenario;
        let mut registry = tiny_registry();
        registry.register(Box::new(CstrScenario::default()));
        // A 4-input network fits the 2-state double integrator but not the
        // 3-state CSTR (3 + r·3 ≠ 4 for any r ≥ 1).
        let policies = [
            PolicySpec::AlwaysRun,
            PolicySpec::drl("di-only", test_blob(&[4, 6, 2], 3)),
        ];
        let config = BatchConfig {
            episodes: 2,
            steps: 10,
            ..Default::default()
        };
        let report = run_batch(&registry, &policies, &config).unwrap();
        let cells: Vec<(String, String)> = report
            .cells
            .iter()
            .map(|c| (c.scenario.clone(), c.policy.clone()))
            .collect();
        assert!(cells.contains(&("double-integrator".into(), "drl-di-only".into())));
        assert!(
            !cells.iter().any(|(s, p)| s == "cstr" && p == "drl-di-only"),
            "incompatible cell must be omitted"
        );
        assert!(cells.contains(&("cstr".into(), "always-run".into())));
    }

    #[test]
    fn drl_spec_fitting_no_scenario_is_an_error_not_an_empty_row() {
        // 7 inputs fit no 2-state/2-disturbance plant (7 ≠ 2 + r·2).
        let registry = tiny_registry();
        let err = run_batch(
            &registry,
            &[
                PolicySpec::AlwaysRun,
                PolicySpec::drl("misfit", test_blob(&[7, 4, 2], 1)),
            ],
            &BatchConfig {
                episodes: 2,
                steps: 10,
                ..Default::default()
            },
        )
        .unwrap_err();
        match err {
            EngineError::Episode { context, source } => {
                assert_eq!(context, "drl-misfit/prepare");
                assert!(matches!(source, CoreError::Policy { .. }));
            }
            other => panic!("expected misfit error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_drl_blob_is_a_decode_error() {
        let registry = tiny_registry();
        let mut blob = test_blob(&[4, 6, 2], 3);
        blob.truncate(blob.len() - 5);
        let err = run_batch(
            &registry,
            &[PolicySpec::drl("broken", blob)],
            &BatchConfig::default(),
        )
        .unwrap_err();
        match err {
            EngineError::Episode { context, source } => {
                assert_eq!(context, "drl-broken/decode");
                assert!(matches!(source, CoreError::Policy { .. }));
            }
            other => panic!("expected decode error, got {other:?}"),
        }
        // An empty blob never reaches decode: validate() rejects it.
        let err = run_batch(
            &registry,
            &[PolicySpec::drl("empty", Vec::new())],
            &BatchConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn injected_panics_degrade_to_failed_cells_not_aborts() {
        let registry = tiny_registry();
        let policies = [PolicySpec::AlwaysRun, PolicySpec::BangBang];
        let plan = FaultPlan {
            seed: 3,
            panic_rate: 1.0,
            nan_rate: 0.0,
        };
        let config = BatchConfig {
            episodes: 6,
            steps: 20,
            chunk: 2,
            ..Default::default()
        };
        let opts = SweepOptions {
            faults: Some(&plan),
            ..Default::default()
        };
        let (report, stats) = run_batch_opts(&registry, &policies, &config, &opts).unwrap();
        assert_eq!(report.cells.len(), 2, "every cell reports, failed or not");
        let failed: Vec<&CellReport> = report.cells.iter().filter(|c| c.is_failed()).collect();
        assert_eq!(stats.cells_failed, failed.len());
        assert_eq!(failed.len(), 2, "a rate-1.0 plan fails every cell");
        for cell in &failed {
            match &cell.outcome {
                CellOutcome::Failed { reason } => {
                    assert!(reason.contains("panicked"), "{reason}");
                    assert!(reason.starts_with("episode "), "{reason}");
                }
                CellOutcome::Ok => unreachable!(),
            }
        }
    }

    #[test]
    fn faulted_sweeps_are_byte_identical_across_thread_counts() {
        let registry = tiny_registry();
        let policies = [
            PolicySpec::AlwaysRun,
            PolicySpec::BangBang,
            PolicySpec::Random(0.5),
        ];
        let plan = FaultPlan {
            seed: 11,
            panic_rate: 0.4,
            nan_rate: 0.3,
        };
        let dropouts = [
            DropoutSpec::None,
            DropoutSpec::WeaklyHard { m: 1, k: 5 },
            DropoutSpec::Bernoulli { p: 0.2 },
        ];
        let run_with = |threads: usize| {
            let config = BatchConfig {
                episodes: 10,
                steps: 30,
                threads,
                chunk: 3,
                ..Default::default()
            };
            let opts = SweepOptions {
                faults: Some(&plan),
                dropouts: Some(&dropouts),
                ..Default::default()
            };
            let (report, _) = run_batch_opts(&registry, &policies, &config, &opts).unwrap();
            report.to_json(false).to_json_pretty()
        };
        let serial = run_with(1);
        let parallel = run_with(8);
        assert_eq!(serial, parallel, "faults must not break determinism");
        assert!(serial.contains("\"outcome\": \"failed\""), "{serial}");
        assert!(serial.contains("forced_skips"), "{serial}");
    }

    #[test]
    fn nan_faults_surface_as_non_finite_failures() {
        let registry = tiny_registry();
        let plan = FaultPlan {
            seed: 5,
            panic_rate: 0.0,
            nan_rate: 1.0,
        };
        let config = BatchConfig {
            episodes: 3,
            steps: 20,
            ..Default::default()
        };
        let opts = SweepOptions {
            faults: Some(&plan),
            ..Default::default()
        };
        let (report, stats) =
            run_batch_opts(&registry, &[PolicySpec::AlwaysRun], &config, &opts).unwrap();
        assert_eq!(stats.cells_failed, 1);
        match &report.cells[0].outcome {
            CellOutcome::Failed { reason } => {
                assert!(reason.contains("non-finite"), "{reason}");
            }
            CellOutcome::Ok => panic!("rate-1.0 NaN plan must fail the cell"),
        }
    }

    #[test]
    fn faulted_cells_bypass_the_cache_both_ways() {
        let registry = tiny_registry();
        let cache = CellCache::in_memory();
        let config = BatchConfig {
            episodes: 3,
            steps: 15,
            ..Default::default()
        };
        // A clean run populates the cache for this cell hash.
        let clean = SweepOptions {
            cache: Some(&cache),
            ..Default::default()
        };
        let (clean_report, _) =
            run_batch_opts(&registry, &[PolicySpec::BangBang], &config, &clean).unwrap();
        assert_eq!(cache.stats().stores, 1);
        // A faulted run must not be answered from (or stored into) the
        // cache: the plan is deliberately not part of the cell hash.
        let plan = FaultPlan {
            seed: 2,
            panic_rate: 1.0,
            nan_rate: 0.0,
        };
        let faulted = SweepOptions {
            cache: Some(&cache),
            faults: Some(&plan),
            ..Default::default()
        };
        let (faulted_report, stats) =
            run_batch_opts(&registry, &[PolicySpec::BangBang], &config, &faulted).unwrap();
        assert_eq!(stats.cells_from_cache, 0, "fault plans bypass cache reads");
        assert!(faulted_report.cells[0].is_failed());
        assert_eq!(cache.stats().stores, 1, "failed cells are never stored");
        // The cached clean result is still intact for fault-free runs.
        let (again, stats) =
            run_batch_opts(&registry, &[PolicySpec::BangBang], &config, &clean).unwrap();
        assert_eq!(stats.cells_from_cache, 1);
        assert_eq!(again, clean_report);
    }

    #[test]
    fn dropout_variants_share_seeds_and_tally_forced_skips() {
        let registry = tiny_registry();
        let dropouts = [DropoutSpec::None, DropoutSpec::WeaklyHard { m: 1, k: 4 }];
        let config = BatchConfig {
            episodes: 4,
            steps: 40,
            detail: true,
            ..Default::default()
        };
        let opts = SweepOptions {
            dropouts: Some(&dropouts),
            ..Default::default()
        };
        let (report, _) =
            run_batch_opts(&registry, &[PolicySpec::AlwaysRun], &config, &opts).unwrap();
        assert_eq!(report.cells.len(), 2);
        let (none, mk) = (&report.cells[0], &report.cells[1]);
        assert_eq!(none.dropout, "none");
        assert_eq!(mk.dropout, "mk-1-4");
        assert_eq!(none.forced_skips, 0, "no dropout, no forced skips");
        // always-run never skips voluntarily, so every dropped step of
        // the (1,4) pattern forces a skip: 40 steps / window 4 × 4
        // episodes = 40 forced skips.
        assert_eq!(mk.forced_skips, 40);
        // Episode seeds are shared across variants — the dropout axis
        // never reshuffles the randomness it is compared against.
        for (a, b) in none.episodes_detail.iter().zip(mk.episodes_detail.iter()) {
            assert_eq!(a.seed, b.seed, "episode {} seed", a.episode);
        }
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = [
            PolicySpec::AlwaysRun,
            PolicySpec::BangBang,
            PolicySpec::Periodic(4),
            PolicySpec::Random(0.25),
            PolicySpec::MaxSkip(2),
            PolicySpec::drl("golden-acc", vec![1u8]),
        ]
        .iter()
        .map(PolicySpec::label)
        .collect();
        let mut deduped = labels.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len());
    }
}
