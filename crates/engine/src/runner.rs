//! The parallel batch runner.
//!
//! Episodes are independent, so the runner shards them across OS threads
//! with `std::thread::scope`. Determinism is preserved by construction:
//! every episode derives its own seed from `(base seed, scenario, policy,
//! episode index)` via a stable hash, workers return `(index, record)`
//! pairs, and aggregation happens in index order after the join — so the
//! report is identical for any thread count, including 1.

use std::collections::VecDeque;
use std::sync::Mutex;

use oic_core::skip_horizon::MaxSkipPolicy;
use oic_core::{
    AlwaysRunPolicy, BangBangPolicy, CoreError, PeriodicSkipPolicy, RandomPolicy, SafeSets,
    SkipPolicy,
};
use oic_scenarios::{Scenario, ScenarioInstance, ScenarioRegistry};

use crate::report::{BatchReport, CellReport, EpisodeRecord};

/// Errors surfaced by the batch engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The configuration is unusable (zero episodes/steps, no policies…).
    InvalidConfig(&'static str),
    /// A scenario failed to build or an episode failed; the context names
    /// the scenario/policy/episode.
    Episode {
        /// `scenario/policy#episode` context string.
        context: String,
        /// The underlying failure.
        source: CoreError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(what) => write!(f, "invalid batch config: {what}"),
            EngineError::Episode { context, source } => {
                write!(f, "batch failed at {context}: {source}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A skipping policy the engine can instantiate per episode.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Never skip (the RMPC-only style baseline).
    AlwaysRun,
    /// Always skip inside `X′` (paper Eq. (7)).
    BangBang,
    /// Run once every `period` decisions.
    Periodic(usize),
    /// Skip with the given probability (adversarial stressor).
    Random(f64),
    /// Weakly-hard deadline policy with the given consecutive-skip budget.
    MaxSkip(usize),
}

impl PolicySpec {
    /// Display label (doubles as the JSON key).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::AlwaysRun => "always-run".to_string(),
            PolicySpec::BangBang => "bang-bang".to_string(),
            PolicySpec::Periodic(k) => format!("periodic-{k}"),
            PolicySpec::Random(p) => format!("random-{p:.2}"),
            PolicySpec::MaxSkip(b) => format!("max-skip-{b}"),
        }
    }

    /// Checks the spec's parameters without needing a scenario.
    ///
    /// # Errors
    ///
    /// Names the offending parameter (the constructors would otherwise
    /// panic inside a worker thread, bypassing [`EngineError`]).
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            PolicySpec::Random(p) if !(0.0..=1.0).contains(p) => {
                Err("random policy probability must be in [0, 1]")
            }
            PolicySpec::Periodic(0) => Err("periodic policy period must be at least 1"),
            PolicySpec::MaxSkip(0) => Err("max-skip budget must be at least 1"),
            _ => Ok(()),
        }
    }

    /// Precomputes whatever the policy needs for one scenario (e.g. the
    /// consecutive-skip chain), so per-episode instantiation is cheap.
    ///
    /// # Errors
    ///
    /// Propagates chain-synthesis failures for [`PolicySpec::MaxSkip`].
    pub fn prepare(&self, sets: &SafeSets) -> Result<PreparedPolicy, CoreError> {
        Ok(match self {
            PolicySpec::MaxSkip(budget) => {
                PreparedPolicy::MaxSkip(MaxSkipPolicy::new(sets, *budget)?)
            }
            other => PreparedPolicy::Spec(other.clone()),
        })
    }
}

/// A policy prototype bound to one scenario.
#[derive(Debug, Clone)]
pub enum PreparedPolicy {
    /// Stateless or per-episode-seeded policies.
    Spec(PolicySpec),
    /// The precomputed weakly-hard policy (chain synthesis is expensive).
    MaxSkip(MaxSkipPolicy),
}

impl PreparedPolicy {
    /// Instantiates the policy for one episode.
    pub fn for_episode(&self, seed: u64) -> Box<dyn SkipPolicy> {
        match self {
            PreparedPolicy::Spec(PolicySpec::AlwaysRun) => Box::new(AlwaysRunPolicy),
            PreparedPolicy::Spec(PolicySpec::BangBang) => Box::new(BangBangPolicy),
            PreparedPolicy::Spec(PolicySpec::Periodic(k)) => Box::new(PeriodicSkipPolicy::new(*k)),
            PreparedPolicy::Spec(PolicySpec::Random(p)) => Box::new(RandomPolicy::new(*p, seed)),
            PreparedPolicy::Spec(PolicySpec::MaxSkip(_)) => {
                unreachable!("prepare() replaces MaxSkip with the built policy")
            }
            PreparedPolicy::MaxSkip(policy) => Box::new(policy.clone()),
        }
    }
}

/// Batch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Episodes per (scenario, policy) cell.
    pub episodes: usize,
    /// Steps per episode.
    pub steps: usize,
    /// Base seed; all per-episode seeds derive from it.
    pub seed: u64,
    /// Disturbance-history window handed to policies (`r`).
    pub memory: usize,
    /// Worker threads (0 = one per available CPU, capped at 8).
    pub threads: usize,
    /// Keep per-episode records in the report (`false` drops them after
    /// aggregation to bound memory on large sweeps).
    pub detail: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            episodes: 100,
            steps: 100,
            seed: 2020,
            memory: 1,
            threads: 0,
            detail: false,
        }
    }
}

impl BatchConfig {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        }
    }
}

/// Stable seed derivation (FNV-1a over the identifying tuple).
pub fn episode_seed(base: u64, scenario: &str, policy: &str, episode: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&base.to_le_bytes());
    eat(scenario.as_bytes());
    eat(&[0xFF]);
    eat(policy.as_bytes());
    eat(&(episode as u64).to_le_bytes());
    hash
}

/// Runs one episode against a prebuilt scenario instance.
///
/// The engine owns the plant stepping (`x⁺ = Ax + Bu + w`), so episodes
/// are exact closed-loop rollouts of the model the certificates cover.
///
/// # Errors
///
/// Propagates runtime failures ([`CoreError::OutsideInvariant`] can only
/// happen if a disturbance process escapes `W` — a scenario bug).
pub fn run_episode(
    instance: &ScenarioInstance,
    scenario: &dyn Scenario,
    prepared: &PreparedPolicy,
    episode: usize,
    steps: usize,
    memory: usize,
    seed: u64,
) -> Result<EpisodeRecord, CoreError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let x0 = instance.sample_initial_state(&mut rng);
    let mut process = scenario.disturbance_process(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut runtime = instance.runtime(prepared.for_episode(seed), memory);
    let sys = instance.sets().plant().system().clone();
    let safe = instance.sets().safe();
    let invariant = instance.sets().invariant();

    let mut x = x0;
    let mut safety_violations = 0usize;
    let mut invariant_violations = 0usize;
    let mut min_safe_slack = f64::INFINITY;
    for t in 0..steps {
        min_safe_slack = min_safe_slack.min(safe.min_slack(&x));
        if !safe.contains_with_tol(&x, 1e-6) {
            safety_violations += 1;
        }
        if !invariant.contains_with_tol(&x, 1e-6) {
            invariant_violations += 1;
        }
        let decision = runtime.step(&x, &[])?;
        let w = process.next(t);
        x = sys.step(&x, &decision.input, &w);
    }
    // The final post-step state has no control decision after it but is
    // still a trajectory point Theorem 1 speaks about — tally it too.
    min_safe_slack = min_safe_slack.min(safe.min_slack(&x));
    if !safe.contains_with_tol(&x, 1e-6) {
        safety_violations += 1;
    }
    if !invariant.contains_with_tol(&x, 1e-6) {
        invariant_violations += 1;
    }

    Ok(EpisodeRecord {
        episode,
        seed,
        stats: runtime.stats().clone(),
        safety_violations,
        invariant_violations,
        min_safe_slack,
    })
}

/// Runs the full batch: every scenario × every policy × `episodes`
/// episodes, sharded across worker threads.
///
/// # Errors
///
/// * [`EngineError::InvalidConfig`] on empty configurations.
/// * [`EngineError::Episode`] naming the first failing cell.
pub fn run_batch(
    registry: &ScenarioRegistry,
    policies: &[PolicySpec],
    config: &BatchConfig,
) -> Result<BatchReport, EngineError> {
    if registry.is_empty() {
        return Err(EngineError::InvalidConfig("no scenarios registered"));
    }
    if policies.is_empty() {
        return Err(EngineError::InvalidConfig("no policies given"));
    }
    if config.episodes == 0 || config.steps == 0 {
        return Err(EngineError::InvalidConfig(
            "episodes and steps must be positive",
        ));
    }
    for policy in policies {
        policy.validate().map_err(EngineError::InvalidConfig)?;
    }

    let mut cells = Vec::new();
    for scenario in registry.iter() {
        let instance = scenario.build().map_err(|source| EngineError::Episode {
            context: format!("{}/build", scenario.name()),
            source,
        })?;
        for policy in policies {
            let prepared =
                policy
                    .prepare(instance.sets())
                    .map_err(|source| EngineError::Episode {
                        context: format!("{}/{}/prepare", scenario.name(), policy.label()),
                        source,
                    })?;
            let records = run_cell(&instance, scenario, policy, &prepared, config)?;
            let mut cell =
                CellReport::from_episodes(scenario.name(), &policy.label(), config.steps, records);
            if !config.detail {
                cell.episodes_detail = Vec::new();
            }
            cells.push(cell);
        }
    }
    Ok(BatchReport {
        seed: config.seed,
        cells,
    })
}

fn run_cell(
    instance: &ScenarioInstance,
    scenario: &dyn Scenario,
    policy: &PolicySpec,
    prepared: &PreparedPolicy,
    config: &BatchConfig,
) -> Result<Vec<EpisodeRecord>, EngineError> {
    let label = policy.label();
    let workers = config.worker_count().min(config.episodes).max(1);
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..config.episodes).collect());
    let results: Mutex<Vec<(usize, Result<EpisodeRecord, CoreError>)>> =
        Mutex::new(Vec::with_capacity(config.episodes));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(episode) = queue.lock().expect("queue lock").pop_front() else {
                    return;
                };
                let seed = episode_seed(config.seed, instance.name(), &label, episode);
                let outcome = run_episode(
                    instance,
                    scenario,
                    prepared,
                    episode,
                    config.steps,
                    config.memory,
                    seed,
                );
                results
                    .lock()
                    .expect("results lock")
                    .push((episode, outcome));
            });
        }
    });

    let mut indexed = results.into_inner().expect("threads joined");
    indexed.sort_by_key(|(episode, _)| *episode);
    let mut records = Vec::with_capacity(indexed.len());
    for (episode, outcome) in indexed {
        let record = outcome.map_err(|source| EngineError::Episode {
            context: format!("{}/{}#{}", instance.name(), label, episode),
            source,
        })?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_scenarios::DoubleIntegratorScenario;

    fn tiny_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(DoubleIntegratorScenario));
        registry
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = episode_seed(1, "s", "p", 0);
        assert_eq!(a, episode_seed(1, "s", "p", 0));
        assert_ne!(a, episode_seed(1, "s", "p", 1));
        assert_ne!(a, episode_seed(2, "s", "p", 0));
        assert_ne!(episode_seed(1, "sp", "x", 0), episode_seed(1, "s", "px", 0));
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let registry = tiny_registry();
        let policies = [PolicySpec::BangBang, PolicySpec::Random(0.5)];
        let serial = BatchConfig {
            episodes: 12,
            steps: 40,
            threads: 1,
            ..Default::default()
        };
        let parallel = BatchConfig {
            episodes: 12,
            steps: 40,
            threads: 4,
            ..Default::default()
        };
        let a = run_batch(&registry, &policies, &serial).unwrap();
        let b = run_batch(&registry, &policies, &parallel).unwrap();
        assert_eq!(a, b, "thread count must not change results");
        assert_eq!(a.to_json(true).to_json(), b.to_json(true).to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let registry = tiny_registry();
        let policies = [PolicySpec::Random(0.5)];
        let c1 = BatchConfig {
            episodes: 4,
            steps: 30,
            seed: 1,
            detail: true,
            ..Default::default()
        };
        let c2 = BatchConfig {
            episodes: 4,
            steps: 30,
            seed: 2,
            detail: true,
            ..Default::default()
        };
        let a = run_batch(&registry, &policies, &c1).unwrap();
        let b = run_batch(&registry, &policies, &c2).unwrap();
        assert_ne!(a.cells[0].episodes_detail, b.cells[0].episodes_detail);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let registry = tiny_registry();
        let err = run_batch(&registry, &[], &BatchConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        let err = run_batch(
            &registry,
            &[PolicySpec::BangBang],
            &BatchConfig {
                episodes: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        let empty = ScenarioRegistry::new();
        let err = run_batch(&empty, &[PolicySpec::BangBang], &BatchConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn bad_policy_parameters_are_invalid_config_not_panics() {
        let registry = tiny_registry();
        for bad in [
            PolicySpec::Random(1.5),
            PolicySpec::Random(-0.1),
            PolicySpec::Periodic(0),
            PolicySpec::MaxSkip(0),
        ] {
            let err = run_batch(&registry, &[bad], &BatchConfig::default()).unwrap_err();
            assert!(matches!(err, EngineError::InvalidConfig(_)));
        }
    }

    #[test]
    fn detail_false_drops_episode_records() {
        let registry = tiny_registry();
        let config = BatchConfig {
            episodes: 3,
            steps: 20,
            detail: false,
            ..Default::default()
        };
        let report = run_batch(&registry, &[PolicySpec::BangBang], &config).unwrap();
        assert!(report.cells[0].episodes_detail.is_empty());
        assert_eq!(report.cells[0].episodes, 3, "aggregates survive the drop");
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = [
            PolicySpec::AlwaysRun,
            PolicySpec::BangBang,
            PolicySpec::Periodic(4),
            PolicySpec::Random(0.25),
            PolicySpec::MaxSkip(2),
        ]
        .iter()
        .map(PolicySpec::label)
        .collect();
        let mut deduped = labels.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len());
    }
}
