//! The parallel batch runner.
//!
//! The unit of scheduling is the `(scenario, policy, episode-chunk)`
//! task: one work-stealing pool (global injector + per-worker deques,
//! see [`crate::steal`]) drains chunks from *all* cells concurrently, so
//! a slow tube-MPC cell no longer serializes the sweep behind it.
//! Each chunk folds its episodes into a [`CellAccumulator`] as they
//! finish and the per-cell merge state combines chunk accumulators in
//! ascending chunk order — memory is O(cells), not O(episodes).
//!
//! Determinism is preserved by construction: every episode derives its
//! own seed from `(base seed, scenario, policy, episode index)` via a
//! stable hash, chunk boundaries depend only on the configuration (never
//! the thread count), and chunks merge in index order — so the report is
//! byte-identical for any worker count, including 1.

use std::collections::BTreeMap;
use std::sync::Mutex;

use oic_core::skip_horizon::MaxSkipPolicy;
use oic_core::{
    AlwaysRunPolicy, BangBangPolicy, CoreError, PeriodicSkipPolicy, RandomPolicy, SafeSets,
    SkipPolicy,
};
use oic_scenarios::{Scenario, ScenarioInstance, ScenarioRegistry};

use crate::accumulator::CellAccumulator;
use crate::report::{BatchReport, CellReport, EpisodeRecord};
use crate::steal::{run_work_stealing, StealStats};

/// Errors surfaced by the batch engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The configuration is unusable (zero episodes/steps, no policies…).
    InvalidConfig(&'static str),
    /// A scenario failed to build or an episode failed; the context names
    /// the scenario/policy/episode.
    Episode {
        /// `scenario/policy#episode` context string.
        context: String,
        /// The underlying failure.
        source: CoreError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(what) => write!(f, "invalid batch config: {what}"),
            EngineError::Episode { context, source } => {
                write!(f, "batch failed at {context}: {source}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A skipping policy the engine can instantiate per episode.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Never skip (the RMPC-only style baseline).
    AlwaysRun,
    /// Always skip inside `X′` (paper Eq. (7)).
    BangBang,
    /// Run once every `period` decisions.
    Periodic(usize),
    /// Skip with the given probability (adversarial stressor).
    Random(f64),
    /// Weakly-hard deadline policy with the given consecutive-skip budget.
    MaxSkip(usize),
}

impl PolicySpec {
    /// Display label (doubles as the JSON key).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::AlwaysRun => "always-run".to_string(),
            PolicySpec::BangBang => "bang-bang".to_string(),
            PolicySpec::Periodic(k) => format!("periodic-{k}"),
            PolicySpec::Random(p) => format!("random-{p:.2}"),
            PolicySpec::MaxSkip(b) => format!("max-skip-{b}"),
        }
    }

    /// Checks the spec's parameters without needing a scenario.
    ///
    /// # Errors
    ///
    /// Names the offending parameter (the constructors would otherwise
    /// panic inside a worker thread, bypassing [`EngineError`]).
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            PolicySpec::Random(p) if !(0.0..=1.0).contains(p) => {
                Err("random policy probability must be in [0, 1]")
            }
            PolicySpec::Periodic(0) => Err("periodic policy period must be at least 1"),
            PolicySpec::MaxSkip(0) => Err("max-skip budget must be at least 1"),
            _ => Ok(()),
        }
    }

    /// Precomputes whatever the policy needs for one scenario (e.g. the
    /// consecutive-skip chain), so per-episode instantiation is cheap.
    ///
    /// # Errors
    ///
    /// Propagates chain-synthesis failures for [`PolicySpec::MaxSkip`].
    pub fn prepare(&self, sets: &SafeSets) -> Result<PreparedPolicy, CoreError> {
        Ok(match self {
            PolicySpec::MaxSkip(budget) => {
                PreparedPolicy::MaxSkip(MaxSkipPolicy::new(sets, *budget)?)
            }
            other => PreparedPolicy::Spec(other.clone()),
        })
    }
}

/// A policy prototype bound to one scenario.
#[derive(Debug, Clone)]
pub enum PreparedPolicy {
    /// Stateless or per-episode-seeded policies.
    Spec(PolicySpec),
    /// The precomputed weakly-hard policy (chain synthesis is expensive).
    MaxSkip(MaxSkipPolicy),
}

impl PreparedPolicy {
    /// Instantiates the policy for one episode.
    pub fn for_episode(&self, seed: u64) -> Box<dyn SkipPolicy> {
        match self {
            PreparedPolicy::Spec(PolicySpec::AlwaysRun) => Box::new(AlwaysRunPolicy),
            PreparedPolicy::Spec(PolicySpec::BangBang) => Box::new(BangBangPolicy),
            PreparedPolicy::Spec(PolicySpec::Periodic(k)) => Box::new(PeriodicSkipPolicy::new(*k)),
            PreparedPolicy::Spec(PolicySpec::Random(p)) => Box::new(RandomPolicy::new(*p, seed)),
            PreparedPolicy::Spec(PolicySpec::MaxSkip(_)) => {
                unreachable!("prepare() replaces MaxSkip with the built policy")
            }
            PreparedPolicy::MaxSkip(policy) => Box::new(policy.clone()),
        }
    }
}

/// Batch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Episodes per (scenario, policy) cell.
    pub episodes: usize,
    /// Steps per episode.
    pub steps: usize,
    /// Base seed; all per-episode seeds derive from it.
    pub seed: u64,
    /// Disturbance-history window handed to policies (`r`).
    pub memory: usize,
    /// Worker threads. `0` (the default) uses one worker per available
    /// CPU — the full `available_parallelism()`, uncapped; earlier
    /// versions silently clamped this to 8, which starved large hosts.
    pub threads: usize,
    /// Episodes per work-stealing task. `0` (the default) picks
    /// `ceil(episodes / 64)` clamped to `[16, 1024]` — a pure function of
    /// the episode count, *never* of the thread count, because chunk
    /// boundaries shape the floating-point merge tree and must not change
    /// between `--threads 1` and `--threads N`.
    pub chunk: usize,
    /// Keep per-episode records in the report (`false`, the default,
    /// streams records into the accumulator and drops them — memory stays
    /// O(cells) no matter how many episodes run).
    pub detail: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            episodes: 100,
            steps: 100,
            seed: 2020,
            memory: 1,
            threads: 0,
            chunk: 0,
            detail: false,
        }
    }
}

impl BatchConfig {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Episodes per scheduling task (deterministic: depends on the
    /// configured chunk size and episode count only).
    pub fn chunk_size(&self) -> usize {
        if self.chunk > 0 {
            self.chunk
        } else {
            self.episodes.div_ceil(64).clamp(16, 1024)
        }
    }
}

/// Stable seed derivation (FNV-1a over the identifying tuple).
pub fn episode_seed(base: u64, scenario: &str, policy: &str, episode: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&base.to_le_bytes());
    eat(scenario.as_bytes());
    eat(&[0xFF]);
    eat(policy.as_bytes());
    eat(&(episode as u64).to_le_bytes());
    hash
}

/// Runs one episode against a prebuilt scenario instance.
///
/// The engine owns the plant stepping (`x⁺ = Ax + Bu + w`), so episodes
/// are exact closed-loop rollouts of the model the certificates cover.
///
/// # Errors
///
/// Propagates runtime failures ([`CoreError::OutsideInvariant`] can only
/// happen if a disturbance process escapes `W` — a scenario bug).
pub fn run_episode(
    instance: &ScenarioInstance,
    scenario: &dyn Scenario,
    prepared: &PreparedPolicy,
    episode: usize,
    steps: usize,
    memory: usize,
    seed: u64,
) -> Result<EpisodeRecord, CoreError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let x0 = instance.sample_initial_state(&mut rng);
    let mut process = scenario.disturbance_process(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut runtime = instance.runtime(prepared.for_episode(seed), memory);
    let sys = instance.sets().plant().system().clone();
    let safe = instance.sets().safe();
    let invariant = instance.sets().invariant();

    let mut x = x0;
    let mut safety_violations = 0usize;
    let mut invariant_violations = 0usize;
    let mut min_safe_slack = f64::INFINITY;
    for t in 0..steps {
        min_safe_slack = min_safe_slack.min(safe.min_slack(&x));
        if !safe.contains_with_tol(&x, 1e-6) {
            safety_violations += 1;
        }
        if !invariant.contains_with_tol(&x, 1e-6) {
            invariant_violations += 1;
        }
        let decision = runtime.step(&x, &[])?;
        let w = process.next(t);
        x = sys.step(&x, &decision.input, &w);
    }
    // The final post-step state has no control decision after it but is
    // still a trajectory point Theorem 1 speaks about — tally it too.
    min_safe_slack = min_safe_slack.min(safe.min_slack(&x));
    if !safe.contains_with_tol(&x, 1e-6) {
        safety_violations += 1;
    }
    if !invariant.contains_with_tol(&x, 1e-6) {
        invariant_violations += 1;
    }

    Ok(EpisodeRecord {
        episode,
        seed,
        stats: runtime.stats().clone(),
        safety_violations,
        invariant_violations,
        min_safe_slack,
    })
}

/// One fully prepared (scenario, policy) cell, shared read-only by all
/// workers.
struct CellJob<'a> {
    scenario: &'a dyn Scenario,
    instance: ScenarioInstance,
    prepared: PreparedPolicy,
    label: String,
}

/// The scheduling unit: one episode chunk of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ChunkTask {
    cell: usize,
    chunk: usize,
}

/// The streamed output of one chunk.
struct ChunkOutput {
    acc: CellAccumulator,
    detail: Vec<EpisodeRecord>,
}

/// Per-cell streaming merge state: chunk accumulators are folded into
/// `acc` strictly in ascending chunk order; finished-out-of-order chunks
/// park in `pending` until their turn. Entries are constant-size in
/// stream mode, so even the worst case — a stalled early chunk parking
/// every later chunk of its cell, up to (chunks per cell − 1) entries —
/// keeps streamed sweeps O(cells) in *records*; typically `pending`
/// holds only the few chunks in flight on other workers.
struct CellMerge {
    next: usize,
    acc: CellAccumulator,
    pending: BTreeMap<usize, ChunkOutput>,
    detail: Vec<EpisodeRecord>,
}

impl CellMerge {
    fn new() -> Self {
        Self {
            next: 0,
            acc: CellAccumulator::new(),
            pending: BTreeMap::new(),
            detail: Vec::new(),
        }
    }

    fn submit(&mut self, chunk: usize, output: ChunkOutput) {
        self.pending.insert(chunk, output);
        while let Some(output) = self.pending.remove(&self.next) {
            self.acc.merge(&output.acc);
            self.detail.extend(output.detail);
            self.next += 1;
        }
    }
}

/// Runs the full batch: every scenario × every policy × `episodes`
/// episodes, chunked and drained by one work-stealing pool across all
/// cells at once.
///
/// # Errors
///
/// * [`EngineError::InvalidConfig`] on empty configurations.
/// * [`EngineError::Episode`] naming a failing cell. When several chunks
///   fail before the cooperative abort lands, the lowest-indexed failure
///   *observed* is reported; which failures race in at all can vary with
///   thread interleaving (the successful-report contract is the
///   deterministic one — errors indicate a broken scenario either way).
pub fn run_batch(
    registry: &ScenarioRegistry,
    policies: &[PolicySpec],
    config: &BatchConfig,
) -> Result<BatchReport, EngineError> {
    run_batch_with_stats(registry, policies, config).map(|(report, _)| report)
}

/// [`run_batch`] plus the scheduler's [`StealStats`] (task counts, steal
/// counts — wall-clock diagnostics that deliberately stay out of the
/// deterministic report).
///
/// # Errors
///
/// Same contract as [`run_batch`].
pub fn run_batch_with_stats(
    registry: &ScenarioRegistry,
    policies: &[PolicySpec],
    config: &BatchConfig,
) -> Result<(BatchReport, StealStats), EngineError> {
    if registry.is_empty() {
        return Err(EngineError::InvalidConfig("no scenarios registered"));
    }
    if policies.is_empty() {
        return Err(EngineError::InvalidConfig("no policies given"));
    }
    if config.episodes == 0 || config.steps == 0 {
        return Err(EngineError::InvalidConfig(
            "episodes and steps must be positive",
        ));
    }
    for policy in policies {
        policy.validate().map_err(EngineError::InvalidConfig)?;
    }

    // Build every cell up front (instance construction — invariant-set
    // synthesis — is the expensive, non-parallel part and is shared by
    // all of the cell's chunks).
    let mut jobs = Vec::with_capacity(registry.len() * policies.len());
    for scenario in registry.iter() {
        let instance = scenario.build().map_err(|source| EngineError::Episode {
            context: format!("{}/build", scenario.name()),
            source,
        })?;
        for policy in policies {
            let prepared =
                policy
                    .prepare(instance.sets())
                    .map_err(|source| EngineError::Episode {
                        context: format!("{}/{}/prepare", scenario.name(), policy.label()),
                        source,
                    })?;
            jobs.push(CellJob {
                scenario,
                instance: instance.clone(),
                prepared,
                label: policy.label(),
            });
        }
    }

    let chunk_size = config.chunk_size();
    let chunks_per_cell = config.episodes.div_ceil(chunk_size);
    let mut tasks = Vec::with_capacity(jobs.len() * chunks_per_cell);
    for cell in 0..jobs.len() {
        for chunk in 0..chunks_per_cell {
            tasks.push(ChunkTask { cell, chunk });
        }
    }

    let merges: Vec<Mutex<CellMerge>> = jobs.iter().map(|_| Mutex::new(CellMerge::new())).collect();
    // Lowest (cell, chunk, episode) failure among those observed before
    // the abort landed (the abort is cooperative, so the observed set —
    // not the selection rule — can vary with interleaving).
    let failure: Mutex<Option<(ChunkTask, usize, CoreError)>> = Mutex::new(None);

    let stats = run_work_stealing(tasks, config.worker_count(), |_, task: ChunkTask| {
        let job = &jobs[task.cell];
        let start = task.chunk * chunk_size;
        let end = (start + chunk_size).min(config.episodes);
        let mut acc = CellAccumulator::new();
        let mut detail = Vec::with_capacity(if config.detail { end - start } else { 0 });
        for episode in start..end {
            let seed = episode_seed(config.seed, job.instance.name(), &job.label, episode);
            match run_episode(
                &job.instance,
                job.scenario,
                &job.prepared,
                episode,
                config.steps,
                config.memory,
                seed,
            ) {
                Ok(record) => {
                    acc.push(&record);
                    if config.detail {
                        detail.push(record);
                    }
                }
                Err(source) => {
                    let mut slot = failure.lock().expect("failure lock");
                    if slot
                        .as_ref()
                        .is_none_or(|(t, e, _)| (task, episode) < (*t, *e))
                    {
                        *slot = Some((task, episode, source));
                    }
                    return false;
                }
            }
        }
        merges[task.cell]
            .lock()
            .expect("cell merge lock")
            .submit(task.chunk, ChunkOutput { acc, detail });
        true
    });

    if let Some((task, episode, source)) = failure.into_inner().expect("workers joined") {
        let job = &jobs[task.cell];
        return Err(EngineError::Episode {
            context: format!("{}/{}#{}", job.instance.name(), job.label, episode),
            source,
        });
    }

    let mut cells = Vec::with_capacity(jobs.len());
    for (job, merge) in jobs.iter().zip(merges) {
        let merge = merge.into_inner().expect("workers joined");
        debug_assert_eq!(merge.next, chunks_per_cell, "all chunks merged in order");
        let mut cell =
            CellReport::from_accumulator(job.instance.name(), &job.label, config.steps, &merge.acc);
        cell.episodes_detail = merge.detail;
        cells.push(cell);
    }
    Ok((
        BatchReport {
            seed: config.seed,
            cells,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_scenarios::DoubleIntegratorScenario;

    fn tiny_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(Box::new(DoubleIntegratorScenario));
        registry
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = episode_seed(1, "s", "p", 0);
        assert_eq!(a, episode_seed(1, "s", "p", 0));
        assert_ne!(a, episode_seed(1, "s", "p", 1));
        assert_ne!(a, episode_seed(2, "s", "p", 0));
        assert_ne!(episode_seed(1, "sp", "x", 0), episode_seed(1, "s", "px", 0));
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let registry = tiny_registry();
        let policies = [PolicySpec::BangBang, PolicySpec::Random(0.5)];
        let serial = BatchConfig {
            episodes: 12,
            steps: 40,
            threads: 1,
            ..Default::default()
        };
        let parallel = BatchConfig {
            episodes: 12,
            steps: 40,
            threads: 4,
            ..Default::default()
        };
        let a = run_batch(&registry, &policies, &serial).unwrap();
        let b = run_batch(&registry, &policies, &parallel).unwrap();
        assert_eq!(a, b, "thread count must not change results");
        assert_eq!(a.to_json(true).to_json(), b.to_json(true).to_json());
    }

    #[test]
    fn small_chunks_exercise_out_of_order_merge_deterministically() {
        // chunk 2 over 30 episodes → 15 chunks per cell: plenty of
        // out-of-order completion for the per-cell merge state to reorder.
        let registry = tiny_registry();
        let policies = [PolicySpec::Random(0.3)];
        let base = BatchConfig {
            episodes: 30,
            steps: 25,
            chunk: 2,
            detail: true,
            ..Default::default()
        };
        let serial = run_batch(
            &registry,
            &policies,
            &BatchConfig {
                threads: 1,
                ..base.clone()
            },
        )
        .unwrap();
        let parallel =
            run_batch(&registry, &policies, &BatchConfig { threads: 8, ..base }).unwrap();
        assert_eq!(serial, parallel);
        // Detail survives chunked streaming, in episode order.
        let detail = &serial.cells[0].episodes_detail;
        assert_eq!(detail.len(), 30);
        assert!(detail.windows(2).all(|w| w[0].episode + 1 == w[1].episode));
    }

    #[test]
    fn auto_chunk_size_ignores_thread_count() {
        for (episodes, expected) in [(1usize, 16), (100, 16), (5_000, 79), (1_000_000, 1024)] {
            let config = BatchConfig {
                episodes,
                ..Default::default()
            };
            assert_eq!(config.chunk_size(), expected, "episodes = {episodes}");
            let more_threads = BatchConfig {
                threads: 32,
                ..config
            };
            assert_eq!(more_threads.chunk_size(), expected);
        }
        let explicit = BatchConfig {
            episodes: 100,
            chunk: 7,
            ..Default::default()
        };
        assert_eq!(explicit.chunk_size(), 7);
    }

    #[test]
    fn worker_count_is_no_longer_capped_at_eight() {
        let config = BatchConfig {
            threads: 48,
            ..Default::default()
        };
        assert_eq!(config.worker_count(), 48, "explicit thread counts win");
        let auto = BatchConfig::default();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(auto.worker_count(), cores, "auto means every core");
    }

    #[test]
    fn scheduler_stats_cover_every_chunk() {
        let registry = tiny_registry();
        let config = BatchConfig {
            episodes: 40,
            steps: 10,
            chunk: 4,
            threads: 4,
            ..Default::default()
        };
        let (report, stats) =
            run_batch_with_stats(&registry, &[PolicySpec::BangBang], &config).unwrap();
        assert_eq!(report.cells[0].episodes, 40);
        assert_eq!(stats.executed, 10, "40 episodes / chunk 4 = 10 tasks");
        assert!(stats.workers >= 1 && stats.workers <= 4);
    }

    #[test]
    fn different_seeds_differ() {
        let registry = tiny_registry();
        let policies = [PolicySpec::Random(0.5)];
        let c1 = BatchConfig {
            episodes: 4,
            steps: 30,
            seed: 1,
            detail: true,
            ..Default::default()
        };
        let c2 = BatchConfig {
            episodes: 4,
            steps: 30,
            seed: 2,
            detail: true,
            ..Default::default()
        };
        let a = run_batch(&registry, &policies, &c1).unwrap();
        let b = run_batch(&registry, &policies, &c2).unwrap();
        assert_ne!(a.cells[0].episodes_detail, b.cells[0].episodes_detail);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let registry = tiny_registry();
        let err = run_batch(&registry, &[], &BatchConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        let err = run_batch(
            &registry,
            &[PolicySpec::BangBang],
            &BatchConfig {
                episodes: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        let empty = ScenarioRegistry::new();
        let err = run_batch(&empty, &[PolicySpec::BangBang], &BatchConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn bad_policy_parameters_are_invalid_config_not_panics() {
        let registry = tiny_registry();
        for bad in [
            PolicySpec::Random(1.5),
            PolicySpec::Random(-0.1),
            PolicySpec::Periodic(0),
            PolicySpec::MaxSkip(0),
        ] {
            let err = run_batch(&registry, &[bad], &BatchConfig::default()).unwrap_err();
            assert!(matches!(err, EngineError::InvalidConfig(_)));
        }
    }

    #[test]
    fn detail_false_drops_episode_records() {
        let registry = tiny_registry();
        let config = BatchConfig {
            episodes: 3,
            steps: 20,
            detail: false,
            ..Default::default()
        };
        let report = run_batch(&registry, &[PolicySpec::BangBang], &config).unwrap();
        assert!(report.cells[0].episodes_detail.is_empty());
        assert_eq!(report.cells[0].episodes, 3, "aggregates survive the drop");
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = [
            PolicySpec::AlwaysRun,
            PolicySpec::BangBang,
            PolicySpec::Periodic(4),
            PolicySpec::Random(0.25),
            PolicySpec::MaxSkip(2),
        ]
        .iter()
        .map(PolicySpec::label)
        .collect();
        let mut deduped = labels.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len());
    }
}
