//! Throughput-first lockstep episode kernels.
//!
//! [`run_chunk`] replays one episode chunk of one cell with the same
//! observable semantics as the scalar per-episode loop in
//! [`crate::runner`], restructured for raw speed:
//!
//! * **Monomorphized small-dim kernels** — the registry is all `n ∈ {2,
//!   3, 4}`, so the hot loop is compiled once per state dimension
//!   (const generic `N`); `N = 0` is the dynamic-dimension fallback for
//!   out-of-registry plants.
//! * **Lockstep batch-stepping** — every live episode of the chunk
//!   advances one step together, so the plant update runs as one dense
//!   `A ×` block-of-states product over episode-major flat buffers.
//! * **Scratch reuse** — states, inputs, disturbances, encoder rows and
//!   network activations live in chunk-lifetime buffers; the
//!   steady-state step allocates nothing
//!   ([`DisturbanceProcess::next_into`] fills the episode's disturbance
//!   slot in place).
//! * **Batched MLP inference** — learned cells stage one encoded row
//!   per pending decision and run a single [`oic_nn::Mlp`] batched
//!   forward pass per lockstep step.
//!
//! # Why the report bytes cannot change
//!
//! Episodes are mutually independent: every floating-point operation
//! and every RNG draw belongs to exactly one episode, and the kernel
//! performs each episode's operations in exactly the scalar order
//! (tallies → disturbance estimation → monitor → policy → controller →
//! stats → dropout draw → disturbance draw → plant update → divergence
//! guard). Lockstep only reorders operations of *different* episodes
//! against each other — never the operand values or the operation order
//! within one episode — and chunk accumulators still fold records in
//! episode order, so the merge tree is bit-identical to the scalar path
//! at any thread count.

use std::cell::Cell;

use oic_control::{ControlCache, Controller};
use oic_core::{
    CoreError, DisturbanceProcess, GreedyDrlPolicy, PolicyContext, RunStats, SkipDecision,
    SkipPolicy,
};
use oic_faults::{CellFault, DropoutStream};
use oic_geom::Polytope;
use oic_linalg::Matrix;
use oic_nn::MlpScratch;
use oic_scenarios::ScenarioController;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::accumulator::CellAccumulator;
use crate::report::EpisodeRecord;
use crate::runner::{episode_seed, BatchConfig, CellJob, PreparedPolicy};

/// The tolerance [`Polytope::contains`] applies (`oic_geom`'s
/// `CONTAINS_TOL`), mirrored here because the monitor and the max-skip
/// guarantee check go through `contains`.
const CONTAINS_TOL: f64 = 1e-7;

/// What one chunk hands back to the scheduler: the same triple the
/// scalar per-episode loop produces.
pub(crate) struct KernelOutput {
    /// Episode records folded in episode order (empty on failure — a
    /// failed chunk never submits to the cell merge).
    pub acc: CellAccumulator,
    /// Per-episode rows when `config.detail` is set.
    pub detail: Vec<EpisodeRecord>,
    /// The lowest failing `(episode, reason)` of the chunk, matching
    /// the scalar loop's stop-at-first-failure semantics.
    pub failure: Option<(usize, String)>,
}

/// Resolves the compile-time dimension: `N = 0` means "read it from the
/// runtime value", any other `N` is a constant loop bound the compiler
/// fully unrolls.
#[inline(always)]
fn dim_of<const N: usize>(n: usize) -> usize {
    if N == 0 {
        n
    } else {
        N
    }
}

/// A polytope flattened into contiguous rows for the hot loop. Slack
/// and membership reproduce `Halfspace::slack` / `Polytope::contains`
/// bit for bit: per-row dot products accumulate from `0.0` in index
/// order, `min_slack` folds with `f64::min` from `+∞`.
struct FlatPoly {
    normals: Vec<f64>,
    offsets: Vec<f64>,
    rows: usize,
}

impl FlatPoly {
    fn new(p: &Polytope, n: usize) -> Self {
        let rows = p.halfspaces().len();
        let mut normals = Vec::with_capacity(rows * n);
        let mut offsets = Vec::with_capacity(rows);
        for h in p.halfspaces() {
            assert_eq!(h.normal().len(), n, "halfspace dim mismatch");
            normals.extend_from_slice(h.normal());
            offsets.push(h.offset());
        }
        Self {
            normals,
            offsets,
            rows,
        }
    }

    #[inline(always)]
    fn min_slack<const N: usize>(&self, x: &[f64]) -> f64 {
        let n = dim_of::<N>(x.len());
        let mut min = f64::INFINITY;
        for r in 0..self.rows {
            let row = &self.normals[r * n..(r + 1) * n];
            let mut dot = 0.0;
            for j in 0..n {
                dot += row[j] * x[j];
            }
            min = f64::min(min, self.offsets[r] - dot);
        }
        min
    }

    #[inline(always)]
    fn contains<const N: usize>(&self, x: &[f64], tol: f64) -> bool {
        let n = dim_of::<N>(x.len());
        for r in 0..self.rows {
            let row = &self.normals[r * n..(r + 1) * n];
            let mut dot = 0.0;
            for j in 0..n {
                dot += row[j] * x[j];
            }
            // Negated `>=` (not `<`) so a NaN slack fails containment,
            // exactly like the scalar `Halfspace::contains`.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(self.offsets[r] - dot >= -tol) {
                return false;
            }
        }
        true
    }
}

/// Row-major flattening of a [`Matrix`] (the layout `Matrix::row`
/// exposes), so the block plant update indexes one contiguous buffer.
fn flatten(m: &Matrix) -> Vec<f64> {
    let mut flat = Vec::with_capacity(m.rows() * m.cols());
    for i in 0..m.rows() {
        flat.extend_from_slice(m.row(i));
    }
    flat
}

/// How one episode resolves its skip decision inside the kernel.
enum EpPolicy {
    /// Analytic policies run through the exact same boxed object the
    /// scalar path builds, so stateful policies (periodic counters,
    /// seeded random draws) advance identically.
    Boxed(Box<dyn SkipPolicy>),
    /// Max-skip needs only a membership test against the shared
    /// guarantee set; the flattened polytope keeps it in the hot loop.
    MaxSkip,
    /// Learned cells defer to the per-step batched forward pass.
    Drl,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Alive,
    Escaped,
    Failed,
}

/// This step's resolved decision for one live episode.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Episode escaped or failed during the decision phase.
    Dead,
    /// Actuate; `forced` marks an invariant-only (monitor-forced) run.
    Run {
        forced: bool,
    },
    Skip,
    /// Waiting on the batched network forward.
    PendingDrl,
}

/// Runs episodes `start..end` of one cell in lockstep. `marker` tracks
/// the episode currently being computed so the caller's unwind boundary
/// can attribute a panic (injected faults panic at the episode's
/// initialization, in episode order, exactly like the scalar loop).
pub(crate) fn run_chunk(
    job: &CellJob<'_>,
    config: &BatchConfig,
    start: usize,
    end: usize,
    marker: &Cell<usize>,
) -> KernelOutput {
    let n = job.instance.sets().plant().system().state_dim();
    match n {
        2 => run_chunk_impl::<2>(job, config, start, end, marker),
        3 => run_chunk_impl::<3>(job, config, start, end, marker),
        4 => run_chunk_impl::<4>(job, config, start, end, marker),
        _ => run_chunk_impl::<0>(job, config, start, end, marker),
    }
}

#[allow(clippy::too_many_lines)]
fn run_chunk_impl<const N: usize>(
    job: &CellJob<'_>,
    config: &BatchConfig,
    start: usize,
    end: usize,
    marker: &Cell<usize>,
) -> KernelOutput {
    let sets = job.instance.sets();
    let sys = sets.plant().system();
    let n = sys.state_dim();
    let m = sys.input_dim();
    debug_assert!(N == 0 || N == n);
    let a = flatten(sys.a());
    let b = flatten(sys.b());
    let safe = FlatPoly::new(sets.safe(), n);
    let invariant = FlatPoly::new(sets.invariant(), n);
    let strengthened = FlatPoly::new(sets.strengthened(), n);
    let skip_input: Vec<f64> = sets.skip_input().to_vec();
    let gain: Option<Vec<f64>> = match job.instance.controller() {
        ScenarioController::Linear(k) => Some(flatten(k.gain())),
        ScenarioController::Tube(_) => None,
    };
    let guarantee: Option<FlatPoly> = match &job.prepared {
        PreparedPolicy::MaxSkip(p) => Some(FlatPoly::new(p.guarantee_set(), n)),
        _ => None,
    };
    let drl: Option<&GreedyDrlPolicy> = match &job.prepared {
        PreparedPolicy::Drl(p) => Some(p),
        _ => None,
    };
    let keep = config.memory.max(1);
    let count = end - start;

    // Episode-major flat blocks: episode `slot` owns `x[slot*n..][..n]`.
    let mut x = vec![0.0f64; count * n];
    let mut prev_x = vec![0.0f64; count * n];
    let mut u = vec![0.0f64; count * m];
    let mut prev_u = vec![0.0f64; count * m];
    let mut w = vec![0.0f64; count * n];
    let mut has_prev = vec![false; count];
    let mut status = vec![Status::Alive; count];
    let mut stats: Vec<RunStats> = vec![RunStats::default(); count];
    let mut safety_violations = vec![0usize; count];
    let mut invariant_violations = vec![0usize; count];
    let mut min_safe_slack = vec![f64::INFINITY; count];
    let mut forced_skips = vec![0usize; count];
    let mut verdict_forced = vec![false; count];
    let mut actions = vec![Action::Dead; count];
    let mut seeds = vec![0u64; count];
    let mut whist: Vec<Vec<Vec<f64>>> = Vec::with_capacity(count);
    let mut processes: Vec<Box<dyn DisturbanceProcess>> = Vec::with_capacity(count);
    let mut policies: Vec<EpPolicy> = Vec::with_capacity(count);
    let mut dropouts: Vec<Option<DropoutStream>> = Vec::with_capacity(count);
    let mut caches: Vec<ControlCache> = Vec::with_capacity(count);
    let mut nan_steps: Vec<Option<usize>> = Vec::with_capacity(count);
    // The lowest failing episode so far; episodes above it are
    // abandoned (their chunk is already failed and the scalar loop
    // would never have reached them), episodes below keep running
    // because an earlier failure must win deterministically.
    let mut failure: Option<(usize, String)> = None;

    // Per-episode initialization, in episode order (an injected panic
    // fires here, attributed to its episode via `marker`). Every RNG
    // stream is derived from the episode seed alone, exactly as the
    // scalar loop derives it.
    for slot in 0..count {
        let episode = start + slot;
        marker.set(episode);
        if matches!(job.fault, CellFault::Panic { episode: e } if e == episode) {
            panic!("injected fault: worker panic at episode {episode}");
        }
        let seed = episode_seed(config.seed, job.instance.name(), &job.label, episode);
        seeds[slot] = seed;
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = job.instance.sample_initial_state(&mut rng);
        x[slot * n..(slot + 1) * n].copy_from_slice(&x0);
        processes.push(
            job.scenario
                .disturbance_process(seed ^ 0x9E37_79B9_7F4A_7C15),
        );
        policies.push(match &job.prepared {
            PreparedPolicy::MaxSkip(_) => EpPolicy::MaxSkip,
            PreparedPolicy::Drl(_) => EpPolicy::Drl,
            PreparedPolicy::Spec(_) => EpPolicy::Boxed(job.prepared.for_episode(seed)),
        });
        dropouts.push((!job.dropout.is_none()).then(|| job.dropout.stream(seed)));
        caches.push(ControlCache::new());
        nan_steps.push(match job.fault {
            CellFault::Nan { episode: e, step } if e == episode => Some(step),
            _ => None,
        });
        whist.push(Vec::with_capacity(keep));
    }

    let mut live: Vec<usize> = (0..count).collect();
    let mut w_est = vec![0.0f64; n];
    let mut x_next = vec![0.0f64; n];
    let mut enc_batch: Vec<f64> = Vec::new();
    let mut enc_row: Vec<f64> = Vec::new();
    let mut drl_slots: Vec<usize> = Vec::new();
    let mut q_out: Vec<f64> = Vec::new();
    let mut scratch = MlpScratch::new();

    let note_failure = |failure: &mut Option<(usize, String)>,
                        status: &mut Vec<Status>,
                        slot: usize,
                        reason: String| {
        status[slot] = Status::Failed;
        let episode = start + slot;
        if failure.as_ref().is_none_or(|(e, _)| episode < *e) {
            *failure = Some((episode, reason));
        }
    };

    for t in 0..config.steps {
        if live.is_empty() {
            break;
        }
        drl_slots.clear();
        enc_batch.clear();

        // Decision phase — per episode: tallies, disturbance
        // estimation, monitor, and the skip decision (learned cells
        // stage an encoder row instead and resolve after the batched
        // forward pass below).
        for &s in &live {
            marker.set(start + s);
            let xs = &x[s * n..(s + 1) * n];
            min_safe_slack[s] = f64::min(min_safe_slack[s], safe.min_slack::<N>(xs));
            if !safe.contains::<N>(xs, 1e-6) {
                safety_violations[s] += 1;
            }
            if !invariant.contains::<N>(xs, 1e-6) {
                invariant_violations[s] += 1;
            }
            if has_prev[s] {
                // w = x − (A·x_prev + B·u_prev), the scalar loop's
                // `step_nominal` + `sub`, row accumulators from 0.0.
                let xp = &prev_x[s * n..(s + 1) * n];
                let up = &prev_u[s * m..(s + 1) * m];
                let nn = dim_of::<N>(n);
                for i in 0..nn {
                    let mut acc_a = 0.0;
                    for j in 0..nn {
                        acc_a += a[i * nn + j] * xp[j];
                    }
                    let mut acc_b = 0.0;
                    for j in 0..m {
                        acc_b += b[i * m + j] * up[j];
                    }
                    w_est[i] = xs[i] - (acc_a + acc_b);
                }
                let ring = &mut whist[s];
                if ring.len() < keep {
                    ring.push(w_est.clone());
                } else {
                    ring.rotate_left(1);
                    ring.last_mut()
                        .expect("non-empty history ring")
                        .copy_from_slice(&w_est);
                }
            }
            // Monitor::check — strengthened first, then invariant, both
            // at `Polytope::contains` tolerance.
            if strengthened.contains::<N>(xs, CONTAINS_TOL) {
                verdict_forced[s] = false;
                actions[s] = match &mut policies[s] {
                    EpPolicy::Boxed(policy) => {
                        let ctx = PolicyContext {
                            state: xs,
                            w_history: &whist[s],
                            w_forecast: &[],
                            time_step: t,
                        };
                        match policy.decide(&ctx) {
                            SkipDecision::Run => Action::Run { forced: false },
                            SkipDecision::Skip => Action::Skip,
                        }
                    }
                    EpPolicy::MaxSkip => {
                        let inside = guarantee
                            .as_ref()
                            .expect("max-skip cell has a guarantee set")
                            .contains::<N>(xs, CONTAINS_TOL);
                        if inside {
                            Action::Skip
                        } else {
                            Action::Run { forced: false }
                        }
                    }
                    EpPolicy::Drl => {
                        let policy = drl.expect("drl cell has a prepared policy");
                        policy.encode_into(xs, &whist[s], &mut enc_row);
                        enc_batch.extend_from_slice(&enc_row);
                        drl_slots.push(s);
                        Action::PendingDrl
                    }
                };
            } else if invariant.contains::<N>(xs, CONTAINS_TOL) {
                verdict_forced[s] = true;
                actions[s] = Action::Run { forced: true };
            } else if dropouts[s].is_some() {
                // Dropout voided Theorem 1's premise; the escape is the
                // measured result, with this state's tallies already
                // counted above.
                status[s] = Status::Escaped;
                actions[s] = Action::Dead;
            } else {
                let reason = CoreError::OutsideInvariant { state: xs.to_vec() }.to_string();
                note_failure(&mut failure, &mut status, s, reason);
                actions[s] = Action::Dead;
            }
        }

        // One forward pass for every learned decision staged this step.
        if !drl_slots.is_empty() {
            let policy = drl.expect("drl rows staged only for drl cells");
            policy
                .network()
                .forward_batch(&enc_batch, drl_slots.len(), &mut q_out, &mut scratch);
            for (k, &s) in drl_slots.iter().enumerate() {
                let q = &q_out[2 * k..2 * k + 2];
                actions[s] = if GreedyDrlPolicy::action_from_q(q) == 1 {
                    Action::Run { forced: false }
                } else {
                    Action::Skip
                };
            }
        }

        // Actuation phase — per episode: controller, stats, dropout
        // draw (every step), disturbance draw, plant update, guard.
        for &s in &live {
            let (run, forced) = match actions[s] {
                Action::Dead => continue,
                Action::Run { forced } => (true, forced),
                Action::Skip => (false, false),
                Action::PendingDrl => unreachable!("resolved by the batched forward"),
            };
            marker.set(start + s);
            debug_assert_eq!(forced, run && verdict_forced[s]);
            let us = s * m..(s + 1) * m;
            if run {
                let xs = &x[s * n..(s + 1) * n];
                match &gain {
                    Some(k) => {
                        let nn = dim_of::<N>(n);
                        for i in 0..m {
                            let mut acc = 0.0;
                            for j in 0..nn {
                                acc += k[i * nn + j] * xs[j];
                            }
                            u[s * m + i] = acc;
                        }
                    }
                    None => {
                        let mpc = match job.instance.controller() {
                            ScenarioController::Tube(mpc) => mpc,
                            ScenarioController::Linear(_) => unreachable!("gain is Some"),
                        };
                        match mpc.control_with_cache(xs, &mut caches[s]) {
                            Ok(input) => u[us.clone()].copy_from_slice(&input),
                            Err(e) => {
                                let reason = CoreError::from(e).to_string();
                                note_failure(&mut failure, &mut status, s, reason);
                                continue;
                            }
                        }
                    }
                }
            } else {
                u[us.clone()].copy_from_slice(&skip_input);
            }
            let st = &mut stats[s];
            st.steps += 1;
            if !run {
                st.skipped += 1;
            } else if forced {
                st.forced_runs += 1;
            } else {
                st.policy_runs += 1;
            }
            let mut effort = 0.0;
            for j in 0..m {
                effort += (u[s * m + j] - skip_input[j]).abs();
            }
            st.actuation_effort += effort;
            prev_x[s * n..(s + 1) * n].copy_from_slice(&x[s * n..(s + 1) * n]);
            prev_u[us.clone()].copy_from_slice(&u[us.clone()]);
            has_prev[s] = true;
            // The dropout stream draws every step (the realized fault
            // pattern must not depend on the decision); only actuated
            // steps can be overridden, re-booked exactly like
            // `IntermittentController::notify_dropout`.
            if let Some(stream) = dropouts[s].as_mut() {
                if stream.dropped() && run {
                    let mut booked = 0.0;
                    for j in 0..m {
                        booked += (prev_u[s * m + j] - skip_input[j]).abs();
                    }
                    st.actuation_effort -= booked;
                    prev_u[us.clone()].copy_from_slice(&skip_input);
                    u[us.clone()].copy_from_slice(&skip_input);
                    forced_skips[s] += 1;
                }
            }
            processes[s].next_into(t, &mut w[s * n..(s + 1) * n]);
        }

        // Plant phase — the dense block update x⁺ = A·x + B·u + w over
        // every episode still live this step. Per row: the two
        // accumulators start at 0.0 and sum in column order, then
        // `(a + b) + w`, exactly `Lti::step`'s operation order.
        for &s in &live {
            if actions[s] == Action::Dead || status[s] != Status::Alive {
                continue;
            }
            marker.set(start + s);
            let nn = dim_of::<N>(n);
            {
                let xs = &x[s * n..(s + 1) * n];
                let us = &u[s * m..(s + 1) * m];
                let ws = &w[s * n..(s + 1) * n];
                for i in 0..nn {
                    let mut acc_a = 0.0;
                    for j in 0..nn {
                        acc_a += a[i * nn + j] * xs[j];
                    }
                    let mut acc_b = 0.0;
                    for j in 0..m {
                        acc_b += b[i * m + j] * us[j];
                    }
                    x_next[i] = (acc_a + acc_b) + ws[i];
                }
            }
            x[s * n..(s + 1) * n].copy_from_slice(&x_next);
            if nan_steps[s] == Some(t) {
                x[s * n] = f64::NAN;
            }
            let xs = &x[s * n..(s + 1) * n];
            if !xs.iter().all(|v| v.is_finite() && v.abs() < 1e12) {
                let reason = CoreError::NonFinite { step: t }.to_string();
                note_failure(&mut failure, &mut status, s, reason);
            }
        }

        // Retire escaped/failed episodes; once a failure exists, also
        // abandon every episode above it (the chunk is failed and the
        // scalar loop would have stopped before reaching them; only a
        // lower-index episode could still change the reported failure).
        let cutoff = failure.as_ref().map(|(e, _)| *e);
        live.retain(|&s| status[s] == Status::Alive && cutoff.is_none_or(|e| start + s < e));
    }

    if failure.is_some() {
        return KernelOutput {
            acc: CellAccumulator::new(),
            detail: Vec::new(),
            failure,
        };
    }

    // Every episode completed (or escaped): the final post-step state
    // tally, then records folded in episode order — the same Welford
    // sequence the scalar loop produces.
    let mut acc = CellAccumulator::new();
    let mut detail = Vec::with_capacity(if config.detail { count } else { 0 });
    for s in 0..count {
        if status[s] == Status::Alive {
            let xs = &x[s * n..(s + 1) * n];
            min_safe_slack[s] = f64::min(min_safe_slack[s], safe.min_slack::<N>(xs));
            if !safe.contains::<N>(xs, 1e-6) {
                safety_violations[s] += 1;
            }
            if !invariant.contains::<N>(xs, 1e-6) {
                invariant_violations[s] += 1;
            }
        }
        let record = EpisodeRecord {
            episode: start + s,
            seed: seeds[s],
            stats: stats[s].clone(),
            safety_violations: safety_violations[s],
            invariant_violations: invariant_violations[s],
            min_safe_slack: min_safe_slack[s],
            forced_skips: forced_skips[s],
        };
        acc.push(&record);
        if config.detail {
            detail.push(record);
        }
    }
    KernelOutput {
        acc,
        detail,
        failure: None,
    }
}
