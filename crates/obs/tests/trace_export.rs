//! Integration test: the Chrome trace-event export is structurally valid
//! — the invariants Perfetto / `chrome://tracing` need to load a file.
//!
//! Validated by parsing the emitted JSON back (with a minimal scanner,
//! since the workspace is dependency-free): the envelope shape, balanced
//! `B`/`E` pairs per thread, and non-decreasing timestamps per thread.

use oic_obs::{chrome_trace_json, drain_trace, reset_trace, set_trace_enabled, span, span_with};

/// One parsed trace event: phase, name, tid, timestamp in microseconds.
#[derive(Debug)]
struct Event {
    ph: char,
    name: String,
    tid: u64,
    ts: f64,
}

/// Extracts `"key":` scalar values from one event object (the exporter
/// emits a fixed field order, but this scanner does not rely on it).
fn field<'a>(obj: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .unwrap_or_else(|| panic!("missing {key} in {obj}"))
        + pat.len();
    let rest = &obj[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        &stripped[..stripped.find('"').expect("closing quote")]
    } else {
        let end = rest
            .find([',', '}'])
            .unwrap_or_else(|| panic!("unterminated value for {key}"));
        &rest[..end]
    }
}

/// Splits the `traceEvents` array into event objects and parses each.
/// Span names in these tests contain no braces, so brace counting is a
/// safe delimiter.
fn parse_events(json: &str) -> Vec<Event> {
    assert!(json.starts_with("{\"traceEvents\":["), "envelope: {json}");
    assert!(json.ends_with("]}"), "envelope: {json}");
    let body = &json["{\"traceEvents\":[".len()..json.len() - 2];
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    let obj = &body[start..=i];
                    events.push(Event {
                        ph: field(obj, "ph").chars().next().expect("phase char"),
                        name: field(obj, "name").to_string(),
                        tid: field(obj, "tid").parse().expect("numeric tid"),
                        ts: field(obj, "ts").parse().expect("numeric ts"),
                    });
                }
            }
            _ => {}
        }
    }
    events
}

#[test]
fn exported_trace_is_balanced_and_monotone() {
    let _guard = oic_obs::metrics::test_lock();
    reset_trace();
    set_trace_enabled(true);
    // Nested spans on the test thread plus concurrent workers: the
    // export must keep every thread's lane independently well-formed.
    {
        let _outer = span("outer", "test");
        for i in 0..3 {
            let _inner = span_with("inner", "test", || format!("iteration {i}"));
            std::hint::black_box(i);
        }
    }
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..5 {
                    let _span = span("worker", "test");
                    std::hint::black_box(0);
                }
            });
        }
    });
    set_trace_enabled(false);
    let spans = drain_trace();
    let json = chrome_trace_json(&spans);
    let events = parse_events(&json);
    assert_eq!(events.len(), 2 * spans.len(), "one B and one E per span");

    let mut stacks: std::collections::HashMap<u64, Vec<String>> = std::collections::HashMap::new();
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for event in &events {
        let prev = last_ts.entry(event.tid).or_insert(0.0);
        assert!(
            event.ts >= *prev,
            "timestamps must be non-decreasing per tid ({} < {prev} on tid {})",
            event.ts,
            event.tid
        );
        *prev = event.ts;
        let stack = stacks.entry(event.tid).or_default();
        match event.ph {
            'B' => stack.push(event.name.clone()),
            'E' => {
                let open = stack.pop().expect("E without a matching B");
                assert_eq!(open, event.name, "E must close the innermost open B");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(
        stacks.values().all(Vec::is_empty),
        "every B must be closed: {stacks:?}"
    );
    // The nesting survived the round trip: "inner" opens under "outer".
    let test_tid = events
        .iter()
        .find(|e| e.name == "outer")
        .expect("outer span present")
        .tid;
    let lane: Vec<&Event> = events.iter().filter(|e| e.tid == test_tid).collect();
    assert_eq!(lane.first().map(|e| e.name.as_str()), Some("outer"));
    assert_eq!(lane.last().map(|e| e.name.as_str()), Some("outer"));
    assert!(lane.iter().filter(|e| e.name == "inner").count() == 6);
}

#[test]
fn empty_trace_exports_an_empty_envelope() {
    let _guard = oic_obs::metrics::test_lock();
    let json = chrome_trace_json(&[]);
    assert_eq!(json, "{\"traceEvents\":[]}");
}
