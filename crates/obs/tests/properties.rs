//! Property tests: the sharded metric registry merges to exactly the
//! values a single-threaded reference run produces, no matter how the
//! recordings are partitioned across workers or ordered within one.
//!
//! This is the load-bearing determinism claim of `oic-obs`: counter and
//! histogram merges are integer sums (associative, commutative), so a
//! snapshot cannot depend on thread scheduling.

use oic_obs::metrics::test_lock;
use oic_obs::{metrics_snapshot, reset_metrics, set_metrics_enabled, HistogramSnapshot};
use proptest::prelude::*;

/// Round-robin partition of `values` into `threads` slices.
fn partition(values: &[u64], threads: usize) -> Vec<Vec<u64>> {
    (0..threads)
        .map(|t| values.iter().skip(t).step_by(threads).copied().collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Counter totals are partition-independent: recording a value list
    /// from N worker threads (each in reversed order, to scramble any
    /// accidental order dependence) equals recording it sequentially.
    #[test]
    fn sharded_counter_merge_matches_single_thread(
        values in prop::collection::vec(0u64..10_000, 1..64),
        threads in 1usize..8,
    ) {
        let _guard = test_lock();
        reset_metrics();
        set_metrics_enabled(true);
        for v in &values {
            oic_obs::counter!("prop.counter", "events").add(*v);
        }
        let reference = metrics_snapshot().counter("prop.counter");

        reset_metrics();
        std::thread::scope(|s| {
            for chunk in partition(&values, threads) {
                s.spawn(move || {
                    for v in chunk.iter().rev() {
                        oic_obs::counter!("prop.counter", "events").add(*v);
                    }
                });
            }
        });
        let sharded = metrics_snapshot().counter("prop.counter");
        set_metrics_enabled(false);
        prop_assert_eq!(sharded, reference);
    }

    /// Histogram merges (count, sum, min, max, every bucket) are
    /// partition-independent too, and both match a plain in-memory
    /// [`HistogramSnapshot`] fold over the same values.
    #[test]
    fn sharded_histogram_merge_matches_single_thread(
        values in prop::collection::vec(0u64..(1u64 << 50), 1..64),
        threads in 1usize..8,
    ) {
        let _guard = test_lock();
        reset_metrics();
        set_metrics_enabled(true);
        for v in &values {
            oic_obs::histogram!("prop.hist", "ns").record(*v);
        }
        let reference = metrics_snapshot().histogram("prop.hist").cloned();

        reset_metrics();
        std::thread::scope(|s| {
            for chunk in partition(&values, threads) {
                s.spawn(move || {
                    for v in chunk.iter().rev() {
                        oic_obs::histogram!("prop.hist", "ns").record(*v);
                    }
                });
            }
        });
        let sharded = metrics_snapshot().histogram("prop.hist").cloned();
        set_metrics_enabled(false);

        prop_assert_eq!(&sharded, &reference);
        // Cross-check against a sequential fold with the value-level API.
        let mut folded = HistogramSnapshot::empty();
        for v in &values {
            folded.record(*v);
        }
        let sharded = sharded.unwrap();
        prop_assert_eq!(sharded.count, folded.count);
        prop_assert_eq!(sharded.sum, folded.sum);
        prop_assert_eq!(sharded.min, folded.min);
        prop_assert_eq!(sharded.max, folded.max);
        prop_assert_eq!(&sharded.buckets, &folded.buckets);
    }

    /// Interleaving many metrics at once never cross-contaminates names:
    /// each counter ends at the sum of its own stream.
    #[test]
    fn concurrent_streams_stay_isolated(
        a in prop::collection::vec(0u64..100, 0..32),
        b in prop::collection::vec(0u64..100, 0..32),
    ) {
        let _guard = test_lock();
        reset_metrics();
        set_metrics_enabled(true);
        std::thread::scope(|s| {
            let a = &a;
            let b = &b;
            s.spawn(move || {
                for v in a {
                    oic_obs::counter!("prop.stream_a", "events").add(*v);
                }
            });
            s.spawn(move || {
                for v in b {
                    oic_obs::counter!("prop.stream_b", "events").add(*v);
                }
            });
        });
        let snap = metrics_snapshot();
        set_metrics_enabled(false);
        prop_assert_eq!(snap.counter("prop.stream_a"), Some(a.iter().sum()));
        prop_assert_eq!(snap.counter("prop.stream_b"), Some(b.iter().sum()));
    }
}
