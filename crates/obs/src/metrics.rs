//! The sharded metrics registry: counters, gauges, and log-bucketed
//! histograms.
//!
//! Every metric is a leaked `&'static` registered once by name; call
//! sites cache the handle in a `OnceLock` (the [`counter!`](crate::counter),
//! [`gauge!`](crate::gauge), and [`histogram!`](crate::histogram) macros do
//! this), so the steady-state cost of a hook is one acquire load for the
//! handle plus one relaxed load for the enable gate — and, when enabled,
//! a handful of relaxed atomic adds on a thread-owned shard.
//!
//! Sharding: each recording thread is assigned a shard index once (a
//! process-wide ordinal modulo [`SHARDS`]), so workers touch disjoint
//! cache lines on the hot path. Snapshots merge shards **in ascending
//! shard index order**; since everything stored is a `u64` count or sum,
//! the merge is exactly associative and commutative — the snapshot is
//! independent of which worker recorded which event (the property tests
//! pin this against a single-threaded reference).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of counter/histogram shards (a power of two; threads map onto
/// shards by ordinal, so up to this many workers record contention-free).
pub const SHARDS: usize = 16;

/// Number of histogram buckets: bucket `i` holds values whose bit length
/// is `i`, i.e. bucket 0 holds the value 0 and bucket `i ≥ 1` holds
/// `[2^(i−1), 2^i)`.
pub const BUCKETS: usize = 65;

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// One cache line per shard so hot counters on different workers never
/// false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

impl Shard {
    fn new() -> Self {
        Shard(AtomicU64::new(0))
    }
}

/// A monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    unit: &'static str,
    shards: Vec<Shard>,
}

impl Counter {
    fn new(name: &'static str, unit: &'static str) -> Self {
        Self {
            name,
            unit,
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit the value counts (e.g. `"pivots"`, `"ns"`).
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Adds `n` to the counter (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 (no-op while metrics are disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total (shards merged in ascending index order).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins instantaneous value (worker counts, config knobs).
pub struct Gauge {
    name: &'static str,
    unit: &'static str,
    value: AtomicU64,
}

impl Gauge {
    fn new(name: &'static str, unit: &'static str) -> Self {
        Self {
            name,
            unit,
            value: AtomicU64::new(0),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit of the stored value.
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Stores `v` (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// The last stored value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// One histogram shard: bucket counts plus count/sum/min/max.
struct HistShard {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Stored as the raw value; `u64::MAX` means "empty".
    min: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// The log₂ bucket a value lands in (its bit length).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (inclusive).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log-bucketed (power-of-two) histogram of `u64` samples.
pub struct Histogram {
    name: &'static str,
    unit: &'static str,
    shards: Vec<HistShard>,
}

impl Histogram {
    fn new(name: &'static str, unit: &'static str) -> Self {
        Self {
            name,
            unit,
            shards: (0..SHARDS).map(|_| HistShard::new()).collect(),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit of recorded samples.
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Records one sample (no-op while metrics are disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.min.fetch_min(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges every shard (ascending index order) into a snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for shard in &self.shards {
            let other = HistogramSnapshot {
                count: shard.count.load(Ordering::Relaxed),
                sum: shard.sum.load(Ordering::Relaxed),
                min: shard.min.load(Ordering::Relaxed),
                max: shard.max.load(Ordering::Relaxed),
                buckets: shard
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
            };
            snap.merge(&other);
        }
        snap
    }

    fn reset(&self) {
        for s in &self.shards {
            s.reset();
        }
    }
}

/// The merged, plain-data view of a [`Histogram`] (also the unit the
/// order-independence property tests exercise directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts ([`bucket_index`] layout, [`BUCKETS`] long).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Folds one sample in (the single-threaded reference the sharded
    /// histogram must agree with).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another snapshot in. Integer sums and min/max only, so the
    /// merge is associative and commutative — shard order cannot change
    /// the result.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket layouts");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A started wall-clock measurement, `None` while metrics are disabled —
/// so the disabled cost is the enable-gate load, never an `Instant::now()`.
#[derive(Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts timing if metrics are enabled.
    #[inline]
    pub fn start() -> Self {
        if crate::metrics_enabled() {
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch(None)
        }
    }

    /// Records the elapsed nanoseconds into `hist` (no-op when the watch
    /// never started).
    #[inline]
    pub fn stop_into(self, hist: &Histogram) {
        if let Some(start) = self.0 {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Elapsed nanoseconds, if the watch started.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|s| s.elapsed().as_nanos() as u64)
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name,
            Metric::Gauge(g) => g.name,
            Metric::Histogram(h) => h.name,
        }
    }
}

/// The process-wide metric registry. Metrics are registered once by name
/// and leaked (`&'static`), so handles stay valid for the process
/// lifetime and hooks never allocate.
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

/// The global [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        metrics: Mutex::new(Vec::new()),
    })
}

impl Registry {
    /// Registers (or fetches) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str, unit: &'static str) -> &'static Counter {
        let mut metrics = self.metrics.lock().expect("metric registry lock");
        if let Some(existing) = metrics.iter().find(|m| m.name() == name) {
            match existing {
                Metric::Counter(c) => return c,
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let leaked: &'static Counter = Box::leak(Box::new(Counter::new(name, unit)));
        metrics.push(Metric::Counter(leaked));
        leaked
    }

    /// Registers (or fetches) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str, unit: &'static str) -> &'static Gauge {
        let mut metrics = self.metrics.lock().expect("metric registry lock");
        if let Some(existing) = metrics.iter().find(|m| m.name() == name) {
            match existing {
                Metric::Gauge(g) => return g,
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let leaked: &'static Gauge = Box::leak(Box::new(Gauge::new(name, unit)));
        metrics.push(Metric::Gauge(leaked));
        leaked
    }

    /// Registers (or fetches) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &'static str, unit: &'static str) -> &'static Histogram {
        let mut metrics = self.metrics.lock().expect("metric registry lock");
        if let Some(existing) = metrics.iter().find(|m| m.name() == name) {
            match existing {
                Metric::Histogram(h) => return h,
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new(name, unit)));
        metrics.push(Metric::Histogram(leaked));
        leaked
    }
}

/// Caches a [`Counter`] handle at the call site; repeat calls are one
/// acquire load.
#[macro_export]
macro_rules! counter {
    ($name:expr, $unit:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name, $unit))
    }};
}

/// Caches a [`Gauge`] handle at the call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $unit:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name, $unit))
    }};
}

/// Caches a [`Histogram`] handle at the call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $unit:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name, $unit))
    }};
}

/// One metric's merged value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(u64),
    /// A merged histogram.
    Histogram(HistogramSnapshot),
}

/// A point-in-time, name-sorted view of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, unit, value)` sorted by name.
    pub entries: Vec<(String, String, MetricValue)>,
}

/// Snapshots every registered metric, sorted by name (deterministic for
/// a given set of recorded values, regardless of registration or worker
/// order).
pub fn metrics_snapshot() -> MetricsSnapshot {
    let metrics = registry().metrics.lock().expect("metric registry lock");
    let mut entries: Vec<(String, String, MetricValue)> = metrics
        .iter()
        .map(|m| match m {
            Metric::Counter(c) => (
                c.name.to_string(),
                c.unit.to_string(),
                MetricValue::Counter(c.value()),
            ),
            Metric::Gauge(g) => (
                g.name.to_string(),
                g.unit.to_string(),
                MetricValue::Gauge(g.value()),
            ),
            Metric::Histogram(h) => (
                h.name.to_string(),
                h.unit.to_string(),
                MetricValue::Histogram(h.snapshot()),
            ),
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot { entries }
}

/// Zeroes every registered metric (handles stay valid).
pub fn reset_metrics() {
    let metrics = registry().metrics.lock().expect("metric registry lock");
    for m in metrics.iter() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, _, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, _, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// The merged histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, _, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// Renders the snapshot as deterministic JSON (2-space indent).
    ///
    /// Every value is an integer count/sum, so no float formatting is
    /// involved; histograms serialize count/sum/min/max/mean plus the
    /// non-empty buckets as `{"le": upper_bound, "count": n}` rows.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"metrics\": {");
        for (i, (name, unit, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": {\"unit\": ");
            push_json_string(&mut out, unit);
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!(", \"type\": \"counter\", \"value\": {c}}}"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!(", \"type\": \"gauge\", \"value\": {g}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ", \"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \
                         \"max\": {}, \"buckets\": [",
                        h.count,
                        h.sum,
                        if h.count == 0 { 0 } else { h.min },
                        h.max
                    ));
                    let mut first = true;
                    for (b, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        out.push_str(&format!(
                            "{{\"le\": {}, \"count\": {n}}}",
                            bucket_upper_bound(b)
                        ));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a human-readable table (name, type, value, unit) for
    /// stderr summaries.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .entries
            .iter()
            .map(|(n, ..)| n.len())
            .max()
            .unwrap_or(0);
        for (name, unit, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("  {name:width$}  counter    {c} {unit}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("  {name:width$}  gauge      {g} {unit}\n"));
                }
                MetricValue::Histogram(h) => {
                    if h.count == 0 {
                        out.push_str(&format!("  {name:width$}  histogram  (empty) {unit}\n"));
                    } else {
                        out.push_str(&format!(
                            "  {name:width$}  histogram  n={} mean={:.0} min={} max={} {unit}\n",
                            h.count,
                            h.mean(),
                            h.min,
                            h.max
                        ));
                    }
                }
            }
        }
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes tests that flip the process-wide enable switches (also used
/// by dependent crates' test suites).
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value is in its bucket's range.
        for v in [0u64, 1, 2, 5, 1023, 1024, 1 << 40] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn counters_sum_across_threads() {
        let _guard = test_lock();
        reset_metrics();
        crate::set_metrics_enabled(true);
        let c = registry().counter("metrics.threads", "events");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        crate::set_metrics_enabled(false);
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn histogram_snapshot_matches_reference() {
        let _guard = test_lock();
        reset_metrics();
        crate::set_metrics_enabled(true);
        let h = registry().histogram("metrics.hist_ref", "ns");
        let values = [0u64, 1, 7, 8, 1000, 1 << 33, 42, 42];
        let mut reference = HistogramSnapshot::empty();
        for &v in &values {
            h.record(v);
            reference.record(v);
        }
        crate::set_metrics_enabled(false);
        assert_eq!(h.snapshot(), reference);
    }

    #[test]
    fn registry_dedups_by_name() {
        let a = registry().counter("metrics.dedup", "events");
        let b = registry().counter("metrics.dedup", "events");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let _guard = test_lock();
        reset_metrics();
        crate::set_metrics_enabled(true);
        registry().counter("metrics.zzz", "events").add(1);
        registry().counter("metrics.aaa", "events").add(2);
        registry().gauge("metrics.mid", "workers").set(4);
        crate::set_metrics_enabled(false);
        let snap = metrics_snapshot();
        let names: Vec<&String> = snap.entries.iter().map(|(n, ..)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.to_json(), metrics_snapshot().to_json());
        assert!(snap.to_json().contains("\"metrics.aaa\""));
        assert!(snap.render_table().contains("metrics.mid"));
    }

    #[test]
    fn stopwatch_records_only_when_enabled() {
        let _guard = test_lock();
        reset_metrics();
        crate::set_metrics_enabled(false);
        let h = registry().histogram("metrics.watch", "ns");
        Stopwatch::start().stop_into(h);
        assert_eq!(h.snapshot().count, 0);
        crate::set_metrics_enabled(true);
        Stopwatch::start().stop_into(h);
        crate::set_metrics_enabled(false);
        assert_eq!(h.snapshot().count, 1);
    }
}
