//! Zero-dependency telemetry for the OIC workspace.
//!
//! Two facilities, both pure `std`:
//!
//! * a **metrics registry** ([`metrics`]) — atomics-backed counters,
//!   gauges, and log-bucketed histograms, sharded across workers and
//!   merged in deterministic shard order, snapshot-able to a JSON report
//!   ([`metrics_snapshot`]);
//! * **span tracing** ([`trace`]) — lightweight begin/end spans with
//!   monotonic timestamps collected into per-worker ring buffers and
//!   exportable as Chrome trace-event JSON ([`chrome_trace_json`]),
//!   loadable in Perfetto or `chrome://tracing`.
//!
//! The non-negotiable invariant: telemetry lives entirely **off the
//! result path**. Recording is disabled by default, every hook starts
//! with a relaxed atomic load and returns immediately when its facility
//! is off, and nothing recorded ever feeds back into computation — so
//! deterministic reports (`BENCH_batch.json`) are byte-identical with
//! telemetry on or off, at any thread count. Counter and histogram
//! merges are integer sums, which are exactly associative and
//! commutative: a snapshot does not depend on which worker recorded
//! what.
//!
//! # Examples
//!
//! ```
//! oic_obs::reset_metrics();
//! oic_obs::set_metrics_enabled(true);
//! oic_obs::counter!("demo.events", "events").add(3);
//! oic_obs::histogram!("demo.latency_ns", "ns").record(1500);
//! let snapshot = oic_obs::metrics_snapshot();
//! assert_eq!(snapshot.counter("demo.events"), Some(3));
//! oic_obs::set_metrics_enabled(false);
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{
    metrics_snapshot, registry, reset_metrics, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsSnapshot, Stopwatch,
};
pub use trace::{
    chrome_trace_json, drain_trace, dropped_spans, reset_trace, set_trace_capacity, span,
    span_with, SpanGuard, SpanRecord,
};

use std::sync::atomic::{AtomicBool, Ordering};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is on (one relaxed load — this is the whole
/// cost of every disabled hook).
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is on (one relaxed load when off).
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide.
///
/// The first enable fixes the trace epoch: all span timestamps are
/// monotonic nanoseconds since that instant.
pub fn set_trace_enabled(enabled: bool) {
    if enabled {
        trace::ensure_epoch();
    }
    TRACE_ENABLED.store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_record_nothing() {
        // Serialize against other tests that flip the global switches.
        let _guard = metrics::test_lock();
        reset_metrics();
        set_metrics_enabled(false);
        counter!("lib.disabled", "events").add(7);
        histogram!("lib.disabled_ns", "ns").record(1);
        let snap = metrics_snapshot();
        assert_eq!(snap.counter("lib.disabled"), Some(0));
        assert!(snap.histogram("lib.disabled_ns").unwrap().count == 0);
    }

    #[test]
    fn enable_disable_roundtrip() {
        let _guard = metrics::test_lock();
        reset_metrics();
        set_metrics_enabled(true);
        counter!("lib.roundtrip", "events").add(2);
        set_metrics_enabled(false);
        counter!("lib.roundtrip", "events").add(40);
        assert_eq!(metrics_snapshot().counter("lib.roundtrip"), Some(2));
    }
}
