//! Span tracing with per-thread ring buffers and Chrome trace export.
//!
//! A span is opened with [`span`] (or [`span_with`] for a lazily-built
//! argument string) and closed when the returned [`SpanGuard`] drops.
//! Complete spans land in a ring buffer owned by the recording thread;
//! buffers are registered globally so spans survive worker-thread exit
//! (the work-stealing pool tears its threads down after every sweep).
//! [`drain_trace`] collects everything recorded so far and
//! [`chrome_trace_json`] renders it as the Chrome trace-event format
//! that Perfetto and `chrome://tracing` load.
//!
//! Timestamps are monotonic nanoseconds since the trace epoch — the
//! instant tracing was first enabled ([`crate::set_trace_enabled`]).
//! When the ring overflows, the *oldest* spans are dropped and counted;
//! the kept window stays well-formed because guards nest like a stack.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (spans). A full 66-cell sweep emits
/// on the order of 10⁵ spans spread across workers, so the default holds
/// the whole run.
const DEFAULT_CAPACITY: usize = 65_536;

/// One completed span: a named interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (the `name` field of the Chrome event).
    pub name: &'static str,
    /// Category (the `cat` field; used for filtering in Perfetto).
    pub cat: &'static str,
    /// Recording thread's trace ordinal (the `tid` field).
    pub tid: u64,
    /// Start, in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional free-form argument, rendered as `args: {"detail": ...}`.
    pub arg: Option<String>,
}

struct ThreadBuf {
    tid: u64,
    ring: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

impl ThreadBuf {
    fn push(&mut self, rec: SpanRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }
}

/// All thread buffers ever created, in registration order. Buffers are
/// kept alive here after their thread exits so late drains see them.
static BUFFERS: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: Arc<Mutex<ThreadBuf>> = {
        let buf = Arc::new(Mutex::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ring: VecDeque::new(),
            capacity: CAPACITY.load(Ordering::Relaxed),
            dropped: 0,
        }));
        BUFFERS
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&buf));
        buf
    };
}

/// Fixes the trace epoch if it is not set yet. Called by
/// [`crate::set_trace_enabled`] so the first enable anchors all
/// timestamps.
pub(crate) fn ensure_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Sets the per-thread ring capacity (spans) for buffers created from
/// now on; existing buffers keep their capacity. Clamped to ≥ 16.
pub fn set_trace_capacity(spans: usize) {
    CAPACITY.store(spans.max(16), Ordering::Relaxed);
}

/// RAII span: records an interval from construction to drop. Inert
/// (no clock reads, no allocation) when tracing is disabled at
/// construction time.
#[must_use = "a span measures the scope holding the guard"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    arg: Option<String>,
}

impl SpanGuard {
    #[inline]
    fn disabled() -> Self {
        SpanGuard { inner: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end = now_ns();
            LOCAL.with(|buf| {
                let mut b = buf.lock().unwrap_or_else(|p| p.into_inner());
                let tid = b.tid;
                b.push(SpanRecord {
                    name: inner.name,
                    cat: inner.cat,
                    tid,
                    start_ns: inner.start_ns,
                    dur_ns: end.saturating_sub(inner.start_ns),
                    arg: inner.arg,
                });
            });
        }
    }
}

/// Opens a span; the interval ends when the returned guard drops.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !crate::trace_enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard {
        inner: Some(SpanInner {
            name,
            cat,
            start_ns: now_ns(),
            arg: None,
        }),
    }
}

/// Like [`span`], with an argument string built **only when tracing is
/// enabled** — keep formatting costs off the disabled path.
#[inline]
pub fn span_with(name: &'static str, cat: &'static str, arg: impl FnOnce() -> String) -> SpanGuard {
    if !crate::trace_enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard {
        inner: Some(SpanInner {
            name,
            cat,
            start_ns: now_ns(),
            arg: Some(arg()),
        }),
    }
}

/// Collects every span recorded so far, across all threads (including
/// exited ones), ordered by `(tid, start_ns)`. Does not clear buffers.
pub fn drain_trace() -> Vec<SpanRecord> {
    let buffers = BUFFERS.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = Vec::new();
    for buf in buffers.iter() {
        let b = buf.lock().unwrap_or_else(|p| p.into_inner());
        out.extend(b.ring.iter().cloned());
    }
    out.sort_by(|a, b| (a.tid, a.start_ns, b.dur_ns).cmp(&(b.tid, b.start_ns, a.dur_ns)));
    out
}

/// Total spans dropped to ring overflow, across all threads.
pub fn dropped_spans() -> u64 {
    let buffers = BUFFERS.lock().unwrap_or_else(|p| p.into_inner());
    buffers
        .iter()
        .map(|b| b.lock().unwrap_or_else(|p| p.into_inner()).dropped)
        .sum()
}

/// Clears all recorded spans and drop counts (buffers stay registered).
pub fn reset_trace() {
    let buffers = BUFFERS.lock().unwrap_or_else(|p| p.into_inner());
    for buf in buffers.iter() {
        let mut b = buf.lock().unwrap_or_else(|p| p.into_inner());
        b.ring.clear();
        b.dropped = 0;
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `(name, cat, tid)` identity of an event being emitted.
type EventId<'a> = (&'a str, &'a str, u64);

fn push_event(
    out: &mut String,
    first: &mut bool,
    ph: char,
    id: EventId,
    ts_ns: u64,
    arg: Option<&str>,
) {
    let (name, cat, tid) = id;
    if !*first {
        out.push(',');
    }
    *first = false;
    // Chrome trace timestamps are microseconds; keep ns precision via
    // the fractional part.
    let whole = ts_ns / 1_000;
    let frac = ts_ns % 1_000;
    out.push_str("{\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"name\":\"");
    escape_json(name, out);
    out.push_str("\",\"cat\":\"");
    escape_json(cat, out);
    out.push_str("\",\"pid\":1,\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&format!("{whole}.{frac:03}"));
    if let Some(arg) = arg {
        out.push_str(",\"args\":{\"detail\":\"");
        escape_json(arg, out);
        out.push_str("\"}");
    }
    out.push('}');
}

/// Renders spans as Chrome trace-event JSON (`{"traceEvents": [...]}`)
/// with balanced `B`/`E` duration events per thread.
///
/// Guards nest like a stack on their thread, so sorting a thread's
/// spans by `(start asc, dur desc)` visits parents before children; an
/// explicit stack then closes every enclosing span whose end precedes
/// the next start, which keeps B/E events balanced even when the ring
/// dropped old spans.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by(|a, b| (a.tid, a.start_ns, b.dur_ns).cmp(&(b.tid, b.start_ns, a.dur_ns)));

    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Stack of (name, cat, tid, end_ns) for currently-open spans.
    let mut open: Vec<(&str, &str, u64, u64)> = Vec::new();
    let mut cur_tid: Option<u64> = None;

    for rec in sorted {
        if cur_tid != Some(rec.tid) {
            while let Some((name, cat, tid, end)) = open.pop() {
                push_event(&mut out, &mut first, 'E', (name, cat, tid), end, None);
            }
            cur_tid = Some(rec.tid);
        }
        let end_ns = rec.start_ns.saturating_add(rec.dur_ns);
        while let Some(&(name, cat, tid, open_end)) = open.last() {
            if open_end <= rec.start_ns {
                push_event(&mut out, &mut first, 'E', (name, cat, tid), open_end, None);
                open.pop();
            } else {
                break;
            }
        }
        push_event(
            &mut out,
            &mut first,
            'B',
            (rec.name, rec.cat, rec.tid),
            rec.start_ns,
            rec.arg.as_deref(),
        );
        open.push((rec.name, rec.cat, rec.tid, end_ns));
    }
    while let Some((name, cat, tid, end)) = open.pop() {
        push_event(&mut out, &mut first, 'E', (name, cat, tid), end, None);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tid: u64, start_ns: u64, dur_ns: u64, name: &'static str) -> SpanRecord {
        SpanRecord {
            name,
            cat: "test",
            tid,
            start_ns,
            dur_ns,
            arg: None,
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut buf = ThreadBuf {
            tid: 0,
            ring: VecDeque::new(),
            capacity: 2,
            dropped: 0,
        };
        buf.push(rec(0, 0, 1, "a"));
        buf.push(rec(0, 1, 1, "b"));
        buf.push(rec(0, 2, 1, "c"));
        assert_eq!(buf.dropped, 1);
        let names: Vec<_> = buf.ring.iter().map(|r| r.name).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn chrome_export_balances_nested_spans() {
        // outer [0, 100] wraps inner [10, 30] and inner2 [40, 80].
        let spans = [
            rec(3, 10, 20, "inner"),
            rec(3, 0, 100, "outer"),
            rec(3, 40, 40, "inner2"),
        ];
        let json = chrome_trace_json(&spans);
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 3);
        assert_eq!(e, 3);
        // Nesting order: outer opens first, closes last.
        let first_b = json.find("\"ph\":\"B\"").unwrap();
        assert!(json[first_b..]
            .trim_start_matches("\"ph\":\"B\",\"name\":\"")
            .starts_with("outer"));
        assert!(json.ends_with("]}"));
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn chrome_export_separates_tids() {
        let spans = [rec(1, 0, 10, "a"), rec(2, 5, 10, "b")];
        let json = chrome_trace_json(&spans);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn spans_record_through_ring_and_drain() {
        let _guard = crate::metrics::test_lock();
        reset_trace();
        crate::set_trace_enabled(true);
        {
            let _outer = span("test.outer", "test");
            let _inner = span_with("test.inner", "test", || "detail".to_string());
        }
        crate::set_trace_enabled(false);
        let spans = drain_trace();
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(inner.arg.as_deref(), Some("detail"));
        assert_eq!(inner.tid, outer.tid);
        let json = chrome_trace_json(&spans);
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        reset_trace();
        assert!(drain_trace().is_empty());
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = crate::metrics::test_lock();
        reset_trace();
        crate::set_trace_enabled(false);
        {
            let _s = span("test.never", "test");
        }
        assert!(drain_trace().iter().all(|s| s.name != "test.never"));
    }

    #[test]
    fn escape_handles_control_chars() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
