//! Deterministic fault injection for the sweep engine and service.
//!
//! Two fault families live here, both fully seeded so that any injected
//! fault is byte-reproducible at any thread count:
//!
//! * **Environment faults** — [`DropoutSpec`]: the *environment* (a lossy
//!   actuator, a weakly-hard execution platform) forces the control input
//!   to be dropped on some steps regardless of what the skipping policy
//!   decided. Bernoulli(p) dropout draws per-step from a stream seeded by
//!   the episode seed; weakly-hard `(m, k)` dropout applies the canonical
//!   worst-case pattern (the first `m` steps of every window of `k` are
//!   dropped). A dropout spec is a sweep-grid *axis*: the same
//!   (scenario, policy) cell can be evaluated under several dropout
//!   regimes with identical per-episode seeds, so results are paired.
//!
//! * **Infrastructure faults** — [`FaultPlan`]: a seeded plan that
//!   deterministically assigns per-cell faults (a worker panic inside one
//!   episode, a NaN injected into one plant update) keyed off the cell
//!   hash, plus a helper to corrupt on-disk cache files for chaos tests.
//!   The plan decides from `(plan seed, cell hash)` alone — never from
//!   scheduling order — so the set of faulted cells is identical at 1 and
//!   8 threads.
//!
//! The crate is dependency-free (pure `std`) and deliberately does **not**
//! depend on the engine: the engine depends on it.

use std::fmt;

/// Environment-forced actuation dropout applied to every episode of a
/// sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DropoutSpec {
    /// No dropout: the actuator applies every commanded input (the
    /// default axis value; cells carry no dropout fields in reports).
    None,
    /// Each step independently drops the commanded input with
    /// probability `p`, drawn from a per-episode deterministic stream.
    Bernoulli {
        /// Per-step drop probability, in `(0, 1]`.
        p: f64,
    },
    /// Weakly-hard `(m, k)` execution: in every window of `k`
    /// consecutive steps, exactly the first `m` are dropped — the
    /// canonical worst-case pattern for an "at most `m` misses in any
    /// `k`" platform guarantee.
    WeaklyHard {
        /// Dropped steps per window, `1 ≤ m ≤ k`.
        m: u32,
        /// Window length in steps.
        k: u32,
    },
}

/// Error parsing or validating a [`DropoutSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropoutParseError(pub String);

impl fmt::Display for DropoutParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dropout spec: {}", self.0)
    }
}

impl std::error::Error for DropoutParseError {}

impl DropoutSpec {
    /// Canonical wire label: `none`, `bernoulli-<p>`, `mk-<m>-<k>`.
    ///
    /// `p` prints via Rust's shortest-roundtrip float formatting, so
    /// `parse(label()) == self` for every valid spec.
    pub fn label(&self) -> String {
        match self {
            DropoutSpec::None => "none".to_string(),
            DropoutSpec::Bernoulli { p } => format!("bernoulli-{p}"),
            DropoutSpec::WeaklyHard { m, k } => format!("mk-{m}-{k}"),
        }
    }

    /// Parses a canonical label back into a spec and validates it.
    ///
    /// # Errors
    ///
    /// Rejects unknown forms, `p` outside `(0, 1]`, non-finite `p`, and
    /// `(m, k)` with `m < 1` or `m > k`.
    pub fn parse(label: &str) -> Result<Self, DropoutParseError> {
        let spec = if label == "none" {
            DropoutSpec::None
        } else if let Some(rest) = label.strip_prefix("bernoulli-") {
            let p: f64 = rest
                .parse()
                .map_err(|_| DropoutParseError(format!("bad probability in {label:?}")))?;
            DropoutSpec::Bernoulli { p }
        } else if let Some(rest) = label.strip_prefix("mk-") {
            let (m, k) = rest
                .split_once('-')
                .ok_or_else(|| DropoutParseError(format!("expected mk-<m>-<k>, got {label:?}")))?;
            let m: u32 = m
                .parse()
                .map_err(|_| DropoutParseError(format!("bad m in {label:?}")))?;
            let k: u32 = k
                .parse()
                .map_err(|_| DropoutParseError(format!("bad k in {label:?}")))?;
            DropoutSpec::WeaklyHard { m, k }
        } else {
            return Err(DropoutParseError(format!("unknown dropout spec {label:?}")));
        };
        spec.validate()?;
        // Reject non-canonical spellings (`bernoulli-0.50`, `mk-01-5`)
        // so a label is usable as a hash key.
        if spec.label() != label {
            return Err(DropoutParseError(format!(
                "non-canonical dropout label {label:?} (canonical: {:?})",
                spec.label()
            )));
        }
        Ok(spec)
    }

    /// Validates the parameters without parsing.
    ///
    /// # Errors
    ///
    /// See [`DropoutSpec::parse`].
    pub fn validate(&self) -> Result<(), DropoutParseError> {
        match *self {
            DropoutSpec::None => Ok(()),
            DropoutSpec::Bernoulli { p } => {
                if p.is_finite() && p > 0.0 && p <= 1.0 {
                    Ok(())
                } else {
                    Err(DropoutParseError(format!(
                        "bernoulli p must be in (0, 1], got {p}"
                    )))
                }
            }
            DropoutSpec::WeaklyHard { m, k } => {
                if m >= 1 && m <= k {
                    Ok(())
                } else {
                    Err(DropoutParseError(format!(
                        "weakly-hard (m, k) needs 1 <= m <= k, got ({m}, {k})"
                    )))
                }
            }
        }
    }

    /// Whether this spec ever drops an input.
    pub fn is_none(&self) -> bool {
        matches!(self, DropoutSpec::None)
    }

    /// Per-episode dropout stream. `episode_seed` is the engine's
    /// deterministic episode seed, so the drop pattern depends only on
    /// the cell identity and episode index — never on scheduling.
    pub fn stream(&self, episode_seed: u64) -> DropoutStream {
        DropoutStream {
            spec: *self,
            rng: SplitMix64::new(episode_seed ^ 0x6f69_632d_6472_6f70), // "oic-drop"
            step: 0,
        }
    }
}

/// Step-by-step dropout decisions for one episode (see
/// [`DropoutSpec::stream`]).
#[derive(Debug, Clone)]
pub struct DropoutStream {
    spec: DropoutSpec,
    rng: SplitMix64,
    step: u64,
}

impl DropoutStream {
    /// Returns `true` when the actuator drops the commanded input on the
    /// next step. Must be called exactly once per step, in step order:
    /// the Bernoulli stream advances one draw per call.
    pub fn dropped(&mut self) -> bool {
        let step = self.step;
        self.step += 1;
        match self.spec {
            DropoutSpec::None => false,
            DropoutSpec::Bernoulli { p } => self.rng.next_f64() < p,
            DropoutSpec::WeaklyHard { m, k } => step % u64::from(k) < u64::from(m),
        }
    }
}

/// Deterministic per-cell infrastructure fault assignment.
///
/// Rates are probabilities over cells: each cell draws once (from the
/// plan seed and the cell hash) and is assigned at most one fault —
/// panic first, then NaN injection. Episode and step indices for the
/// fault site come from the same per-cell stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Plan seed; two plans with the same seed and rates fault the same
    /// cells.
    pub seed: u64,
    /// Fraction of cells whose execution panics mid-episode.
    pub panic_rate: f64,
    /// Fraction of cells that get a NaN injected into one plant update.
    pub nan_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a CLI default).
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            panic_rate: 0.0,
            nan_rate: 0.0,
        }
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns a message when a rate is non-finite, negative, or the
    /// rates sum above 1.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [("panic_rate", self.panic_rate), ("nan_rate", self.nan_rate)] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if self.panic_rate + self.nan_rate > 1.0 {
            return Err(format!(
                "panic_rate + nan_rate must not exceed 1 (got {})",
                self.panic_rate + self.nan_rate
            ));
        }
        Ok(())
    }

    /// The fault (if any) assigned to the cell with content hash
    /// `cell_hash` running `episodes × steps` work. Pure function of
    /// `(self, cell_hash, episodes, steps)`.
    pub fn cell_fault(&self, cell_hash: &[u8; 32], episodes: usize, steps: usize) -> CellFault {
        if (self.panic_rate <= 0.0 && self.nan_rate <= 0.0) || episodes == 0 || steps == 0 {
            return CellFault::None;
        }
        let mut rng = SplitMix64::new(self.seed ^ fnv1a64(cell_hash));
        let draw = rng.next_f64();
        if draw < self.panic_rate {
            CellFault::Panic {
                episode: (rng.next_u64() % episodes as u64) as usize,
            }
        } else if draw < self.panic_rate + self.nan_rate {
            CellFault::Nan {
                episode: (rng.next_u64() % episodes as u64) as usize,
                step: (rng.next_u64() % steps as u64) as usize,
            }
        } else {
            CellFault::None
        }
    }
}

/// One cell's assigned infrastructure fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// The cell runs clean.
    None,
    /// The worker panics at the start of the given episode.
    Panic {
        /// Episode index (within the cell) that panics.
        episode: usize,
    },
    /// One plant update returns NaN at the given episode and step.
    Nan {
        /// Episode index (within the cell) that diverges.
        episode: usize,
        /// Step index within that episode.
        step: usize,
    },
}

/// Flips one deterministic byte of `path` in place (seeded by `seed` and
/// the file length) — the chaos-test half of disk-cache corruption.
/// Returns the flipped offset.
///
/// # Errors
///
/// Propagates I/O errors; refuses to corrupt an empty file.
pub fn corrupt_file(path: &std::path::Path, seed: u64) -> std::io::Result<u64> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "refusing to corrupt an empty file",
        ));
    }
    let mut rng = SplitMix64::new(seed ^ bytes.len() as u64);
    let offset = (rng.next_u64() % bytes.len() as u64) as usize;
    bytes[offset] ^= 0x55;
    std::fs::write(path, bytes)?;
    Ok(offset as u64)
}

/// SplitMix64: tiny, high-quality, dependency-free PRNG used for every
/// fault decision (Steele et al., "Fast splittable pseudorandom number
/// generators").
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over arbitrary bytes (folds the 32-byte cell hash into the
/// plan RNG seed).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for spec in [
            DropoutSpec::None,
            DropoutSpec::Bernoulli { p: 0.25 },
            DropoutSpec::Bernoulli { p: 1.0 },
            DropoutSpec::WeaklyHard { m: 1, k: 5 },
            DropoutSpec::WeaklyHard { m: 3, k: 3 },
        ] {
            assert_eq!(DropoutSpec::parse(&spec.label()), Ok(spec));
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for label in [
            "bernoulli-0",
            "bernoulli-0.0",
            "bernoulli-1.5",
            "bernoulli-NaN",
            "mk-0-5",
            "mk-4-3",
            "mk-1",
            "mk-01-5",
            "bernoulli-0.50",
            "gauss-0.1",
            "",
        ] {
            assert!(DropoutSpec::parse(label).is_err(), "{label:?} must fail");
        }
    }

    #[test]
    fn weakly_hard_pattern_is_the_worst_case_prefix() {
        let mut stream = DropoutSpec::WeaklyHard { m: 2, k: 5 }.stream(123);
        let pattern: Vec<bool> = (0..10).map(|_| stream.dropped()).collect();
        assert_eq!(
            pattern,
            [true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn bernoulli_stream_is_seed_deterministic_and_roughly_calibrated() {
        let draws = |seed: u64| -> Vec<bool> {
            let mut s = DropoutSpec::Bernoulli { p: 0.3 }.stream(seed);
            (0..2000).map(|_| s.dropped()).collect()
        };
        assert_eq!(draws(7), draws(7), "same seed, same stream");
        assert_ne!(draws(7), draws(8), "different seeds diverge");
        let rate = draws(7).iter().filter(|&&d| d).count() as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn none_never_drops() {
        let mut stream = DropoutSpec::None.stream(99);
        assert!((0..100).all(|_| !stream.dropped()));
    }

    #[test]
    fn fault_plan_is_a_pure_function_of_cell_hash() {
        let plan = FaultPlan {
            seed: 42,
            panic_rate: 0.5,
            nan_rate: 0.3,
        };
        plan.validate().expect("valid plan");
        let hash_a = [1u8; 32];
        let hash_b = [2u8; 32];
        assert_eq!(
            plan.cell_fault(&hash_a, 100, 50),
            plan.cell_fault(&hash_a, 100, 50)
        );
        // With these rates some hash must differ in assignment; check the
        // two chosen ones land on in-range sites whatever they are.
        for hash in [hash_a, hash_b] {
            match plan.cell_fault(&hash, 100, 50) {
                CellFault::None => {}
                CellFault::Panic { episode } => assert!(episode < 100),
                CellFault::Nan { episode, step } => {
                    assert!(episode < 100 && step < 50);
                }
            }
        }
    }

    #[test]
    fn disabled_plan_never_faults() {
        let plan = FaultPlan::disabled();
        for byte in 0..=255u8 {
            assert_eq!(plan.cell_fault(&[byte; 32], 10, 10), CellFault::None);
        }
    }

    #[test]
    fn rates_partition_cells() {
        // With panic 0.5 / nan 0.5 every cell is faulted, and both kinds
        // appear across a spread of hashes.
        let plan = FaultPlan {
            seed: 7,
            panic_rate: 0.5,
            nan_rate: 0.5,
        };
        let mut panics = 0usize;
        let mut nans = 0usize;
        for byte in 0..=255u8 {
            match plan.cell_fault(&[byte; 32], 10, 10) {
                CellFault::None => panic!("rates sum to 1, no cell may run clean"),
                CellFault::Panic { .. } => panics += 1,
                CellFault::Nan { .. } => nans += 1,
            }
        }
        assert!(panics > 50 && nans > 50, "panics={panics} nans={nans}");
    }

    #[test]
    fn invalid_plans_are_rejected() {
        for plan in [
            FaultPlan {
                seed: 0,
                panic_rate: -0.1,
                nan_rate: 0.0,
            },
            FaultPlan {
                seed: 0,
                panic_rate: 0.7,
                nan_rate: 0.7,
            },
            FaultPlan {
                seed: 0,
                panic_rate: f64::NAN,
                nan_rate: 0.0,
            },
        ] {
            assert!(plan.validate().is_err(), "{plan:?} must fail validation");
        }
    }

    #[test]
    fn corrupt_file_flips_exactly_one_byte() {
        let dir = std::env::temp_dir().join(format!("oic-faults-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("victim.bin");
        let original = vec![0xAAu8; 64];
        std::fs::write(&path, &original).expect("write");
        let offset = corrupt_file(&path, 99).expect("corrupt") as usize;
        let corrupted = std::fs::read(&path).expect("read back");
        assert_eq!(corrupted.len(), original.len());
        let diffs: Vec<usize> = (0..64).filter(|&i| corrupted[i] != original[i]).collect();
        assert_eq!(diffs, [offset]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
