//! Property-based tests of the dense linear-algebra layer.

use oic_linalg::{vec_ops, LuDecomposition, Matrix};
use proptest::prelude::*;

fn square3() -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, 9).prop_map(|data| Matrix::from_vec(3, 3, data))
}

fn vec3() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LU solve: A · solve(A, b) = b for well-conditioned A.
    #[test]
    fn lu_solve_residual_is_small(a in square3(), b in vec3()) {
        if let Ok(lu) = LuDecomposition::new(&a) {
            // Skip nearly singular matrices where residuals blow up.
            prop_assume!(lu.det().abs() > 1e-3);
            let x = lu.solve(&b).expect("solve after factorization");
            let ax = a.mul_vec(&x);
            for (l, r) in ax.iter().zip(&b) {
                prop_assert!((l - r).abs() < 1e-6, "residual too large: {ax:?} vs {b:?}");
            }
        }
    }

    /// Inverse: A · A⁻¹ ≈ I.
    #[test]
    fn inverse_is_right_inverse(a in square3()) {
        if let Ok(lu) = LuDecomposition::new(&a) {
            prop_assume!(lu.det().abs() > 1e-3);
            let inv = lu.inverse().expect("inverse after factorization");
            let prod = &a * &inv;
            prop_assert!(prod.approx_eq(&Matrix::identity(3), 1e-6));
        }
    }

    /// det(Aᵀ) = det(A).
    #[test]
    fn determinant_of_transpose(a in square3()) {
        let da = LuDecomposition::new(&a).map(|l| l.det());
        let dt = LuDecomposition::new(&a.transpose()).map(|l| l.det());
        if let (Ok(da), Ok(dt)) = (da, dt) {
            prop_assert!((da - dt).abs() < 1e-6 * da.abs().max(1.0));
        }
    }

    /// Matrix product is associative on these sizes.
    #[test]
    fn product_associativity(a in square3(), b in square3(), c in square3()) {
        let left = &(&a * &b) * &c;
        let right = &a * &(&b * &c);
        prop_assert!(left.approx_eq(&right, 1e-7));
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_of_product(a in square3(), b in square3()) {
        let lhs = (&a * &b).transpose();
        let rhs = &b.transpose() * &a.transpose();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    /// mul_vec is linear: A(αx + y) = αAx + Ay.
    #[test]
    fn matvec_linearity(a in square3(), x in vec3(), y in vec3(), alpha in -3.0f64..3.0) {
        let axy = a.mul_vec(&vec_ops::add(&vec_ops::scale(&x, alpha), &y));
        let expect = vec_ops::add(&vec_ops::scale(&a.mul_vec(&x), alpha), &a.mul_vec(&y));
        prop_assert!(vec_ops::approx_eq(&axy, &expect, 1e-8));
    }

    /// Triangle inequality for the vector norms.
    #[test]
    fn norm_triangle_inequality(x in vec3(), y in vec3()) {
        let s = vec_ops::add(&x, &y);
        prop_assert!(vec_ops::norm1(&s) <= vec_ops::norm1(&x) + vec_ops::norm1(&y) + 1e-12);
        prop_assert!(vec_ops::norm2(&s) <= vec_ops::norm2(&x) + vec_ops::norm2(&y) + 1e-12);
        prop_assert!(
            vec_ops::norm_inf(&s) <= vec_ops::norm_inf(&x) + vec_ops::norm_inf(&y) + 1e-12
        );
    }

    /// Matrix power agrees with repeated products.
    #[test]
    fn power_agrees_with_products(a in square3(), k in 0usize..5) {
        let mut expect = Matrix::identity(3);
        for _ in 0..k {
            expect = &expect * &a;
        }
        prop_assert!(a.pow(k).approx_eq(&expect, 1e-6 * a.max_abs().powi(k as i32).max(1.0)));
    }
}
