//! Dense row-major matrix type.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64` entries.
///
/// `Matrix` is the workhorse of the workspace: system matrices `A`, `B`,
/// feedback gains `K`, and polytope normal stacks are all `Matrix` values.
///
/// # Examples
///
/// ```
/// use oic_linalg::Matrix;
///
/// let a = Matrix::identity(2);
/// let b = Matrix::from_rows(&[&[0.0], &[0.1]]);
/// assert_eq!(a.rows(), 2);
/// assert_eq!(b.cols(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// use oic_linalg::Matrix;
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// assert_eq!(a[(1, 0)], 3.0);
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let mut m = Self::zeros(entries.len(), entries.len());
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Creates a single-column matrix from a vector.
    pub fn column(v: &[f64]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Multiplies the matrix by a vector: `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must match column count");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        y
    }

    /// Multiplies a row vector by the matrix: `yᵀ = xᵀ A`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vector length must match row count");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                y[j] += xi * self[(i, j)];
            }
        }
        y
    }

    /// Returns the matrix scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Returns `A^k` (matrix power by repeated squaring).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn pow(&self, k: usize) -> Matrix {
        assert!(self.is_square(), "matrix power requires a square matrix");
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        let mut e = k;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        result
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Horizontally stacks `self` and `other` (`[self | other]`).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        let mut m = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(i, j)] = self[(i, j)];
            }
            for j in 0..other.cols {
                m[(i, self.cols + j)] = other[(i, j)];
            }
        }
        m
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Returns `true` when every entry of `self` is within `tol` of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in matrix addition");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in matrix addition");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in matrix subtraction");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in matrix subtraction");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matrix product");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn mul_vec_matches_manual_computation() {
        let a = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let y = a.mul_vec(&[2.0, 3.0]);
        assert!((y[0] - 1.7).abs() < 1e-12);
        assert!((y[1] - 2.94).abs() < 1e-12);
    }

    #[test]
    fn vec_mul_is_transpose_mul_vec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [7.0, 8.0];
        let lhs = a.vec_mul(&x);
        let rhs = a.transpose().mul_vec(&x);
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let a5 = a.pow(5);
        assert!((a5[(0, 1)] - 5.0).abs() < 1e-12);
        assert_eq!(a.pow(0), Matrix::identity(2));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 3);
        let h = a.hstack(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        let c = Matrix::zeros(4, 2);
        let v = a.vstack(&c);
        assert_eq!((v.rows(), v.cols()), (6, 2));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        let sum = &a + &b;
        assert_eq!(sum, Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]));
        let diff = &sum - &b;
        assert!(diff.approx_eq(&a, 1e-14));
        let neg = -&a;
        assert_eq!(neg[(1, 1)], -4.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_add_panics() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        let _ = &a + &b;
    }

    #[test]
    fn diag_and_column_constructors() {
        let d = Matrix::diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let c = Matrix::column(&[5.0, 6.0]);
        assert_eq!((c.rows(), c.cols()), (2, 1));
    }
}
