//! Free functions on `&[f64]` vectors.
//!
//! Vectors throughout the workspace are plain `Vec<f64>` / `&[f64]`; these
//! helpers keep call sites short without introducing a newtype that every
//! crate would have to unwrap.
//!
//! # Examples
//!
//! ```
//! use oic_linalg::vec_ops;
//!
//! assert_eq!(vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
//! assert_eq!(vec_ops::norm1(&[3.0, -4.0]), 7.0);
//! ```

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Elementwise sum `a + b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector addition requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "vector subtraction requires equal lengths"
    );
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Vector scaled by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// 1-norm `Σ|aᵢ|` — the paper's actuation-energy measure `‖u‖₁`.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// 2-norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// ∞-norm `max|aᵢ|`.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Returns `true` when each component differs by at most `tol`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    assert_eq!(a.len(), b.len(), "comparison requires equal lengths");
    a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, -2.0, 2.0];
        assert_eq!(dot(&a, &a), 9.0);
        assert_eq!(norm1(&a), 5.0);
        assert_eq!(norm2(&a), 3.0);
        assert_eq!(norm_inf(&a), 2.0);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = [1.0, 2.0];
        let b = [3.0, -1.0];
        let s = add(&a, &b);
        let back = sub(&s, &b);
        assert!(approx_eq(&back, &a, 1e-15));
        assert_eq!(scale(&a, 2.0), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_dot_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
