//! Spectral-radius estimation used for closed-loop stability checks.

use crate::Matrix;

/// Estimates the spectral radius `ρ(A)` (largest eigenvalue magnitude).
///
/// Uses the Gelfand formula `ρ(A) = lim ‖A^k‖^{1/k}` evaluated at a large
/// power, which converges for every square matrix and — unlike plain power
/// iteration on a single vector — is robust to complex-conjugate dominant
/// eigenpairs such as those of oscillatory closed loops.
///
/// The result is accurate to a few percent, which is all the workspace needs:
/// stability margins here are either clearly below 1 (e.g. `ρ(A+BK) ≈ 0.9`)
/// or clearly at/above 1.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use oic_linalg::{spectral_radius, Matrix};
///
/// let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, -0.25]]);
/// assert!((spectral_radius(&a) - 0.5).abs() < 0.02);
/// ```
pub fn spectral_radius(a: &Matrix) -> f64 {
    assert!(a.is_square(), "spectral radius requires a square matrix");
    // Scale the matrix so powers neither overflow nor underflow, then apply
    // Gelfand's formula: rho(A) = s * rho(A/s) = s * ||(A/s)^k||^(1/k).
    let scale = a.max_abs();
    if scale == 0.0 {
        return 0.0;
    }
    let normalized = a.scale(1.0 / scale);
    let k: usize = 64;
    let pk = normalized.pow(k);
    let norm = pk.frobenius_norm();
    if norm == 0.0 {
        // Nilpotent to machine precision.
        return 0.0;
    }
    scale * norm.powf(1.0 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_radius_is_max_abs_eigenvalue() {
        let a = Matrix::diag(&[0.3, -0.9, 0.1]);
        assert!((spectral_radius(&a) - 0.9).abs() < 0.02);
    }

    #[test]
    fn rotation_scaled_matrix() {
        // 0.8 * rotation has complex eigenvalues of magnitude 0.8.
        let c = 0.8 * (0.3f64).cos();
        let s = 0.8 * (0.3f64).sin();
        let a = Matrix::from_rows(&[&[c, -s], &[s, c]]);
        assert!((spectral_radius(&a) - 0.8).abs() < 0.02);
    }

    #[test]
    fn zero_matrix_has_zero_radius() {
        let a = Matrix::zeros(3, 3);
        assert_eq!(spectral_radius(&a), 0.0);
    }

    #[test]
    fn unstable_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.1, 0.0], &[0.0, 0.2]]);
        assert!(spectral_radius(&a) > 1.05);
    }

    #[test]
    fn nilpotent_matrix_radius_zero() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!(spectral_radius(&a) < 1e-6);
    }

    #[test]
    fn acc_closed_loop_is_stable() {
        // The ACC case-study A matrix is marginally stable (eigenvalues 1 and
        // 0.98); spectral radius should be ~1.
        let a = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let r = spectral_radius(&a);
        assert!((r - 1.0).abs() < 0.05, "rho = {r}");
    }
}
