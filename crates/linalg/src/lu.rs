//! LU factorization with partial pivoting.

use std::error::Error;
use std::fmt;

use crate::Matrix;

/// Error returned when a factorization or solve encounters a (numerically)
/// singular matrix.
///
/// # Examples
///
/// ```
/// use oic_linalg::{LuDecomposition, Matrix};
///
/// let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
/// assert!(LuDecomposition::new(&singular).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl Error for SingularMatrixError {}

/// LU factorization `PA = LU` with partial pivoting.
///
/// Factor once, then solve any number of right-hand sides, compute the
/// inverse, or evaluate the determinant.
///
/// # Examples
///
/// ```
/// use oic_linalg::{LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), oic_linalg::SingularMatrixError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strict lower, unit diagonal implicit) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

const PIVOT_TOL: f64 = 1e-12;

impl LuDecomposition {
    /// Factorizes the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot smaller than `1e-12` in
    /// magnitude is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, SingularMatrixError> {
        assert!(a.is_square(), "LU factorization requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOL {
                return Err(SingularMatrixError);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let upd = lu[(k, j)] * factor;
                    lu[(i, j)] -= upd;
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Never fails after a successful factorization; the `Result` mirrors the
    /// factorization API so call sites can use `?` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "right-hand side length must match dimension");
        // Apply permutation.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        // Forward substitution with unit lower-triangular L.
        for i in 1..n {
            let acc: f64 = y[..i]
                .iter()
                .enumerate()
                .map(|(j, yj)| self.lu[(i, j)] * yj)
                .sum();
            y[i] -= acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let acc: f64 = y[i + 1..]
                .iter()
                .enumerate()
                .map(|(k, yj)| self.lu[(i, i + 1 + k)] * yj)
                .sum();
            y[i] = (y[i] - acc) / self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Computes the matrix inverse.
    ///
    /// # Errors
    ///
    /// Never fails after a successful factorization (see [`Self::solve`]).
    pub fn inverse(&self) -> Result<Matrix, SingularMatrixError> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = &a * &inv;
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn determinant_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Row-swapped identity has determinant -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), SingularMatrixError);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
