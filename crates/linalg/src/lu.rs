//! LU factorization with partial pivoting.

use std::error::Error;
use std::fmt;

use crate::Matrix;

/// Error returned when a factorization or solve encounters a (numerically)
/// singular matrix.
///
/// # Examples
///
/// ```
/// use oic_linalg::{LuDecomposition, Matrix};
///
/// let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
/// assert!(LuDecomposition::new(&singular).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl Error for SingularMatrixError {}

/// LU factorization `PA = LU` with partial pivoting.
///
/// Factor once, then solve any number of right-hand sides, compute the
/// inverse, or evaluate the determinant.
///
/// # Examples
///
/// ```
/// use oic_linalg::{LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), oic_linalg::SingularMatrixError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strict lower, unit diagonal implicit) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

const PIVOT_TOL: f64 = 1e-12;

impl LuDecomposition {
    /// Factorizes the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot smaller than `1e-12` in
    /// magnitude is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, SingularMatrixError> {
        assert!(a.is_square(), "LU factorization requires a square matrix");
        let n = a.rows();
        let mut lu = Self {
            lu: a.clone(),
            perm: (0..n).collect(),
            perm_sign: 1.0,
        };
        lu.factorize_in_place()?;
        Ok(lu)
    }

    /// Re-factorizes `a` **in place**, reusing this decomposition's storage.
    ///
    /// This is the refactorization hook for iterative callers (the revised
    /// simplex re-factorizes its basis every few dozen pivots): no fresh
    /// allocation happens when `a` has the same dimension.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the matrix is singular; the
    /// decomposition is left in an unspecified (but safely re-usable via
    /// another `refactor`) state in that case.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or differs in dimension.
    pub fn refactor(&mut self, a: &Matrix) -> Result<(), SingularMatrixError> {
        assert!(a.is_square(), "LU factorization requires a square matrix");
        assert_eq!(a.rows(), self.lu.rows(), "refactor dimension mismatch");
        self.lu.clone_from(a);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.perm_sign = 1.0;
        self.factorize_in_place()
    }

    fn factorize_in_place(&mut self) -> Result<(), SingularMatrixError> {
        let n = self.lu.rows();
        let lu = &mut self.lu;
        let perm = &mut self.perm;
        let perm_sign = &mut self.perm_sign;

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOL {
                return Err(SingularMatrixError);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                *perm_sign = -*perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                // Skip structural zeros: basis matrices from simplex solves
                // are mostly unit/slack columns, and eliminating exact
                // zeros is the bulk of an O(n³) dense sweep there.
                if lu[(i, k)] == 0.0 {
                    continue;
                }
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let upd = lu[(k, j)] * factor;
                    lu[(i, j)] -= upd;
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Never fails after a successful factorization; the `Result` mirrors the
    /// factorization API so call sites can use `?` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "right-hand side length must match dimension");
        let mut y = vec![0.0; n];
        self.solve_into(b, &mut y);
        Ok(y)
    }

    /// Solves `A x = b`, writing `x` into `out` — the allocation-free
    /// variant for hot loops (the revised simplex FTRAN).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `out.len()` differ from the dimension.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "right-hand side length must match dimension");
        assert_eq!(out.len(), n, "output length must match dimension");
        // Apply permutation.
        for (i, o) in out.iter_mut().enumerate() {
            *o = b[self.perm[i]];
        }
        // Forward substitution with unit lower-triangular L, dotting each
        // contiguous row slice (indexed `(i, j)` access in these O(n²)
        // loops dominated simplex FTRAN cost).
        for i in 1..n {
            let row = self.lu.row(i);
            let acc: f64 = row[..i].iter().zip(out.iter()).map(|(l, y)| l * y).sum();
            out[i] -= acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let acc: f64 = row[i + 1..]
                .iter()
                .zip(out[i + 1..].iter())
                .map(|(u, y)| u * y)
                .sum();
            out[i] = (out[i] - acc) / row[i];
        }
    }

    /// Solves the transposed system `Aᵀ x = c`, writing `x` into `out` —
    /// the revised simplex BTRAN (`Bᵀ y = c_B` pricing solve).
    ///
    /// With `PA = LU`: `Aᵀ = Uᵀ Lᵀ P`, so solve `Uᵀ z = c` (forward),
    /// `Lᵀ w = z` (backward), then un-permute `x[perm[i]] = w[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len()` or `out.len()` differ from the dimension.
    pub fn solve_transposed_into(&self, c: &[f64], out: &mut [f64]) {
        let n = self.lu.rows();
        assert_eq!(c.len(), n, "right-hand side length must match dimension");
        assert_eq!(out.len(), n, "output length must match dimension");
        // Column-sweep substitutions: naive Uᵀ/Lᵀ forward/backward loops
        // walk *columns* of the row-major storage (strided); sweeping with
        // the finished component instead touches each row slice
        // contiguously and skips zero multipliers.
        let mut w = c.to_vec();
        // Uᵀ w' = c (Uᵀ is lower-triangular): once w[j] is final, subtract
        // its contribution U[j][i]·w[j] from every later component.
        for j in 0..n {
            let row = self.lu.row(j);
            let wj = w[j] / row[j];
            w[j] = wj;
            if wj != 0.0 {
                for (wi, u) in w[j + 1..].iter_mut().zip(&row[j + 1..]) {
                    *wi -= u * wj;
                }
            }
        }
        // Lᵀ z = w (Lᵀ is unit upper-triangular): sweep from the end.
        for j in (0..n).rev() {
            let zj = w[j];
            if zj != 0.0 {
                let row = self.lu.row(j);
                for (zi, l) in w[..j].iter_mut().zip(&row[..j]) {
                    *zi -= l * zj;
                }
            }
        }
        // x = Pᵀ w.
        for (i, wi) in w.iter().enumerate() {
            out[self.perm[i]] = *wi;
        }
    }

    /// Solves `Aᵀ x = c` (allocating convenience wrapper over
    /// [`solve_transposed_into`](Self::solve_transposed_into)).
    ///
    /// # Errors
    ///
    /// Never fails after a successful factorization (see [`Self::solve`]).
    pub fn solve_transposed(&self, c: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        let mut out = vec![0.0; self.lu.rows()];
        self.solve_transposed_into(c, &mut out);
        Ok(out)
    }

    /// Computes the matrix inverse.
    ///
    /// # Errors
    ///
    /// Never fails after a successful factorization (see [`Self::solve`]).
    pub fn inverse(&self) -> Result<Matrix, SingularMatrixError> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = &a * &inv;
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn determinant_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Row-swapped identity has determinant -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), SingularMatrixError);
    }

    #[test]
    fn transpose_solve_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let c = [1.0, -2.0, 0.5];
        let x = lu.solve_transposed(&c).unwrap();
        // Check Aᵀ x = c directly.
        for j in 0..3 {
            let acc: f64 = (0..3).map(|i| a[(i, j)] * x[i]).sum();
            assert!((acc - c[j]).abs() < 1e-10, "col {j}: {acc} vs {}", c[j]);
        }
    }

    #[test]
    fn refactor_reuses_storage_and_solves() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let mut lu = LuDecomposition::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        lu.refactor(&b).unwrap();
        let x = lu.solve(&[5.0, 11.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
        // Refactoring onto a singular matrix fails but stays reusable.
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(lu.refactor(&s).is_err());
        lu.refactor(&a).unwrap();
        let x = lu.solve(&[10.0, 12.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b).unwrap();
        let mut y = vec![0.0; 3];
        lu.solve_into(&b, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
