//! Small dense linear algebra for the OIC workspace.
//!
//! The systems in this workspace are low-dimensional (the ACC case study has
//! a 2-dimensional state), so this crate favours clarity and numerical
//! robustness over asymptotic performance: matrices are dense, row-major
//! `Vec<f64>` buffers, and factorizations use partial pivoting.
//!
//! # Examples
//!
//! ```
//! use oic_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
//! let x = vec![2.0, 3.0];
//! let y = a.mul_vec(&x);
//! assert!((y[0] - 1.7).abs() < 1e-12);
//! ```

mod lu;
mod matrix;
mod spectral;
pub mod vec_ops;

pub use lu::{LuDecomposition, SingularMatrixError};
pub use matrix::Matrix;
pub use spectral::spectral_radius;

/// Returns `true` when `a` and `b` differ by at most `tol` in absolute value.
///
/// This is the comparison used throughout the workspace tests; it is exposed
/// so downstream crates compare floats consistently.
///
/// # Examples
///
/// ```
/// assert!(oic_linalg::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!oic_linalg::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
