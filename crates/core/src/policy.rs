//! The skipping decision function `Ω` and its simple implementations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The binary skipping choice `z(t)` (paper §II): `Run` actuates the
/// underlying controller, `Skip` applies the skip input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipDecision {
    /// `z = 0`: skip the controller.
    Skip,
    /// `z = 1`: run the controller.
    Run,
}

/// Everything `Ω` may condition on at one decision instant.
///
/// The paper's `Ω(x(t), w̄(t))` sees the current state and a window of past
/// disturbances; the model-based variant additionally assumes the future
/// disturbance is known, which [`Self::w_forecast`] carries when an oracle
/// provides it (empty otherwise).
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext<'a> {
    /// Current state `x(t)` — guaranteed to be inside `X′` (the runtime
    /// only consults the policy there).
    pub state: &'a [f64],
    /// Estimated past disturbances, oldest first, most recent last
    /// (`w(t−r), …, w(t−1)`).
    pub w_history: &'a [Vec<f64>],
    /// Known future disturbances `w(t), w(t+1), …` (empty when unknown).
    pub w_forecast: &'a [Vec<f64>],
    /// Current time step `t`.
    pub time_step: usize,
}

/// A skipping decision function `Ω`.
///
/// Safety does **not** depend on the policy (Theorem 1): the runtime
/// consults it only inside the strengthened safe set, where both choices
/// are provably safe. Policies differ only in efficiency.
pub trait SkipPolicy {
    /// Decides `z(t)` for a state inside `X′`.
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision;

    /// A short display name for reports.
    fn name(&self) -> &'static str;
}

impl<T: SkipPolicy + ?Sized> SkipPolicy for Box<T> {
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision {
        (**self).decide(ctx)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: SkipPolicy + ?Sized> SkipPolicy for &mut T {
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision {
        (**self).decide(ctx)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Never skips — the "RMPC only" baseline of the experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysRunPolicy;

impl SkipPolicy for AlwaysRunPolicy {
    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> SkipDecision {
        SkipDecision::Run
    }

    fn name(&self) -> &'static str {
        "always-run"
    }
}

/// The paper's bang-bang baseline (Eq. (7)): always skip inside `X′` (the
/// runtime already forces `Run` outside).
#[derive(Debug, Clone, Copy, Default)]
pub struct BangBangPolicy;

impl SkipPolicy for BangBangPolicy {
    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> SkipDecision {
        SkipDecision::Skip
    }

    fn name(&self) -> &'static str {
        "bang-bang"
    }
}

/// Skips on a fixed period: runs the controller every `period`-th decision
/// and skips otherwise — the static weakly-hard pattern (`K−1` misses in
/// every window of `K`) that the DAC-2020 related work contrasts with
/// opportunistic skipping. Useful as a non-adaptive baseline.
#[derive(Debug, Clone)]
pub struct PeriodicSkipPolicy {
    period: usize,
    counter: usize,
}

impl PeriodicSkipPolicy {
    /// Creates the policy: one run per `period ≥ 1` decisions (period 1
    /// never skips).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period >= 1, "period must be at least 1");
        Self { period, counter: 0 }
    }

    /// The configured period `K`.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl SkipPolicy for PeriodicSkipPolicy {
    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> SkipDecision {
        let run = self.counter == 0;
        self.counter = (self.counter + 1) % self.period;
        if run {
            SkipDecision::Run
        } else {
            SkipDecision::Skip
        }
    }

    fn name(&self) -> &'static str {
        "periodic"
    }
}

/// Skips with probability `p` — an adversarial stressor used by the safety
/// property tests (Theorem 1 must hold for *any* policy, including this
/// one).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    skip_probability: f64,
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates the policy with the given skip probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ skip_probability ≤ 1`.
    pub fn new(skip_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&skip_probability),
            "probability out of range"
        );
        Self {
            skip_probability,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SkipPolicy for RandomPolicy {
    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> SkipDecision {
        if self.rng.gen_range(0.0..1.0) < self.skip_probability {
            SkipDecision::Skip
        } else {
            SkipDecision::Run
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(state: &'a [f64]) -> PolicyContext<'a> {
        PolicyContext {
            state,
            w_history: &[],
            w_forecast: &[],
            time_step: 0,
        }
    }

    #[test]
    fn always_run_runs() {
        let mut p = AlwaysRunPolicy;
        assert_eq!(p.decide(&ctx(&[0.0])), SkipDecision::Run);
    }

    #[test]
    fn bang_bang_skips() {
        let mut p = BangBangPolicy;
        assert_eq!(p.decide(&ctx(&[0.0])), SkipDecision::Skip);
    }

    #[test]
    fn random_policy_hits_both_choices() {
        let mut p = RandomPolicy::new(0.5, 1);
        let mut skips = 0;
        let mut runs = 0;
        for _ in 0..200 {
            match p.decide(&ctx(&[0.0])) {
                SkipDecision::Skip => skips += 1,
                SkipDecision::Run => runs += 1,
            }
        }
        assert!(skips > 50 && runs > 50, "skips={skips} runs={runs}");
    }

    #[test]
    fn periodic_policy_pattern() {
        let mut p = PeriodicSkipPolicy::new(4);
        let pattern: Vec<SkipDecision> = (0..8).map(|_| p.decide(&ctx(&[0.0]))).collect();
        assert_eq!(pattern[0], SkipDecision::Run);
        assert_eq!(pattern[4], SkipDecision::Run);
        assert_eq!(
            pattern[1..4]
                .iter()
                .filter(|d| **d == SkipDecision::Skip)
                .count(),
            3
        );
        // Period 1 never skips.
        let mut p1 = PeriodicSkipPolicy::new(1);
        assert!((0..5).all(|_| p1.decide(&ctx(&[0.0])) == SkipDecision::Run));
    }

    #[test]
    fn random_policy_extremes() {
        let mut never = RandomPolicy::new(0.0, 0);
        let mut always = RandomPolicy::new(1.0, 0);
        for _ in 0..50 {
            assert_eq!(never.decide(&ctx(&[0.0])), SkipDecision::Run);
            assert_eq!(always.decide(&ctx(&[0.0])), SkipDecision::Skip);
        }
    }
}
