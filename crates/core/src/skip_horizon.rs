//! Consecutive-skip (weakly-hard) analysis.
//!
//! The paper's monitor re-checks `X′` membership every step, so skips are
//! granted one at a time. Its related-work section connects this to
//! **weakly-hard** systems, where up to `m` consecutive control "misses"
//! are tolerated by design. This module makes that connection computable:
//!
//! * [`consecutive_skip_sets`] — the chain `X′₀ ⊇ X′₁ ⊇ X′₂ ⊇ …` where
//!   `X′_k` contains the states from which `k` *consecutive* skipped steps
//!   provably keep the system inside `XI` the whole way:
//!   `X′₀ = XI`, `X′_{k+1} = B(X′_k, u_skip) ∩ XI`.
//!   (`X′₁` is exactly the paper's strengthened safe set.)
//! * [`max_consecutive_skips`] — the largest `k` with `X′_k` non-empty
//!   within an iteration budget: the plant's tolerance to back-to-back
//!   misses, in the `(m, K)` weakly-hard sense with `K = m + 1`.
//! * [`MaxSkipPolicy`] — a deadline-style policy exploiting the chain: it
//!   skips whenever the state is deep enough in the chain to guarantee the
//!   *next* `budget` steps could also be skipped.

use oic_geom::Polytope;

use crate::{CoreError, PolicyContext, SafeSets, SkipDecision, SkipPolicy};

/// Computes the consecutive-skip chain `X′₁, …, X′_k_max` (element `i`
/// holds `X′_{i+1}`).
///
/// The chain stops early (returning fewer than `k_max` sets) as soon as a
/// level becomes empty.
///
/// # Errors
///
/// Propagates geometry failures; an empty *first* level is reported as
/// [`CoreError::EmptySet`] (the sets were not certified).
///
/// # Examples
///
/// ```
/// use oic_core::acc::AccCaseStudy;
/// use oic_core::skip_horizon::consecutive_skip_sets;
///
/// # fn main() -> Result<(), oic_core::CoreError> {
/// let case = AccCaseStudy::build_default()?;
/// let chain = consecutive_skip_sets(case.sets(), 5)?;
/// assert!(!chain.is_empty());
/// // Level 1 is the paper's strengthened safe set.
/// assert!(chain[0].set_eq(case.sets().strengthened(), 1e-6)?);
/// # Ok(())
/// # }
/// ```
pub fn consecutive_skip_sets(sets: &SafeSets, k_max: usize) -> Result<Vec<Polytope>, CoreError> {
    let mut chain = Vec::with_capacity(k_max);
    let mut current = sets.invariant().clone();
    for level in 0..k_max {
        let backward = SafeSets::backward_reachable(sets.plant(), &current, sets.skip_input())?;
        let next = backward.intersection(sets.invariant()).remove_redundant();
        if next.is_empty() {
            if level == 0 {
                return Err(CoreError::EmptySet);
            }
            break;
        }
        chain.push(next.clone());
        current = next;
    }
    Ok(chain)
}

/// The largest number of consecutive skips with a non-empty guarantee set,
/// capped at `k_max`.
///
/// # Errors
///
/// See [`consecutive_skip_sets`].
pub fn max_consecutive_skips(sets: &SafeSets, k_max: usize) -> Result<usize, CoreError> {
    Ok(consecutive_skip_sets(sets, k_max)?.len())
}

/// A weakly-hard-style skipping policy: skip only while the state is deep
/// enough in the consecutive-skip chain to cover a configured budget of
/// upcoming misses.
///
/// With `budget = 1` this behaves like the bang-bang policy; larger budgets
/// are increasingly conservative (they demand slack for several future
/// skips before skipping at all), trading fuel for fewer forced runs.
#[derive(Debug, Clone)]
pub struct MaxSkipPolicy {
    chain: Vec<Polytope>,
    budget: usize,
}

impl MaxSkipPolicy {
    /// Builds the policy with the given skip `budget ≥ 1`.
    ///
    /// # Errors
    ///
    /// Propagates chain-computation failures; fails with
    /// [`CoreError::EmptySet`] if the chain is shorter than the budget.
    pub fn new(sets: &SafeSets, budget: usize) -> Result<Self, CoreError> {
        assert!(budget >= 1, "budget must be at least 1");
        let chain = consecutive_skip_sets(sets, budget)?;
        if chain.len() < budget {
            return Err(CoreError::EmptySet);
        }
        Ok(Self { chain, budget })
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The guarantee set backing the budget (`X′_budget`).
    pub fn guarantee_set(&self) -> &Polytope {
        &self.chain[self.budget - 1]
    }
}

impl SkipPolicy for MaxSkipPolicy {
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision {
        if self.guarantee_set().contains(ctx.state) {
            SkipDecision::Skip
        } else {
            SkipDecision::Run
        }
    }

    fn name(&self) -> &'static str {
        "max-skip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::AccCaseStudy;
    use crate::IntermittentController;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn case() -> &'static AccCaseStudy {
        use std::sync::OnceLock;
        static CASE: OnceLock<AccCaseStudy> = OnceLock::new();
        CASE.get_or_init(|| AccCaseStudy::build_default().expect("builds"))
    }

    #[test]
    fn chain_is_nested() {
        let chain = consecutive_skip_sets(case().sets(), 6).unwrap();
        assert!(
            chain.len() >= 2,
            "ACC tolerates at least 2 consecutive skips"
        );
        for k in 1..chain.len() {
            assert!(
                chain[k].is_subset_of(&chain[k - 1], 1e-6).unwrap(),
                "X'_{} ⊄ X'_{}",
                k + 1,
                k
            );
        }
    }

    #[test]
    fn level_one_is_the_strengthened_set() {
        let chain = consecutive_skip_sets(case().sets(), 1).unwrap();
        assert!(chain[0].set_eq(case().sets().strengthened(), 1e-6).unwrap());
    }

    #[test]
    fn chain_semantics_hold_on_trajectories() {
        // From any sampled x ∈ X'_k, k consecutive skips under extreme
        // disturbances stay inside XI.
        let case = case();
        let sys = case.sets().plant().system().clone();
        let chain = consecutive_skip_sets(case.sets(), 4).unwrap();
        let u_skip = case.sets().skip_input().to_vec();
        let mut rng = StdRng::seed_from_u64(3);
        for (k, set) in chain.iter().enumerate() {
            let (lo, hi) = set.bounding_box().unwrap();
            for _ in 0..20 {
                let cand = [rng.gen_range(lo[0]..=hi[0]), rng.gen_range(lo[1]..=hi[1])];
                if !set.contains(&cand) {
                    continue;
                }
                let mut x = cand.to_vec();
                for step in 0..=k {
                    let w = vec![if rng.gen_bool(0.5) { 1.0 } else { -1.0 }, 0.0];
                    x = sys.step(&x, &u_skip, &w);
                    assert!(
                        case.sets().invariant().contains_with_tol(&x, 1e-6),
                        "level {} from {cand:?} left XI after {} skips",
                        k + 1,
                        step + 1
                    );
                }
            }
        }
    }

    #[test]
    fn max_skip_policy_is_safe_and_skips() {
        let case = case();
        let sys = case.sets().plant().system().clone();
        let policy = MaxSkipPolicy::new(case.sets(), 2).unwrap();
        assert_eq!(policy.budget(), 2);
        let mut ic =
            IntermittentController::new(case.mpc().clone(), case.sets().clone(), policy, 1);
        let mut rng = StdRng::seed_from_u64(8);
        let mut x = vec![0.0, 0.0];
        for _ in 0..200 {
            let d = ic.step(&x, &[]).unwrap();
            let w = vec![rng.gen_range(-1.0..=1.0), 0.0];
            x = sys.step(&x, &d.input, &w);
            assert!(case.sets().invariant().contains_with_tol(&x, 1e-6));
        }
        assert!(ic.stats().skipped > 50, "skips: {}", ic.stats().skipped);
    }

    #[test]
    fn larger_budget_is_more_conservative() {
        let case = case();
        let p1 = MaxSkipPolicy::new(case.sets(), 1).unwrap();
        let p3 = MaxSkipPolicy::new(case.sets(), 3).unwrap();
        assert!(p3
            .guarantee_set()
            .is_subset_of(p1.guarantee_set(), 1e-6)
            .unwrap());
    }

    #[test]
    fn max_consecutive_skips_is_positive_and_capped() {
        let m = max_consecutive_skips(case().sets(), 3).unwrap();
        assert!((1..=3).contains(&m));
    }
}
