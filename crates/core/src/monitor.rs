//! The runtime safety monitor (paper Fig. 2).

use crate::SafeSets;

/// Where the monitored state sits in the Fig. 1 hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `x ∈ X′`: skipping is provably safe this step; the skipping policy
    /// decides.
    Strengthened,
    /// `x ∈ XI \ X′`: the underlying controller **must** run (`z = 1`).
    InvariantOnly,
    /// `x ∉ XI`: the framework's precondition is violated (should be
    /// unreachable when started inside `XI` with disturbances in `W`).
    Outside,
}

/// Checks each sensor sample against the strengthened and invariant sets.
///
/// This is the component the paper's computation-saving argument hinges on:
/// a verdict is two polytope membership tests (a handful of dot products),
/// versus a full MPC solve.
///
/// # Examples
///
/// ```
/// use oic_core::{acc::AccCaseStudy, Monitor, Verdict};
///
/// # fn main() -> Result<(), oic_core::CoreError> {
/// let case = AccCaseStudy::build_default()?;
/// let monitor = Monitor::new(case.sets().clone());
/// assert_eq!(monitor.check(&[0.0, 0.0]), Verdict::Strengthened);
/// assert_eq!(monitor.check(&[1000.0, 0.0]), Verdict::Outside);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    sets: SafeSets,
}

impl Monitor {
    /// Creates a monitor over the given set hierarchy.
    pub fn new(sets: SafeSets) -> Self {
        Self { sets }
    }

    /// The underlying set hierarchy.
    pub fn sets(&self) -> &SafeSets {
        &self.sets
    }

    /// Classifies a state.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the state dimension.
    pub fn check(&self, x: &[f64]) -> Verdict {
        if self.sets.strengthened().contains(x) {
            Verdict::Strengthened
        } else if self.sets.invariant().contains(x) {
            Verdict::InvariantOnly
        } else {
            Verdict::Outside
        }
    }

    /// `true` when the state is inside the original safe set `X` (the
    /// property Theorem 1 ultimately guarantees).
    pub fn is_safe(&self, x: &[f64]) -> bool {
        self.sets.safe().contains(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::AccCaseStudy;

    #[test]
    fn verdict_ordering_is_consistent() {
        let case = AccCaseStudy::build_default().unwrap();
        let monitor = Monitor::new(case.sets().clone());
        // Every strengthened state is also invariant and safe.
        for x in [[0.0, 0.0], [3.0, 1.0], [-5.0, -2.0]] {
            if monitor.check(&x) == Verdict::Strengthened {
                assert!(monitor.sets().invariant().contains(&x));
                assert!(monitor.is_safe(&x));
            }
        }
    }

    #[test]
    fn outside_far_away() {
        let case = AccCaseStudy::build_default().unwrap();
        let monitor = Monitor::new(case.sets().clone());
        assert_eq!(monitor.check(&[500.0, 500.0]), Verdict::Outside);
        assert!(!monitor.is_safe(&[500.0, 500.0]));
    }
}
