//! Error type of the intermittent-control framework.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the intermittent-control runtime and set
/// constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The monitored state left the robust invariant set — the framework's
    /// precondition (`x(0) ∈ XI`, disturbances within `W`) was violated by
    /// the environment.
    OutsideInvariant {
        /// The offending state.
        state: Vec<f64>,
    },
    /// A set certificate failed: the named inclusion does not hold.
    CertificateFailed {
        /// Which inclusion failed (e.g. `"X' ⊆ XI"`).
        inclusion: &'static str,
    },
    /// A computed set came out empty.
    EmptySet,
    /// The closed-loop state stopped being finite (NaN/overflow in a
    /// plant update) or diverged past any physically meaningful bound —
    /// surfaced by the engine's per-step divergence guard so a broken
    /// plant degrades one cell instead of poisoning its tallies.
    NonFinite {
        /// Step index at which the state was first non-finite/diverged.
        step: usize,
    },
    /// A skipping policy could not be constructed (e.g. a learned-policy
    /// weight blob failed to decode or does not fit the scenario).
    Policy {
        /// What went wrong, human-readable.
        reason: String,
    },
    /// Propagated controller/invariant-set failure.
    Control(oic_control::ControlError),
    /// Propagated geometry failure.
    Geometry(oic_geom::GeomError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OutsideInvariant { state } => {
                write!(f, "state {state:?} is outside the robust invariant set")
            }
            CoreError::CertificateFailed { inclusion } => {
                write!(f, "safety certificate failed: {inclusion}")
            }
            CoreError::EmptySet => write!(f, "computed set is empty"),
            CoreError::NonFinite { step } => {
                write!(f, "state became non-finite or diverged at step {step}")
            }
            CoreError::Policy { reason } => write!(f, "policy construction failed: {reason}"),
            CoreError::Control(e) => write!(f, "control layer failure: {e}"),
            CoreError::Geometry(e) => write!(f, "geometry failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Control(e) => Some(e),
            CoreError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<oic_control::ControlError> for CoreError {
    fn from(e: oic_control::ControlError) -> Self {
        CoreError::Control(e)
    }
}

impl From<oic_geom::GeomError> for CoreError {
    fn from(e: oic_geom::GeomError) -> Self {
        CoreError::Geometry(e)
    }
}
