//! The three nested safe sets of the paper's Fig. 1 and their certificates.

use oic_control::{max_rpi, ConstrainedLti, InvariantOptions, TubeMpc};
use oic_geom::Polytope;

use crate::CoreError;

/// The input applied on a skipped step.
///
/// The paper says a skipped step "applies a zero control input". In the
/// deviation coordinates required by the problem formulation (`0 ∈ U`),
/// that phrase is ambiguous: literal zero still actuates the equilibrium
/// feed-forward. Both readings are supported; Theorem 1 holds for either
/// because the strengthened set is computed **for the actual skip input**.
#[derive(Debug, Clone, PartialEq)]
pub enum SkipInput {
    /// Apply `u = 0` in model coordinates (the paper-literal reading).
    Zero,
    /// Apply a fixed vector — e.g. the ACC's "coast" input `−u*` so the
    /// physical actuation is exactly zero.
    Vector(Vec<f64>),
}

impl SkipInput {
    /// The concrete input vector for input dimension `m`.
    ///
    /// # Panics
    ///
    /// Panics if a [`SkipInput::Vector`] has length ≠ `m`.
    pub fn vector(&self, m: usize) -> Vec<f64> {
        match self {
            SkipInput::Zero => vec![0.0; m],
            SkipInput::Vector(v) => {
                assert_eq!(v.len(), m, "skip input dimension mismatch");
                v.clone()
            }
        }
    }
}

/// The nested safe sets `X ⊇ XI ⊇ X′` (paper Fig. 1) plus the plant and
/// skip input they were computed for.
///
/// * `X` — the original safe set (given).
/// * `XI` — a robust control invariant set of the underlying controller.
/// * `X′ = B(XI, u_skip) ∩ XI` — the strengthened safe set: states from
///   which even a skipped step provably stays inside `XI`.
///
/// # Examples
///
/// ```
/// use oic_core::acc::AccCaseStudy;
///
/// # fn main() -> Result<(), oic_core::CoreError> {
/// let case = AccCaseStudy::build_default()?;
/// let sets = case.sets();
/// assert!(sets.strengthened().contains(&[0.0, 0.0]));
/// sets.certify()?; // LP inclusion certificates, not sampling
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SafeSets {
    plant: ConstrainedLti,
    skip_input: Vec<f64>,
    safe: Polytope,
    invariant: Polytope,
    strengthened: Polytope,
}

impl SafeSets {
    /// Builds the set hierarchy from a given robust control invariant set.
    ///
    /// Computes `X′ = B(XI, u_skip) ∩ XI` where
    /// `B(Y, u) = { x : ∀w ∈ W, Ax + Bu + w ∈ Y }` (Definition 2 with the
    /// configurable skip input).
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptySet`] — the invariant or strengthened set is
    ///   empty.
    /// * [`CoreError::Geometry`] — an LP failed while shrinking by `W`.
    pub fn new(
        plant: ConstrainedLti,
        invariant: Polytope,
        skip_input: &SkipInput,
    ) -> Result<Self, CoreError> {
        let m = plant.system().input_dim();
        let u_skip = skip_input.vector(m);
        let invariant = invariant.remove_redundant();
        if invariant.is_empty() {
            return Err(CoreError::EmptySet);
        }
        let backward = Self::backward_reachable_impl(&plant, &invariant, &u_skip)?;
        let strengthened = backward.intersection(&invariant).remove_redundant();
        if strengthened.is_empty() {
            return Err(CoreError::EmptySet);
        }
        let safe = plant.safe_set().clone();
        Ok(Self {
            plant,
            skip_input: u_skip,
            safe,
            invariant,
            strengthened,
        })
    }

    /// Builds the hierarchy for a linear feedback controller `κ(x) = Kx`:
    /// `XI` is the maximal RPI set of `A + BK` inside
    /// `X ∩ {x : Kx ∈ U}`.
    ///
    /// # Errors
    ///
    /// Propagates invariant-set failures ([`CoreError::Control`]) and the
    /// emptiness/geometry errors of [`SafeSets::new`].
    pub fn for_linear_feedback(
        plant: ConstrainedLti,
        gain: &oic_linalg::Matrix,
        skip_input: &SkipInput,
    ) -> Result<Self, CoreError> {
        let sys = plant.system();
        let a_cl = sys.closed_loop(gain);
        let input_ok = plant
            .input_set()
            .preimage(gain, &vec![0.0; sys.input_dim()]);
        let constraint = plant.safe_set().intersection(&input_ok).remove_redundant();
        let invariant = max_rpi(
            &a_cl,
            plant.disturbance_set(),
            &constraint,
            &InvariantOptions::default(),
        )?;
        Self::new(plant, invariant, skip_input)
    }

    /// Builds the hierarchy for a tube MPC: `XI` is the MPC's feasible set
    /// `X_F` (Proposition 1).
    ///
    /// # Errors
    ///
    /// Propagates feasible-set failures and the emptiness/geometry errors
    /// of [`SafeSets::new`].
    pub fn for_tube_mpc(mpc: &TubeMpc, skip_input: &SkipInput) -> Result<Self, CoreError> {
        let invariant = mpc.feasible_set()?;
        Self::new(mpc.plant().clone(), invariant, skip_input)
    }

    /// The one-step robust backward reachable set `B(target, u)` under a
    /// fixed input (Definition 2 with `z = 0` generalized to any constant
    /// input).
    ///
    /// # Errors
    ///
    /// Propagates geometry failures.
    pub fn backward_reachable(
        plant: &ConstrainedLti,
        target: &Polytope,
        input: &[f64],
    ) -> Result<Polytope, CoreError> {
        Self::backward_reachable_impl(plant, target, input)
    }

    fn backward_reachable_impl(
        plant: &ConstrainedLti,
        target: &Polytope,
        input: &[f64],
    ) -> Result<Polytope, CoreError> {
        let sys = plant.system();
        let shrunk = target.minkowski_diff(plant.disturbance_set())?;
        let bu = sys.b().mul_vec(input);
        Ok(shrunk.preimage(sys.a(), &bu))
    }

    /// The plant these sets were computed for.
    pub fn plant(&self) -> &ConstrainedLti {
        &self.plant
    }

    /// The input applied on skipped steps (model coordinates).
    pub fn skip_input(&self) -> &[f64] {
        &self.skip_input
    }

    /// The original safe set `X`.
    pub fn safe(&self) -> &Polytope {
        &self.safe
    }

    /// The robust control invariant set `XI`.
    pub fn invariant(&self) -> &Polytope {
        &self.invariant
    }

    /// The strengthened safe set `X′`.
    pub fn strengthened(&self) -> &Polytope {
        &self.strengthened
    }

    /// Samples a state uniformly from the strengthened safe set `X′` by
    /// rejection from its bounding box (the experiments' "randomly pick
    /// feasible initial states within X′" protocol), falling back to the
    /// Chebyshev center for razor-thin sets.
    pub fn sample_strengthened<R: rand::Rng>(&self, rng: &mut R) -> Vec<f64> {
        let (lo, hi) = self
            .strengthened
            .bounding_box()
            .expect("strengthened set is bounded and non-empty");
        for _ in 0..10_000 {
            let candidate: Vec<f64> = lo
                .iter()
                .zip(&hi)
                .map(|(l, h)| if h > l { rng.gen_range(*l..=*h) } else { *l })
                .collect();
            if self.strengthened.contains(&candidate) {
                return candidate;
            }
        }
        // A polytope with positive volume inside its own bounding box will
        // accept long before 10k tries; fall back to the Chebyshev center.
        self.strengthened
            .chebyshev_center()
            .map(|(center, _)| center)
            .expect("strengthened set has an interior point")
    }

    /// Certifies, with per-facet support LPs (no sampling), the premises of
    /// Theorem 1:
    ///
    /// 1. `X′ ⊆ XI ⊆ X` (the Fig. 1 nesting), and
    /// 2. the skip closure: for every `x ∈ X′` and `w ∈ W`,
    ///    `Ax + B·u_skip + w ∈ XI`.
    ///
    /// # Errors
    ///
    /// [`CoreError::CertificateFailed`] naming the failed inclusion, or a
    /// propagated LP failure.
    pub fn certify(&self) -> Result<(), CoreError> {
        let tol = 1e-6;
        if !self.strengthened.is_subset_of(&self.invariant, tol)? {
            return Err(CoreError::CertificateFailed {
                inclusion: "X' ⊆ XI",
            });
        }
        if !self.invariant.is_subset_of(&self.safe, tol)? {
            return Err(CoreError::CertificateFailed {
                inclusion: "XI ⊆ X",
            });
        }
        // Skip closure: A·X' + B·u_skip + W ⊆ XI, checked facet-by-facet:
        // sup_{x∈X'} aᵀAx + aᵀB·u_skip + h_W(a) ≤ b for every facet of XI.
        let sys = self.plant.system();
        let bu = sys.b().mul_vec(&self.skip_input);
        let image = {
            // {Ax + Bu_skip : x ∈ X'} has support h(d) = h_{X'}(Aᵀd) + d·Bu.
            |direction: &[f64]| -> Result<f64, CoreError> {
                use oic_geom::SupportFunction;
                let pulled = sys.a().vec_mul(direction);
                let base = self.strengthened.support(&pulled)?;
                let shift: f64 = direction.iter().zip(&bu).map(|(d, b)| d * b).sum();
                Ok(base + shift)
            }
        };
        for h in self.invariant.halfspaces() {
            use oic_geom::SupportFunction;
            let flow = image(h.normal())?;
            let drift = self.plant.disturbance_set().support(h.normal())?;
            if flow + drift > h.offset() + tol {
                return Err(CoreError::CertificateFailed {
                    inclusion: "A·X' + B·u_skip + W ⊆ XI",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_control::{dlqr, Lti};
    use oic_geom::Polytope;
    use oic_linalg::Matrix;

    fn acc_plant() -> ConstrainedLti {
        ConstrainedLti::new(
            Lti::new(
                Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]),
                Matrix::from_rows(&[&[0.0], &[0.1]]),
            ),
            Polytope::from_box(&[-30.0, -15.0], &[30.0, 15.0]),
            Polytope::from_box(&[-48.0], &[32.0]),
            Polytope::from_box(&[-1.0, 0.0], &[1.0, 0.0]),
        )
    }

    fn lqr_gain(plant: &ConstrainedLti) -> Matrix {
        dlqr(
            plant.system().a(),
            plant.system().b(),
            &Matrix::identity(2),
            &Matrix::identity(1),
        )
        .unwrap()
    }

    #[test]
    fn linear_feedback_sets_certify_zero_skip() {
        let plant = acc_plant();
        let gain = lqr_gain(&plant);
        let sets = SafeSets::for_linear_feedback(plant, &gain, &SkipInput::Zero).unwrap();
        sets.certify().unwrap();
        assert!(sets.strengthened().contains(&[0.0, 0.0]));
    }

    #[test]
    fn linear_feedback_sets_certify_coast_skip() {
        let plant = acc_plant();
        let gain = lqr_gain(&plant);
        // Physical zero actuation: deviation input −u* = −8.
        let sets =
            SafeSets::for_linear_feedback(plant, &gain, &SkipInput::Vector(vec![-8.0])).unwrap();
        sets.certify().unwrap();
    }

    #[test]
    fn strengthened_is_strictly_inside_invariant_for_coast() {
        let plant = acc_plant();
        let gain = lqr_gain(&plant);
        let sets =
            SafeSets::for_linear_feedback(plant, &gain, &SkipInput::Vector(vec![-8.0])).unwrap();
        // Coasting decelerates, so near the low-velocity edge of XI a skip
        // could exit: X' must exclude some of XI.
        assert!(!sets
            .invariant()
            .is_subset_of(sets.strengthened(), 1e-6)
            .unwrap());
    }

    #[test]
    fn backward_reachable_matches_manual_computation() {
        let plant = acc_plant();
        let target = Polytope::from_box(&[-10.0, -10.0], &[10.0, 10.0]);
        let b = SafeSets::backward_reachable(&plant, &target, &[0.0]).unwrap();
        // x ∈ B ⇔ ∀w: Ax + w ∈ target ⇔ Ax ∈ target ⊖ W = [-9,9]×[-10,10].
        // Check a point: x = (9.5, 5): Ax = (9.0, 4.9) ∈ shrunk ✓.
        assert!(b.contains(&[9.5, 5.0]));
        // x = (10, 5): Ax = (9.5, 4.9): s-component 9.5 > 9 ✗.
        assert!(!b.contains(&[10.0, 5.0]));
    }

    #[test]
    fn skip_input_vector_roundtrip() {
        assert_eq!(SkipInput::Zero.vector(2), vec![0.0, 0.0]);
        assert_eq!(SkipInput::Vector(vec![-8.0]).vector(1), vec![-8.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn skip_input_wrong_len_panics() {
        let _ = SkipInput::Vector(vec![1.0, 2.0]).vector(1);
    }

    #[test]
    fn empty_invariant_rejected() {
        let plant = acc_plant();
        let empty = Polytope::from_box(&[5.0, 5.0], &[5.0, 5.0])
            .intersection(&Polytope::from_box(&[6.0, 6.0], &[6.0, 6.0]));
        let err = SafeSets::new(plant, empty, &SkipInput::Zero).unwrap_err();
        assert_eq!(err, CoreError::EmptySet);
    }
}
