//! Algorithm 1: the online intermittent-control loop.

use oic_control::{ControlCache, Controller};
use oic_linalg::vec_ops;

use crate::{CoreError, Monitor, PolicyContext, SafeSets, SkipDecision, SkipPolicy, Verdict};

/// What the runtime decided for one control step.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// The input to actuate (model coordinates).
    pub input: Vec<f64>,
    /// `true` when the controller computation was skipped (`z = 0`).
    pub skipped: bool,
    /// `true` when the monitor forced `z = 1` (state outside `X′`).
    pub forced_run: bool,
    /// The monitor's verdict for this state.
    pub verdict: Verdict,
}

/// Cumulative runtime statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Total steps executed.
    pub steps: usize,
    /// Steps where the controller was skipped.
    pub skipped: usize,
    /// Steps where the monitor forced the controller (outside `X′`).
    pub forced_runs: usize,
    /// Steps where the policy chose to run (inside `X′`).
    pub policy_runs: usize,
    /// Accumulated actuation effort `Σ‖u(t) − u_skip‖₁` (model
    /// coordinates; multiply by the sampling period for energy).
    pub actuation_effort: f64,
}

impl RunStats {
    /// Fraction of steps skipped.
    pub fn skip_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.skipped as f64 / self.steps as f64
        }
    }
}

/// The paper's Algorithm 1: monitor the state, consult the skipping policy
/// inside `X′`, force the underlying controller otherwise, and actuate.
///
/// Generic over the underlying safe controller `C` exactly as the paper's
/// framework is ("can be generally applied to various underlying
/// controllers").
///
/// # Examples
///
/// ```
/// use oic_core::{acc::AccCaseStudy, BangBangPolicy, IntermittentController};
///
/// # fn main() -> Result<(), oic_core::CoreError> {
/// let case = AccCaseStudy::build_default()?;
/// let mut ic = IntermittentController::new(
///     case.mpc().clone(),
///     case.sets().clone(),
///     Box::new(BangBangPolicy),
///     1,
/// );
/// let decision = ic.step(&[0.0, 0.0], &[])?;
/// assert!(decision.skipped, "bang-bang skips inside X'");
/// # Ok(())
/// # }
/// ```
pub struct IntermittentController<C: Controller, P: SkipPolicy = Box<dyn SkipPolicy>> {
    controller: C,
    monitor: Monitor,
    policy: P,
    skip_input: Vec<f64>,
    memory: usize,
    w_history: Vec<Vec<f64>>,
    prev: Option<(Vec<f64>, Vec<f64>)>,
    stats: RunStats,
    t: usize,
    /// Episode-scoped controller scratch: carries the tube MPC's LP
    /// warm-start basis from step to step (engine episodes own one
    /// runtime each, so the basis follows the episode, never leaks
    /// across episodes). Cleared by [`reset`](Self::reset).
    cache: ControlCache,
}

impl<C: Controller, P: SkipPolicy> IntermittentController<C, P> {
    /// Creates the runtime from a controller, certified safe sets, a
    /// skipping policy, and the disturbance memory length `r` (paper's
    /// DRL state uses `r = 1`).
    ///
    /// # Panics
    ///
    /// Panics if the controller dimensions disagree with the plant.
    pub fn new(controller: C, sets: SafeSets, policy: P, memory: usize) -> Self {
        let sys = sets.plant().system();
        assert_eq!(
            controller.state_dim(),
            sys.state_dim(),
            "controller state dim mismatch"
        );
        assert_eq!(
            controller.input_dim(),
            sys.input_dim(),
            "controller input dim mismatch"
        );
        let skip_input = sets.skip_input().to_vec();
        Self {
            controller,
            monitor: Monitor::new(sets),
            policy,
            skip_input,
            memory,
            w_history: Vec::new(),
            prev: None,
            stats: RunStats::default(),
            t: 0,
            cache: ControlCache::new(),
        }
    }

    /// The safety monitor (and through it, the sets).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The underlying controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Display name of the active skipping policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Statistics accumulated since construction (or the last
    /// [`reset`](Self::reset)).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Clears history, statistics, and controller scratch (warm-start
    /// state) for a fresh episode.
    pub fn reset(&mut self) {
        self.w_history.clear();
        self.prev = None;
        self.stats = RunStats::default();
        self.t = 0;
        self.cache.reset();
    }

    /// Estimated disturbance history (most recent last), from the exact
    /// model inversion `w(t−1) = x(t) − A x(t−1) − B u(t−1)`.
    pub fn w_history(&self) -> &[Vec<f64>] {
        &self.w_history
    }

    /// Reports that the actuator *dropped* the input just commanded by
    /// [`step`](Self::step) and held the skip input instead — an
    /// environment-forced skip (lossy actuator, weakly-hard execution
    /// platform). Returns the input the plant actually received.
    ///
    /// Two pieces of state are re-booked so later steps stay exact:
    /// the remembered `(x, u)` transition is rewritten to the applied
    /// input (the disturbance inversion `w = x⁺ − A x − B u` must use
    /// what the plant received, or every later `w` estimate would be
    /// polluted by the drop), and the step's actuation-effort
    /// contribution is subtracted (a dropped input costs nothing).
    /// The run/skip decision tallies are left alone — they describe
    /// what the *controller* decided, which the environment overrode.
    pub fn notify_dropout(&mut self) -> Vec<f64> {
        if let Some((_, u)) = self.prev.as_mut() {
            self.stats.actuation_effort -= vec_ops::norm1(&vec_ops::sub(u, &self.skip_input));
            u.clone_from(&self.skip_input);
        }
        self.skip_input.clone()
    }

    /// One iteration of Algorithm 1 at the monitored state `x`.
    ///
    /// `w_forecast` optionally carries known future disturbances for the
    /// model-based policy (empty when unknown).
    ///
    /// # Errors
    ///
    /// * [`CoreError::OutsideInvariant`] — `x ∉ XI`; the framework's
    ///   precondition was violated (never happens from certified sets and
    ///   in-bound disturbances, by Theorem 1).
    /// * [`CoreError::Control`] — the underlying controller failed at a
    ///   state where the monitor required it.
    pub fn step(
        &mut self,
        x: &[f64],
        w_forecast: &[Vec<f64>],
    ) -> Result<ControlDecision, CoreError> {
        // Disturbance estimation from the previous transition.
        if let Some((xp, up)) = &self.prev {
            let sys = self.monitor.sets().plant().system();
            let predicted = sys.step_nominal(xp, up);
            let w = vec_ops::sub(x, &predicted);
            self.w_history.push(w);
            if self.w_history.len() > self.memory.max(1) {
                let drop = self.w_history.len() - self.memory.max(1);
                self.w_history.drain(..drop);
            }
        }

        let verdict = self.monitor.check(x);
        let decision = match verdict {
            Verdict::Outside => {
                return Err(CoreError::OutsideInvariant { state: x.to_vec() });
            }
            Verdict::InvariantOnly => SkipDecision::Run,
            Verdict::Strengthened => {
                let ctx = PolicyContext {
                    state: x,
                    w_history: &self.w_history,
                    w_forecast,
                    time_step: self.t,
                };
                self.policy.decide(&ctx)
            }
        };

        let (input, skipped, forced_run) = match decision {
            SkipDecision::Run => {
                let u = self.controller.control_with_cache(x, &mut self.cache)?;
                (u, false, verdict == Verdict::InvariantOnly)
            }
            SkipDecision::Skip => (self.skip_input.clone(), true, false),
        };

        self.stats.steps += 1;
        if skipped {
            self.stats.skipped += 1;
        } else if forced_run {
            self.stats.forced_runs += 1;
        } else {
            self.stats.policy_runs += 1;
        }
        self.stats.actuation_effort += vec_ops::norm1(&vec_ops::sub(&input, &self.skip_input));

        self.prev = Some((x.to_vec(), input.clone()));
        self.t += 1;
        Ok(ControlDecision {
            input,
            skipped,
            forced_run,
            verdict,
        })
    }
}

impl<C: Controller, P: SkipPolicy> IntermittentController<C, P> {
    /// The sets the runtime monitors against.
    pub fn sets(&self) -> &SafeSets {
        self.monitor.sets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::AccCaseStudy;
    use crate::{AlwaysRunPolicy, BangBangPolicy, RandomPolicy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn case() -> AccCaseStudy {
        AccCaseStudy::build_default().unwrap()
    }

    #[test]
    fn always_run_never_skips() {
        let case = case();
        let mut ic = IntermittentController::new(
            case.mpc().clone(),
            case.sets().clone(),
            Box::new(AlwaysRunPolicy),
            1,
        );
        let mut x = vec![2.0, 1.0];
        for _ in 0..20 {
            let d = ic.step(&x, &[]).unwrap();
            assert!(!d.skipped);
            x = case.sets().plant().system().step(&x, &d.input, &[0.0, 0.0]);
        }
        assert_eq!(ic.stats().skipped, 0);
        assert_eq!(ic.stats().steps, 20);
    }

    #[test]
    fn bang_bang_skips_inside_strengthened() {
        let case = case();
        let mut ic = IntermittentController::new(
            case.mpc().clone(),
            case.sets().clone(),
            Box::new(BangBangPolicy),
            1,
        );
        let d = ic.step(&[0.0, 0.0], &[]).unwrap();
        assert!(d.skipped);
        assert_eq!(d.input, case.sets().skip_input().to_vec());
    }

    #[test]
    fn disturbance_estimation_is_exact() {
        let case = case();
        let mut ic = IntermittentController::new(
            case.mpc().clone(),
            case.sets().clone(),
            Box::new(AlwaysRunPolicy),
            3,
        );
        let sys = case.sets().plant().system().clone();
        let mut x = vec![1.0, 0.5];
        let mut rng = StdRng::seed_from_u64(9);
        let mut applied_w = Vec::new();
        for _ in 0..5 {
            let d = ic.step(&x, &[]).unwrap();
            let w = vec![rng.gen_range(-1.0..1.0), 0.0];
            applied_w.push(w.clone());
            x = sys.step(&x, &d.input, &w);
        }
        // One more step so the last w gets estimated.
        let _ = ic.step(&x, &[]).unwrap();
        let est = ic.w_history();
        assert_eq!(est.len(), 3);
        for (e, a) in est.iter().rev().zip(applied_w.iter().rev()) {
            assert!(
                vec_ops::approx_eq(e, a, 1e-9),
                "estimated {e:?} vs applied {a:?}"
            );
        }
    }

    #[test]
    fn disturbance_estimation_stays_exact_under_dropout() {
        // When the actuator drops every other commanded input, the
        // inversion must keep using the *applied* input — otherwise the
        // estimated w would absorb the B·(u − u_skip) gap.
        let case = case();
        let sys = case.sets().plant().system().clone();
        let mut ic = IntermittentController::new(
            case.mpc().clone(),
            case.sets().clone(),
            Box::new(AlwaysRunPolicy),
            3,
        );
        let skip_input = case.sets().skip_input().to_vec();
        let mut x = vec![1.0, 0.5];
        let mut rng = StdRng::seed_from_u64(11);
        let mut applied_w = Vec::new();
        for t in 0..6 {
            let d = ic.step(&x, &[]).unwrap();
            let u = if t % 2 == 0 {
                let applied = ic.notify_dropout();
                assert_eq!(applied, skip_input);
                applied
            } else {
                d.input
            };
            let w = vec![rng.gen_range(-1.0..1.0), 0.0];
            applied_w.push(w.clone());
            x = sys.step(&x, &u, &w);
        }
        let _ = ic.step(&x, &[]).unwrap();
        for (e, a) in ic.w_history().iter().rev().zip(applied_w.iter().rev()) {
            assert!(
                vec_ops::approx_eq(e, a, 1e-9),
                "estimated {e:?} vs applied {a:?}"
            );
        }
    }

    #[test]
    fn dropout_rebooks_actuation_effort() {
        let case = case();
        let mut ic = IntermittentController::new(
            case.mpc().clone(),
            case.sets().clone(),
            Box::new(AlwaysRunPolicy),
            1,
        );
        let d = ic.step(&[2.0, 1.0], &[]).unwrap();
        assert!(!d.skipped);
        let effort_before = ic.stats().actuation_effort;
        assert!(effort_before > 0.0, "a real input was commanded");
        let _ = ic.notify_dropout();
        assert!(
            ic.stats().actuation_effort.abs() < 1e-12,
            "dropped inputs cost nothing"
        );
        assert_eq!(ic.stats().steps, 1, "decision tallies are untouched");
    }

    #[test]
    fn outside_invariant_is_an_error() {
        let case = case();
        let mut ic = IntermittentController::new(
            case.mpc().clone(),
            case.sets().clone(),
            Box::new(AlwaysRunPolicy),
            1,
        );
        let err = ic.step(&[200.0, 0.0], &[]).unwrap_err();
        assert!(matches!(err, CoreError::OutsideInvariant { .. }));
    }

    /// The heart of Theorem 1, exercised adversarially: random skipping
    /// inside X', worst-case random disturbances, long horizon — the state
    /// must never leave XI (and hence never leave X).
    #[test]
    fn theorem1_random_policy_stays_invariant() {
        let case = case();
        let sys = case.sets().plant().system().clone();
        let mut rng = StdRng::seed_from_u64(1234);
        for trial in 0..5 {
            let mut ic = IntermittentController::new(
                case.mpc().clone(),
                case.sets().clone(),
                Box::new(RandomPolicy::new(0.7, trial)),
                1,
            );
            let mut x = vec![0.0, 0.0];
            for step in 0..300 {
                assert!(
                    case.sets().invariant().contains_with_tol(&x, 1e-6),
                    "trial {trial} step {step}: left XI at {x:?}"
                );
                assert!(
                    case.sets().safe().contains_with_tol(&x, 1e-6),
                    "trial {trial} step {step}: left X at {x:?}"
                );
                let d = ic.step(&x, &[]).unwrap();
                // Adversarial extreme disturbances.
                let w = if rng.gen_bool(0.5) {
                    vec![1.0, 0.0]
                } else {
                    vec![-1.0, 0.0]
                };
                x = sys.step(&x, &d.input, &w);
            }
        }
    }

    #[test]
    fn stats_accounting_adds_up() {
        let case = case();
        let sys = case.sets().plant().system().clone();
        let mut ic = IntermittentController::new(
            case.mpc().clone(),
            case.sets().clone(),
            Box::new(RandomPolicy::new(0.5, 3)),
            1,
        );
        let mut x = vec![0.0, 0.0];
        for _ in 0..100 {
            let d = ic.step(&x, &[]).unwrap();
            x = sys.step(&x, &d.input, &[0.0, 0.0]);
        }
        let s = ic.stats();
        assert_eq!(s.steps, 100);
        assert_eq!(s.skipped + s.forced_runs + s.policy_runs, 100);
        assert!(s.skip_rate() > 0.0);
    }
}
