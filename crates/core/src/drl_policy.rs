//! The DRL skipping policy (paper §III-B-2) and its training environment.
//!
//! State: `s(t) = [x(t), w(t−r+1), …, w(t)]` (normalized). Actions:
//! `{0 = skip, 1 = run}`. Reward: `R = −w₁R₁ − w₂R₂` with `R₁ = 1` iff the
//! successor leaves the strengthened safe set and `R₂` the energy of the
//! applied input unless the step was a skip taken inside `X′`.

use std::sync::Arc;

use oic_control::Controller;
use oic_drl::{DoubleDqnAgent, Environment, StepOutcome};
use oic_geom::Polytope;
use oic_linalg::vec_ops;
use oic_nn::Mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{CoreError, PolicyContext, SafeSets, SkipDecision, SkipPolicy};

/// A custom `R₂` energy measure `f(x, u)`.
pub type EnergyMetric = Box<dyn Fn(&[f64], &[f64]) -> f64>;

/// Reward weights (paper §IV uses `w₁ = 0.01, w₂ = 0.0001`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipRewardWeights {
    /// Penalty weight `w₁` for leaving the strengthened safe set.
    pub leave_strengthened: f64,
    /// Penalty weight `w₂` on the actuation energy.
    pub energy: f64,
}

impl Default for SkipRewardWeights {
    fn default() -> Self {
        Self {
            leave_strengthened: 0.01,
            energy: 0.0001,
        }
    }
}

/// A disturbance sequence generator: one instance drives one episode.
pub trait DisturbanceProcess {
    /// The disturbance `w(t)` applied at step `t`.
    fn next(&mut self, t: usize) -> Vec<f64>;

    /// Writes the disturbance `w(t)` into `out` instead of allocating a
    /// fresh vector — the batch engine's lockstep episode kernel calls
    /// this once per live episode per step, so implementations should
    /// override the defaulted body with an allocation-free one. Any
    /// override must consume its RNG in **exactly** the order `next`
    /// does: the engine's byte-identical-report contract hashes on the
    /// draw sequence, not the call shape.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the disturbance dimension.
    fn next_into(&mut self, t: usize, out: &mut [f64]) {
        let w = self.next(t);
        out.copy_from_slice(&w);
    }
}

/// Normalizes `[x, w-history]` into the Q-network input vector.
///
/// Scales are half-widths of the safe-set and disturbance-set bounding
/// boxes (degenerate dimensions get scale 1 to avoid division by zero).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StateEncoder {
    x_scale: Vec<f64>,
    w_scale: Vec<f64>,
    memory: usize,
}

impl StateEncoder {
    /// The normalization scale for one bounding-box axis `[l, h]`.
    ///
    /// Degenerate axes must not poison the encoding: a zero-width axis
    /// (rank-deficient `W`, as in two-mass-spring) would make every
    /// division inf/NaN, and an unbounded axis (±inf box edge) would
    /// encode every draw as ±0 or NaN. Both fall back to scale 1.
    pub(crate) fn axis_scale(l: f64, h: f64) -> f64 {
        let w = 0.5 * (h - l);
        if w.is_finite() && w > 1e-9 {
            w
        } else {
            1.0
        }
    }

    pub(crate) fn from_sets(sets: &SafeSets, memory: usize) -> Self {
        let half_width = |p: &Polytope| -> Vec<f64> {
            match p.bounding_box() {
                Ok((lo, hi)) => lo
                    .iter()
                    .zip(&hi)
                    .map(|(l, h)| Self::axis_scale(*l, *h))
                    .collect(),
                Err(_) => vec![1.0; p.dim()],
            }
        };
        Self {
            x_scale: half_width(sets.safe()),
            w_scale: half_width(sets.plant().disturbance_set()),
            memory,
        }
    }

    pub(crate) fn state_dim(&self) -> usize {
        self.x_scale.len() + self.memory * self.w_scale.len()
    }

    /// Encodes the state; missing history entries are zero (the paper sets
    /// `w(−r+1), …, w(−1)` to 0).
    pub(crate) fn encode(&self, x: &[f64], w_history: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.state_dim());
        self.encode_into(x, w_history, &mut out);
        out
    }

    /// [`encode`](Self::encode) into a caller-owned buffer (cleared first)
    /// so the batch engine's inference hot loop allocates nothing per step.
    pub(crate) fn encode_into(&self, x: &[f64], w_history: &[Vec<f64>], out: &mut Vec<f64>) {
        let n = self.x_scale.len();
        assert_eq!(x.len(), n, "state dimension mismatch");
        out.clear();
        out.reserve(self.state_dim());
        for (v, s) in x.iter().zip(&self.x_scale) {
            out.push(v / s);
        }
        // Use the last `memory` entries, oldest first, left-padded with 0.
        let have = w_history.len().min(self.memory);
        for _ in 0..(self.memory - have) {
            out.extend(std::iter::repeat_n(0.0, self.w_scale.len()));
        }
        for w in &w_history[w_history.len() - have..] {
            assert_eq!(
                w.len(),
                self.w_scale.len(),
                "disturbance dimension mismatch"
            );
            for (v, s) in w.iter().zip(&self.w_scale) {
                out.push(v / s);
            }
        }
    }
}

/// The training environment for the DRL skipping policy: wraps the plant,
/// the underlying controller `κ`, the safe sets, and a per-episode
/// disturbance process.
///
/// Implements [`oic_drl::Environment`], so [`oic_drl::train`] runs on it
/// directly. Outside `X′` the environment forces `z = 1` exactly like the
/// runtime monitor does — the agent's reward then reflects the forced run.
pub struct SkipTrainingEnv {
    sets: SafeSets,
    controller: Box<dyn Controller>,
    encoder: StateEncoder,
    weights: SkipRewardWeights,
    disturbance_factory: Box<dyn FnMut(u64) -> Box<dyn DisturbanceProcess>>,
    process: Option<Box<dyn DisturbanceProcess>>,
    energy_metric: Option<EnergyMetric>,
    x: Vec<f64>,
    w_history: Vec<Vec<f64>>,
    t: usize,
    episode: u64,
    rng: StdRng,
}

impl SkipTrainingEnv {
    /// Creates the environment.
    ///
    /// `disturbance_factory` receives an episode index and returns the
    /// disturbance process for that episode (vary the seed for diversity).
    /// `memory` is the paper's `r`.
    ///
    /// # Panics
    ///
    /// Panics if the controller dimensions disagree with the plant's.
    pub fn new(
        sets: SafeSets,
        controller: Box<dyn Controller>,
        memory: usize,
        weights: SkipRewardWeights,
        disturbance_factory: Box<dyn FnMut(u64) -> Box<dyn DisturbanceProcess>>,
        seed: u64,
    ) -> Self {
        let n = sets.plant().system().state_dim();
        assert_eq!(
            controller.state_dim(),
            n,
            "controller state dimension mismatch"
        );
        assert_eq!(
            controller.input_dim(),
            sets.plant().system().input_dim(),
            "controller input dimension mismatch"
        );
        let encoder = StateEncoder::from_sets(&sets, memory);
        Self {
            sets,
            controller,
            encoder,
            weights,
            disturbance_factory,
            process: None,
            energy_metric: None,
            x: vec![0.0; n],
            w_history: Vec::new(),
            t: 0,
            episode: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Replaces the default `R₂` energy measure (`‖u − u_skip‖₁`, the paper's
    /// `‖κ(x)‖₁` in skip-relative form) with a custom metric `f(x, u)`.
    ///
    /// The ACC case study uses this to meter the same tractive-power fuel
    /// model the evaluation reports, so the learned policy optimizes the
    /// quantity the figures measure (see DESIGN.md, substitutions).
    pub fn set_energy_metric(&mut self, metric: EnergyMetric) {
        self.energy_metric = Some(metric);
    }

    /// Samples a state uniformly from the strengthened safe set (shared
    /// [`SafeSets::sample_strengthened`] rejection sampler).
    fn sample_strengthened(&mut self) -> Vec<f64> {
        self.sets.sample_strengthened(&mut self.rng)
    }

    /// The actuation-energy measure used in `R₂`: by default the distance
    /// of the applied input from the skip (free-coasting) input, matching
    /// the Eq. (6) objective; overridable via
    /// [`set_energy_metric`](Self::set_energy_metric).
    fn energy(&self, x: &[f64], u: &[f64]) -> f64 {
        match &self.energy_metric {
            Some(f) => f(x, u),
            None => vec_ops::norm1(&vec_ops::sub(u, self.sets.skip_input())),
        }
    }
}

impl Environment for SkipTrainingEnv {
    fn state_dim(&self) -> usize {
        self.encoder.state_dim()
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f64> {
        self.episode += 1;
        self.process = Some((self.disturbance_factory)(self.episode));
        self.x = self.sample_strengthened();
        self.w_history.clear();
        self.t = 0;
        self.encoder.encode(&self.x, &self.w_history)
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let in_strengthened = self.sets.strengthened().contains(&self.x);
        // The monitor's rule: outside X', the controller must run.
        let z_run = action == 1 || !in_strengthened;
        let u = if z_run {
            self.controller
                .control(&self.x)
                .unwrap_or_else(|_| self.sets.skip_input().to_vec())
        } else {
            self.sets.skip_input().to_vec()
        };
        let w = self
            .process
            .as_mut()
            .expect("reset() must be called before step()")
            .next(self.t);
        let x_next = self.sets.plant().system().step(&self.x, &u, &w);

        // Reward per the paper's definition.
        let r1 = if self.sets.strengthened().contains(&x_next) {
            0.0
        } else {
            1.0
        };
        let r2 = if !z_run && in_strengthened {
            0.0
        } else {
            self.energy(&self.x, &u)
        };
        let reward = -self.weights.leave_strengthened * r1 - self.weights.energy * r2;

        // Leaving XI terminates the episode (cannot happen when the sets
        // are certified; kept as a guard for uncertified configurations).
        let done = !self.sets.invariant().contains_with_tol(&x_next, 1e-6);

        self.w_history.push(w);
        let keep = self.encoder.memory.max(1);
        if self.w_history.len() > keep {
            let drop = self.w_history.len() - keep;
            self.w_history.drain(..drop);
        }
        self.x = x_next;
        self.t += 1;
        StepOutcome {
            next_state: self.encoder.encode(&self.x, &self.w_history),
            reward,
            done,
        }
    }
}

/// A trained DQN as the runtime skipping policy `Ω`.
///
/// Wraps the greedy policy of a [`DoubleDqnAgent`] trained on
/// [`SkipTrainingEnv`]; the encoder must use the same memory length `r`.
pub struct DrlPolicy {
    agent: DoubleDqnAgent,
    encoder: StateEncoder,
}

impl DrlPolicy {
    /// Creates the policy from a trained agent.
    ///
    /// # Panics
    ///
    /// Panics if the agent's input dimension disagrees with
    /// `n + memory·n_w` for the given sets and memory.
    pub fn new(agent: DoubleDqnAgent, sets: &SafeSets, memory: usize) -> Self {
        let encoder = StateEncoder::from_sets(sets, memory);
        assert_eq!(
            agent.config().state_dim,
            encoder.state_dim(),
            "agent input dimension does not match encoder"
        );
        Self { agent, encoder }
    }

    /// Read access to the wrapped agent (e.g. for Q-value inspection).
    pub fn agent(&self) -> &DoubleDqnAgent {
        &self.agent
    }
}

impl SkipPolicy for DrlPolicy {
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision {
        let encoded = self.encoder.encode(ctx.state, ctx.w_history);
        match self.agent.act_greedy(&encoded) {
            0 => SkipDecision::Skip,
            _ => SkipDecision::Run,
        }
    }

    fn name(&self) -> &'static str {
        "drl"
    }
}

/// A trained Q-network as an **inference-only** skipping policy.
///
/// Unlike [`DrlPolicy`] this carries no agent (no replay buffer, no
/// optimizer, no exploration RNG) — just the network behind an [`Arc`]
/// plus the scenario's `StateEncoder`. That makes it the right shape
/// for the batch engine: the weight blob is decoded **once per policy**,
/// the `Arc` is shared across all worker deques, and per-episode
/// instantiation is a cheap clone. Action selection is greedy argmax with
/// a fixed lowest-index tie-break (ties pick *skip*), so a given network
/// always produces the same decision sequence — byte-identical reports
/// for any thread count.
#[derive(Debug, Clone)]
pub struct GreedyDrlPolicy {
    net: Arc<Mlp>,
    encoder: StateEncoder,
    memory: usize,
}

impl GreedyDrlPolicy {
    /// Decodes an `oic-nn` weight blob ([`Mlp::to_bytes`] layout) into a
    /// shareable network.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Policy`] when the blob is malformed.
    pub fn decode(blob: &[u8]) -> Result<Arc<Mlp>, CoreError> {
        Mlp::from_bytes(blob)
            .map(Arc::new)
            .map_err(|e| CoreError::Policy {
                reason: format!("weight blob decode failed: {e}"),
            })
    }

    /// The disturbance-history length `r` a network was trained with on
    /// the given sets, inferred from its input layer: the encoder feeds
    /// `n + r·n_w` inputs, so `r = (input_dim − n) / n_w`. Returns `None`
    /// when no `r ≥ 1` fits (wrong plant dimension) or the output layer
    /// is not the two skip/run Q-values — the network does not apply to
    /// this scenario.
    pub fn infer_memory(net: &Mlp, sets: &SafeSets) -> Option<usize> {
        let n = sets.plant().system().state_dim();
        let n_w = sets.plant().disturbance_set().dim();
        if net.output_dim() != 2 || net.input_dim() <= n || n_w == 0 {
            return None;
        }
        let extra = net.input_dim() - n;
        extra.is_multiple_of(n_w).then(|| extra / n_w)
    }

    /// Binds a decoded network to one scenario's sets, inferring the
    /// memory length from the architecture (see
    /// [`infer_memory`](Self::infer_memory)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Policy`] when the network does not fit the
    /// scenario's state/disturbance dimensions.
    pub fn from_network(net: Arc<Mlp>, sets: &SafeSets) -> Result<Self, CoreError> {
        let memory = Self::infer_memory(&net, sets).ok_or_else(|| CoreError::Policy {
            reason: format!(
                "network {}→{} does not fit a plant with {} states and {}-dim disturbances",
                net.input_dim(),
                net.output_dim(),
                sets.plant().system().state_dim(),
                sets.plant().disturbance_set().dim()
            ),
        })?;
        let encoder = StateEncoder::from_sets(sets, memory);
        debug_assert_eq!(encoder.state_dim(), net.input_dim());
        Ok(Self {
            net,
            encoder,
            memory,
        })
    }

    /// Convenience: [`decode`](Self::decode) + [`from_network`](Self::from_network).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Policy`] on malformed blobs or dimension
    /// mismatches.
    pub fn from_bytes(blob: &[u8], sets: &SafeSets) -> Result<Self, CoreError> {
        Self::from_network(Self::decode(blob)?, sets)
    }

    /// The inferred disturbance-history length `r`.
    pub fn memory(&self) -> usize {
        self.memory
    }

    /// The shared Q-network.
    pub fn network(&self) -> &Arc<Mlp> {
        &self.net
    }

    /// Encodes `[x, w-history]` into a caller-owned buffer using this
    /// policy's scenario-bound `StateEncoder` — the batch engine stages
    /// one encoded row per live episode here, then runs a single
    /// [`Mlp::forward_batch`] over the block.
    pub fn encode_into(&self, state: &[f64], w_history: &[Vec<f64>], out: &mut Vec<f64>) {
        self.encoder.encode_into(state, w_history, out);
    }

    /// The greedy action for a Q-row: strict `>` keeps the lowest index
    /// on ties (ties pick *skip*), matching `DoubleDqnAgent::act_greedy`.
    /// Shared by the scalar path and the lockstep kernel so both decode
    /// batched Q-values identically.
    pub fn action_from_q(q: &[f64]) -> usize {
        if q[1] > q[0] {
            1
        } else {
            0
        }
    }

    /// The greedy action (0 = skip, 1 = run) at a raw state + history —
    /// exposed for golden-fixture inspection in tests.
    pub fn greedy_action(&self, state: &[f64], w_history: &[Vec<f64>]) -> usize {
        let timer = oic_obs::Stopwatch::start();
        let q = self.net.forward(&self.encoder.encode(state, w_history));
        timer.stop_into(oic_obs::histogram!("drl.infer_ns", "ns"));
        Self::action_from_q(&q)
    }
}

impl SkipPolicy for GreedyDrlPolicy {
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision {
        match self.greedy_action(ctx.state, ctx.w_history) {
            0 => SkipDecision::Skip,
            _ => SkipDecision::Run,
        }
    }

    fn name(&self) -> &'static str {
        "drl-greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::AccCaseStudy;
    use oic_drl::DqnConfig;

    struct ZeroDisturbance(usize);
    impl DisturbanceProcess for ZeroDisturbance {
        fn next(&mut self, _t: usize) -> Vec<f64> {
            vec![0.0; self.0]
        }
    }

    fn env(case: &AccCaseStudy) -> SkipTrainingEnv {
        SkipTrainingEnv::new(
            case.sets().clone(),
            Box::new(case.mpc().clone()),
            1,
            SkipRewardWeights::default(),
            Box::new(|_| Box::new(ZeroDisturbance(2))),
            7,
        )
    }

    #[test]
    fn axis_scale_clamps_degenerate_and_nonfinite_widths() {
        // Regular axis: half-width.
        assert_eq!(StateEncoder::axis_scale(-2.0, 4.0), 3.0);
        // Zero width (rank-deficient W axis) → 1.0, not 0 (would divide
        // every encoding into inf/NaN).
        assert_eq!(StateEncoder::axis_scale(0.5, 0.5), 1.0);
        // Inverted / empty axis → 1.0.
        assert_eq!(StateEncoder::axis_scale(1.0, -1.0), 1.0);
        // Unbounded axes previously slipped past the `w > 1e-9` clamp as
        // +inf half-widths, encoding every draw to ±0; NaN-width from
        // inf − inf was silently clamped only by luck of NaN ordering.
        assert_eq!(StateEncoder::axis_scale(f64::NEG_INFINITY, 1.0), 1.0);
        assert_eq!(StateEncoder::axis_scale(-1.0, f64::INFINITY), 1.0);
        assert_eq!(
            StateEncoder::axis_scale(f64::NEG_INFINITY, f64::INFINITY),
            1.0
        );
        assert_eq!(StateEncoder::axis_scale(f64::NAN, 1.0), 1.0);
    }

    #[test]
    fn encoder_with_degenerate_scales_stays_finite() {
        // An encoder whose scales came from a degenerate bounding box must
        // produce finite encodings for finite inputs.
        let enc = StateEncoder {
            x_scale: vec![
                StateEncoder::axis_scale(0.0, 0.0),
                StateEncoder::axis_scale(f64::NEG_INFINITY, f64::INFINITY),
            ],
            w_scale: vec![StateEncoder::axis_scale(3.0, 3.0)],
            memory: 2,
        };
        let s = enc.encode(&[4.0, -2.5], &[vec![0.25]]);
        assert_eq!(s, vec![4.0, -2.5, 0.0, 0.25]);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let case = AccCaseStudy::build_default().unwrap();
        let enc = StateEncoder::from_sets(case.sets(), 2);
        let mut buf = vec![f64::NAN; 32]; // stale garbage must be cleared
        let history = vec![vec![0.1, -0.2], vec![0.3, 0.4]];
        enc.encode_into(&[30.0, 15.0], &history, &mut buf);
        assert_eq!(buf, enc.encode(&[30.0, 15.0], &history));
    }

    #[test]
    fn encoder_dimensions_and_padding() {
        let case = AccCaseStudy::build_default().unwrap();
        let enc = StateEncoder::from_sets(case.sets(), 2);
        assert_eq!(enc.state_dim(), 2 + 2 * 2);
        let s = enc.encode(&[30.0, 15.0], &[]);
        assert_eq!(s.len(), 6);
        assert!((s[0] - 1.0).abs() < 1e-9, "x normalized to bound");
        assert_eq!(&s[2..], &[0.0; 4], "missing history zero-padded");
    }

    #[test]
    fn reset_starts_inside_strengthened() {
        let case = AccCaseStudy::build_default().unwrap();
        let mut e = env(&case);
        for _ in 0..5 {
            let _ = e.reset();
            assert!(case.sets().strengthened().contains(&e.x));
        }
    }

    #[test]
    fn skip_inside_strengthened_costs_nothing() {
        let case = AccCaseStudy::build_default().unwrap();
        let mut e = env(&case);
        let _ = e.reset();
        // Move to the origin for a clean check.
        e.x = vec![0.0, 0.0];
        let out = e.step(0); // skip
                             // From the origin a coast step stays in X': r1 = 0, r2 = 0.
        assert_eq!(out.reward, 0.0, "skip at origin should be free");
        assert!(!out.done);
    }

    #[test]
    fn run_action_pays_energy() {
        let case = AccCaseStudy::build_default().unwrap();
        let mut e = env(&case);
        let _ = e.reset();
        e.x = vec![10.0, 5.0];
        let out = e.step(1); // run the MPC
        assert!(
            out.reward < 0.0,
            "running κ must cost energy: {}",
            out.reward
        );
    }

    #[test]
    fn greedy_policy_matches_agent_through_serialization() {
        // Train the agent a little so the weights are not the init values,
        // serialize, and check the inference-only policy reproduces the
        // agent's greedy decisions exactly.
        let case = AccCaseStudy::build_default().unwrap();
        let enc = StateEncoder::from_sets(case.sets(), 1);
        let mut agent = DoubleDqnAgent::new(DqnConfig {
            state_dim: enc.state_dim(),
            num_actions: 2,
            hidden: vec![8],
            learn_start: 4,
            batch_size: 4,
            seed: 11,
            ..DqnConfig::default()
        });
        for i in 0..40 {
            agent.remember(oic_drl::Transition {
                state: vec![0.1 * (i % 7) as f64; enc.state_dim()],
                action: i % 2,
                reward: (i % 2) as f64,
                next_state: vec![0.0; enc.state_dim()],
                done: true,
            });
            let _ = agent.train_step();
        }
        let blob = agent.save_weights();
        let mut greedy = GreedyDrlPolicy::from_bytes(&blob, case.sets()).unwrap();
        assert_eq!(greedy.memory(), 1, "inferred from the input layer");
        for i in 0..20 {
            let x = vec![0.5 * (i as f64 / 20.0), -0.3 * (i as f64 / 20.0)];
            let history = vec![vec![0.05 * i as f64, 0.0]];
            let encoded = enc.encode(&x, &history);
            let expected = agent.act_greedy(&encoded);
            assert_eq!(greedy.greedy_action(&x, &history), expected, "state {i}");
            let ctx = PolicyContext {
                state: &x,
                w_history: &history,
                w_forecast: &[],
                time_step: i,
            };
            let want = if expected == 0 {
                SkipDecision::Skip
            } else {
                SkipDecision::Run
            };
            assert_eq!(greedy.decide(&ctx), want);
        }
    }

    #[test]
    fn greedy_policy_rejects_mismatched_architectures() {
        let case = AccCaseStudy::build_default().unwrap();
        // 5 inputs: 2 states + r·2 disturbances has no integer r ≥ 1.
        let agent = DoubleDqnAgent::new(DqnConfig {
            state_dim: 5,
            num_actions: 2,
            hidden: vec![4],
            seed: 0,
            ..DqnConfig::default()
        });
        let err = GreedyDrlPolicy::from_bytes(&agent.save_weights(), case.sets()).unwrap_err();
        assert!(matches!(err, CoreError::Policy { .. }), "{err}");
        // Truncated blob fails at decode.
        let blob = agent.save_weights();
        let err = GreedyDrlPolicy::from_bytes(&blob[..blob.len() - 3], case.sets()).unwrap_err();
        assert!(matches!(err, CoreError::Policy { .. }), "{err}");
    }

    #[test]
    fn drl_policy_maps_actions() {
        let case = AccCaseStudy::build_default().unwrap();
        let enc = StateEncoder::from_sets(case.sets(), 1);
        let agent = DoubleDqnAgent::new(DqnConfig {
            state_dim: enc.state_dim(),
            num_actions: 2,
            hidden: vec![8],
            seed: 0,
            ..DqnConfig::default()
        });
        let mut policy = DrlPolicy::new(agent, case.sets(), 1);
        let ctx = PolicyContext {
            state: &[0.0, 0.0],
            w_history: &[],
            w_forecast: &[],
            time_step: 0,
        };
        // Untrained agent still returns a valid decision.
        let d = policy.decide(&ctx);
        assert!(matches!(d, SkipDecision::Skip | SkipDecision::Run));
    }
}
