//! The paper's §IV adaptive cruise control case study, assembled end to
//! end: deviation-coordinate plant, tube MPC `κ_R`, certified safe sets,
//! DRL training, and closed-loop episode execution against the traffic
//! simulator.

use oic_control::{dlqr, ConstrainedLti, Lti, TubeMpc, TubeMpcBuilder};
use oic_drl::{train, DoubleDqnAgent, DqnConfig, TrainingStats};
use oic_geom::Polytope;
use oic_linalg::Matrix;
use oic_sim::front::{FixedTraceFront, FrontModel};
use oic_sim::fuel::FuelModel;
use oic_sim::{AccParams, SimSummary, TrafficSim};
use rand::Rng;

use crate::{
    CoreError, DisturbanceProcess, DrlPolicy, IntermittentController, RunStats, SafeSets,
    SkipInput, SkipPolicy, SkipRewardWeights, SkipTrainingEnv,
};

/// How many future disturbance samples are handed to oracle policies.
const ORACLE_WINDOW: usize = 10;

/// The fully assembled ACC case study.
///
/// # Examples
///
/// ```
/// use oic_core::acc::AccCaseStudy;
///
/// # fn main() -> Result<(), oic_core::CoreError> {
/// let case = AccCaseStudy::build_default()?;
/// assert_eq!(case.mpc().horizon(), 10);
/// assert!(case.sets().strengthened().contains(&[0.0, 0.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AccCaseStudy {
    params: AccParams,
    mpc: TubeMpc,
    sets: SafeSets,
    gain: Matrix,
}

/// Everything needed to run one closed-loop episode.
pub struct EpisodeConfig<'a> {
    /// The skipping policy under test.
    pub policy: &'a mut dyn SkipPolicy,
    /// The front-vehicle behaviour for this episode.
    pub front: Box<dyn FrontModel>,
    /// The fuel meter.
    pub fuel: Box<dyn FuelModel>,
    /// Episode length in control steps.
    pub steps: usize,
    /// Initial deviation state (must lie in `XI`; sample with
    /// [`AccCaseStudy::sample_initial_state`]).
    pub initial_state: [f64; 2],
    /// Hand the policy the true future disturbances (the model-based
    /// policy's "known w" assumption).
    pub oracle_forecast: bool,
}

/// Result of one closed-loop episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeOutcome {
    /// Simulator-side summary (fuel, violations, skip annotations).
    pub summary: SimSummary,
    /// Runtime-side statistics (skip rate, forced runs, effort).
    pub stats: RunStats,
}

impl AccCaseStudy {
    /// Builds the case study with explicit parameters, MPC horizon, and
    /// skip-input semantics.
    ///
    /// # Errors
    ///
    /// Propagates MPC construction, feasible-set, and certification
    /// failures.
    pub fn build(
        params: AccParams,
        horizon: usize,
        skip_input: SkipInput,
    ) -> Result<Self, CoreError> {
        let (x_lo, x_hi, u_lo, u_hi, w_lo, w_hi) = params.deviation_bounds();
        let plant = ConstrainedLti::new(
            Lti::new(params.a_matrix(), params.b_matrix()),
            Polytope::from_box(&x_lo, &x_hi),
            Polytope::from_box(&u_lo, &u_hi),
            Polytope::from_box(&w_lo, &w_hi),
        );
        let gain = dlqr(
            plant.system().a(),
            plant.system().b(),
            &Matrix::identity(2),
            &Matrix::identity(1),
        )?;
        // Weights make κ_R a *tight* distance-tracking controller (the
        // conservative, always-actuating baseline the paper compares
        // against). With a uniform 1-norm state weight the velocity penalty
        // outweighs any distance correction reachable within the horizon
        // and the MPC stops actuating altogether — so the distance deviation
        // is weighted heavily, the velocity deviation barely, and the input
        // lightly.
        let mpc = TubeMpcBuilder::new(plant, horizon)
            .state_weight_vector(vec![1.0, 0.02])
            .input_weight(0.05)
            .build()?;
        let sets = SafeSets::for_tube_mpc(&mpc, &skip_input)?;
        sets.certify()?;
        Ok(Self {
            params,
            mpc,
            sets,
            gain,
        })
    }

    /// The paper's configuration: default parameters, horizon 10, and
    /// physical coasting (`u_abs = 0`) as the skip input.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_default() -> Result<Self, CoreError> {
        let params = AccParams::default();
        let coast = SkipInput::Vector(vec![-params.u_eq()]);
        Self::build(params, 10, coast)
    }

    /// The case-study parameters.
    pub fn params(&self) -> &AccParams {
        &self.params
    }

    /// The underlying robust MPC `κ_R`.
    pub fn mpc(&self) -> &TubeMpc {
        &self.mpc
    }

    /// The certified safe-set hierarchy.
    pub fn sets(&self) -> &SafeSets {
        &self.sets
    }

    /// The LQR gain used by the analytic (model-based) policy variant.
    pub fn gain(&self) -> &Matrix {
        &self.gain
    }

    /// Samples a deviation state uniformly from the strengthened safe set
    /// (the experiments "randomly pick feasible initial states within X′";
    /// shared [`SafeSets::sample_strengthened`] rejection sampler).
    pub fn sample_initial_state<R: Rng>(&self, rng: &mut R) -> [f64; 2] {
        let sample = self.sets.sample_strengthened(rng);
        [sample[0], sample[1]]
    }

    /// Builds the runtime (Algorithm 1) around the case study's MPC.
    pub fn intermittent_controller(
        &self,
        policy: Box<dyn SkipPolicy>,
        memory: usize,
    ) -> IntermittentController<TubeMpc> {
        IntermittentController::new(self.mpc.clone(), self.sets.clone(), policy, memory)
    }

    /// Runs one closed-loop episode against the traffic simulator.
    ///
    /// The front model's velocity trace is materialized up front so the
    /// same behaviour can be replayed across controllers and so oracle
    /// policies can see the future disturbance window.
    ///
    /// # Errors
    ///
    /// * [`CoreError::OutsideInvariant`] — the state left `XI`, i.e. the
    ///   disturbance exceeded the modeled `W` (front vehicle outside its
    ///   assumed velocity range).
    /// * [`CoreError::Control`] — the underlying MPC failed inside its
    ///   certified region (should not happen).
    pub fn run_episode(&self, config: EpisodeConfig<'_>) -> Result<EpisodeOutcome, CoreError> {
        let EpisodeConfig {
            policy,
            mut front,
            fuel,
            steps,
            initial_state,
            oracle_forecast,
        } = config;
        let replay = FixedTraceFront::materialize(front.as_mut(), steps);
        let vf_trace: Vec<f64> = replay.trace().to_vec();
        let (s0, v0) = self.params.from_deviation(&initial_state);
        let mut sim = TrafficSim::new(self.params.clone(), Box::new(replay), fuel, s0, v0);
        sim.reserve_trace(steps);

        // `SkipPolicy` is implemented for `&mut dyn SkipPolicy`, so the
        // runtime borrows the caller's policy for the episode. The history
        // window is kept larger than any policy's `r` (the encoder takes
        // the most recent entries it needs).
        let mut ic = IntermittentController::new(self.mpc.clone(), self.sets.clone(), policy, 8);

        for t in 0..steps {
            let x = self.params.to_deviation(sim.distance(), sim.velocity());
            let forecast: Vec<Vec<f64>> = if oracle_forecast {
                vf_trace[t..(t + ORACLE_WINDOW).min(vf_trace.len())]
                    .iter()
                    .map(|vf| self.params.disturbance(*vf).to_vec())
                    .collect()
            } else {
                Vec::new()
            };
            let decision = ic.step(&x, &forecast)?;
            let u_abs = self.params.input_from_deviation(decision.input[0]);
            sim.step_annotated(u_abs, decision.skipped);
        }
        Ok(EpisodeOutcome {
            summary: sim.summary(),
            stats: ic.stats().clone(),
        })
    }

    /// Trains a DQN skipping policy against a family of front-vehicle
    /// behaviours (`front_factory(episode_seed)` supplies one per episode).
    ///
    /// Returns the trained policy and the training statistics. `memory` is
    /// the paper's `r` (1 in §IV); reward weights default to the paper's
    /// `w₁ = 0.01, w₂ = 0.0001`.
    pub fn train_drl(
        &self,
        front_factory: Box<dyn FnMut(u64) -> Box<dyn FrontModel>>,
        episodes: usize,
        steps_per_episode: usize,
        memory: usize,
        seed: u64,
    ) -> (DrlPolicy, TrainingStats) {
        let params = self.params.clone();
        let mut factory = front_factory;
        let disturbance_factory = Box::new(move |episode: u64| -> Box<dyn DisturbanceProcess> {
            Box::new(FrontDisturbance {
                params: params.clone(),
                front: factory(episode),
            })
        });
        // R₂ meters the same tractive-power fuel the evaluation reports
        // (substitution documented in DESIGN.md: the paper's `‖κ(x)‖₁`
        // cannot distinguish free braking from expensive acceleration under
        // the fuel model the figures use). The energy weight is calibrated
        // so a typical run step costs a few tenths of the X′-exit penalty,
        // the same balance as the paper's (w₁, w₂) with their input ranges.
        let weights = SkipRewardWeights {
            leave_strengthened: 0.01,
            energy: 0.05,
        };
        let mut env = SkipTrainingEnv::new(
            self.sets.clone(),
            Box::new(self.mpc.clone()),
            memory,
            weights,
            disturbance_factory,
            seed,
        );
        let fuel_params = self.params.clone();
        let fuel = oic_sim::fuel::Hbefa3Fuel::default();
        env.set_energy_metric(Box::new(move |x: &[f64], u: &[f64]| {
            use oic_sim::fuel::{FuelContext, FuelModel};
            let v_abs = x[1] + fuel_params.v_ref();
            let u_abs = fuel_params.input_from_deviation(u[0]);
            fuel.consumption(&FuelContext {
                velocity: v_abs,
                acceleration: fuel_params.acceleration(v_abs, u_abs),
                input: u_abs,
                dt: fuel_params.dt,
            }) / fuel_params.dt
        }));
        let state_dim = 2 + memory * 2;
        let mut agent = DoubleDqnAgent::new(DqnConfig {
            state_dim,
            num_actions: 2,
            hidden: vec![64, 64],
            gamma: 0.95,
            learning_rate: 1e-3,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.9995,
            buffer_capacity: 50_000,
            batch_size: 64,
            target_sync_every: 250,
            learn_start: 500,
            seed,
        });
        let stats = train(&mut agent, &mut env, episodes, steps_per_episode);
        agent.sync_target();
        (DrlPolicy::new(agent, &self.sets, memory), stats)
    }
}

/// Adapts a front-vehicle model into the deviation-coordinate disturbance
/// process `w(t) = (δ·(v_f(t) − v*), 0)`.
struct FrontDisturbance {
    params: AccParams,
    front: Box<dyn FrontModel>,
}

impl DisturbanceProcess for FrontDisturbance {
    fn next(&mut self, t: usize) -> Vec<f64> {
        self.params.disturbance(self.front.velocity(t)).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysRunPolicy, BangBangPolicy};
    use oic_sim::front::SinusoidalFront;
    use oic_sim::fuel::Hbefa3Fuel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn case() -> AccCaseStudy {
        AccCaseStudy::build_default().unwrap()
    }

    #[test]
    fn build_default_certifies() {
        let c = case();
        c.sets().certify().unwrap();
        assert!(c.sets().invariant().contains(&[0.0, 0.0]));
    }

    #[test]
    fn sampled_initial_states_are_strengthened() {
        let c = case();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let x = c.sample_initial_state(&mut rng);
            assert!(c.sets().strengthened().contains(&x));
        }
    }

    #[test]
    fn episode_with_rmpc_only_is_safe() {
        let c = case();
        let mut policy = AlwaysRunPolicy;
        let outcome = c
            .run_episode(EpisodeConfig {
                policy: &mut policy,
                front: Box::new(SinusoidalFront::new(c.params(), 40.0, 9.0, 1.0, 11)),
                fuel: Box::new(Hbefa3Fuel::default()),
                steps: 100,
                initial_state: [0.0, 0.0],
                oracle_forecast: false,
            })
            .unwrap();
        assert_eq!(outcome.summary.safety_violations, 0);
        assert_eq!(outcome.stats.skipped, 0);
        assert_eq!(outcome.summary.steps, 100);
    }

    #[test]
    fn bang_bang_skips_and_saves_fuel() {
        let c = case();
        let front_seed = 17;
        let run = |policy: &mut dyn SkipPolicy| {
            c.run_episode(EpisodeConfig {
                policy,
                front: Box::new(SinusoidalFront::new(c.params(), 40.0, 9.0, 1.0, front_seed)),
                fuel: Box::new(Hbefa3Fuel::default()),
                steps: 100,
                initial_state: [0.0, 0.0],
                oracle_forecast: false,
            })
            .unwrap()
        };
        let mut always = AlwaysRunPolicy;
        let base = run(&mut always);
        let mut bang = BangBangPolicy;
        let skipping = run(&mut bang);
        assert_eq!(skipping.summary.safety_violations, 0);
        assert!(
            skipping.stats.skipped > 30,
            "skips: {}",
            skipping.stats.skipped
        );
        assert!(
            skipping.summary.total_fuel < base.summary.total_fuel,
            "skipping should save fuel: {} vs {}",
            skipping.summary.total_fuel,
            base.summary.total_fuel
        );
    }

    #[test]
    fn drl_training_smoke() {
        let c = case();
        let params = c.params().clone();
        let (policy, stats) = c.train_drl(
            Box::new(move |seed| Box::new(SinusoidalFront::new(&params, 40.0, 9.0, 1.0, seed))),
            5,
            50,
            1,
            2,
        );
        assert_eq!(stats.episode_returns.len(), 5);
        assert!(policy.agent().buffer_len() > 0);
    }
}
