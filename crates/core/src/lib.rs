//! Opportunistic intermittent control with safety guarantees.
//!
//! This crate is the paper's contribution (Huang et al., DAC 2020): an
//! online framework that **skips** the computation and actuation of an
//! underlying safe controller whenever a formally computed *strengthened
//! safe set* certifies that one step of "skip" cannot leave the robust
//! control invariant set.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | `X ⊇ XI ⊇ X′` (Fig. 1) | [`SafeSets`] with LP inclusion certificates |
//! | `B(Y, z)` backward reachable set (Def. 2) | [`SafeSets::backward_reachable`] |
//! | `X′ = B(XI, 0) ∩ XI` (Def. 3) | [`SafeSets::new`] (with configurable [`SkipInput`]) |
//! | runtime monitor (Fig. 2) | [`Monitor`] |
//! | Algorithm 1 | [`IntermittentController::step`] |
//! | `Ω` model-based, Eq. (6) | [`ModelBasedPolicy`] (MILP) |
//! | `Ω` DRL-based (§III-B-2) | [`DrlPolicy`] + [`SkipTrainingEnv`] |
//! | bang-bang baseline, Eq. (7) | [`BangBangPolicy`] |
//! | Theorem 1 | safety holds for **any** policy — see `tests/` property tests |
//!
//! The [`acc`] module assembles the paper's §IV adaptive-cruise-control case
//! study end to end.
//!
//! # Examples
//!
//! ```
//! use oic_core::acc::AccCaseStudy;
//!
//! # fn main() -> Result<(), oic_core::CoreError> {
//! let case = AccCaseStudy::build_default()?;
//! // The three nested safe sets of Fig. 1, with certificates:
//! case.sets().certify()?;
//! # Ok(())
//! # }
//! ```

pub mod acc;
pub mod skip_horizon;

mod drl_policy;
mod error;
mod model_based;
mod monitor;
mod policy;
mod runtime;
mod safe_sets;

pub use drl_policy::{
    DisturbanceProcess, DrlPolicy, EnergyMetric, GreedyDrlPolicy, SkipRewardWeights,
    SkipTrainingEnv,
};
pub use error::CoreError;
pub use model_based::ModelBasedPolicy;
pub use monitor::{Monitor, Verdict};
pub use policy::{
    AlwaysRunPolicy, BangBangPolicy, PeriodicSkipPolicy, PolicyContext, RandomPolicy, SkipDecision,
    SkipPolicy,
};
pub use runtime::{ControlDecision, IntermittentController, RunStats};
pub use safe_sets::{SafeSets, SkipInput};
