//! The model-based skipping policy — paper Eq. (6) as a mixed-integer
//! program.
//!
//! Applicable when the underlying controller is analytic (`κ(x) = Kx`) and
//! the disturbance over the decision horizon is known (the paper's "model-
//! based approach" assumptions). At each step it minimizes the actuation
//! energy `Σ‖u(k) − u_skip‖₁` over binary skip choices `z(k)`, subject to
//! the predicted states staying in the strengthened safe set `X′`, and
//! applies the first `z*` (receding horizon; no terminal constraint —
//! paper Remark 1).

use oic_control::ConstrainedLti;
use oic_geom::{Polytope, SupportFunction};
use oic_linalg::Matrix;
use oic_lp::{LinearProgram, MixedIntegerProgram};

use crate::{CoreError, PolicyContext, SafeSets, SkipDecision, SkipPolicy};

/// MIP-based `Ω` for analytic controllers with known disturbances.
///
/// # Examples
///
/// ```
/// use oic_core::acc::AccCaseStudy;
/// use oic_core::ModelBasedPolicy;
///
/// # fn main() -> Result<(), oic_core::CoreError> {
/// let case = AccCaseStudy::build_default()?;
/// let policy = ModelBasedPolicy::new(case.sets(), case.gain().clone(), 5)?;
/// assert_eq!(policy.horizon(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelBasedPolicy {
    plant: ConstrainedLti,
    gain: Matrix,
    strengthened: Polytope,
    skip_input: Vec<f64>,
    horizon: usize,
    big_m: f64,
    /// `A^k` for `k = 0..=horizon`.
    a_pow: Vec<Matrix>,
    /// `A^j B` for `j = 0..horizon`.
    impulse: Vec<Matrix>,
}

impl ModelBasedPolicy {
    /// Creates the policy for the plant and sets in `sets`, with the
    /// analytic feedback `gain` and the given decision horizon `H ≥ 1`.
    ///
    /// The big-M constant is derived from support functions of `U` and
    /// `K·X′`, so the indicator constraints are valid over the whole
    /// feasible region.
    ///
    /// # Errors
    ///
    /// Propagates geometry failures while bounding `K·X′`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` or the gain shape mismatches the plant.
    pub fn new(sets: &SafeSets, gain: Matrix, horizon: usize) -> Result<Self, CoreError> {
        assert!(horizon >= 1, "horizon must be at least 1");
        let plant = sets.plant().clone();
        let sys = plant.system();
        let n = sys.state_dim();
        let m = sys.input_dim();
        assert_eq!(gain.rows(), m, "gain rows must equal input dimension");
        assert_eq!(gain.cols(), n, "gain cols must equal state dimension");

        // Big-M: bound |u_l|, |K x|_l over U and X', plus the skip input.
        let mut big_m: f64 = 1.0;
        let mut dir = vec![0.0; m];
        for l in 0..m {
            dir[l] = 1.0;
            let u_hi = plant.input_set().support(&dir)?;
            dir[l] = -1.0;
            let u_lo = -plant.input_set().support(&dir)?;
            dir[l] = 0.0;
            let row: Vec<f64> = gain.row(l).to_vec();
            let kx_hi = sets.strengthened().support(&row)?;
            let kx_lo = -sets
                .strengthened()
                .support(&row.iter().map(|v| -v).collect::<Vec<_>>())?;
            let span = u_hi.abs().max(u_lo.abs()) + kx_hi.abs().max(kx_lo.abs());
            big_m = big_m.max(2.0 * span + sets.skip_input()[l].abs() + 1.0);
        }

        let mut a_pow = Vec::with_capacity(horizon + 1);
        a_pow.push(Matrix::identity(n));
        for k in 1..=horizon {
            let next = &a_pow[k - 1] * sys.a();
            a_pow.push(next);
        }
        let impulse: Vec<Matrix> = (0..horizon).map(|j| &a_pow[j] * sys.b()).collect();

        Ok(Self {
            strengthened: sets.strengthened().clone(),
            skip_input: sets.skip_input().to_vec(),
            plant,
            gain,
            horizon,
            big_m,
            a_pow,
            impulse,
        })
    }

    /// The configured decision horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Solves Eq. (6) and returns the optimal skip sequence, or `None` when
    /// the MIP is infeasible (the caller then falls back to `Run`).
    fn solve(&self, x: &[f64], w_forecast: &[Vec<f64>]) -> Option<Vec<bool>> {
        let sys = self.plant.system();
        let n = sys.state_dim();
        let m = sys.input_dim();
        // Effective horizon: limited by the available forecast (missing
        // entries are treated as zero disturbance).
        let h = self.horizon;
        let w_at =
            |k: usize| -> Vec<f64> { w_forecast.get(k).cloned().unwrap_or_else(|| vec![0.0; n]) };

        // Accumulated disturbance part of x(k): cw(k) = Σ_{j<k} A^{k−1−j} w(j).
        let mut cw: Vec<Vec<f64>> = Vec::with_capacity(h + 1);
        cw.push(vec![0.0; n]);
        for k in 1..=h {
            let mut acc = vec![0.0; n];
            for j in 0..k {
                let contrib = self.a_pow[k - 1 - j].mul_vec(&w_at(j));
                for (a, c) in acc.iter_mut().zip(&contrib) {
                    *a += c;
                }
            }
            cw.push(acc);
        }

        // Variables: [u (h·m) | z (h) | t (h·m)].
        let n_u = h * m;
        let total = n_u + h + h * m;
        let u_ix = |k: usize, l: usize| k * m + l;
        let z_ix = |k: usize| n_u + k;
        let t_ix = |k: usize, l: usize| n_u + h + k * m + l;

        let mut costs = vec![0.0; total];
        for k in 0..h {
            for l in 0..m {
                costs[t_ix(k, l)] = 1.0;
            }
        }
        let mut lp = LinearProgram::minimize(&costs);

        // a·x(k) as a row over u plus a constant: x(k) = A^k x + Σ A^{k−1−j}B u_j + cw(k).
        let state_row = |k: usize, normal: &[f64]| -> (Vec<f64>, f64) {
            let mut row = vec![0.0; total];
            for j in 0..k {
                let coef = self.impulse[k - 1 - j].vec_mul(normal);
                for l in 0..m {
                    row[u_ix(j, l)] = coef[l];
                }
            }
            let free: f64 = normal
                .iter()
                .zip(self.a_pow[k].mul_vec(x).iter().zip(&cw[k]))
                .map(|(a, (fx, fw))| a * (fx + fw))
                .sum();
            (row, free)
        };

        // x(k+1) ∈ X' for k = 0..h−1.
        for k in 1..=h {
            for hs in self.strengthened.halfspaces() {
                let (row, free) = state_row(k, hs.normal());
                lp.add_le(&row, hs.offset() - free);
            }
        }
        // u(k) ∈ U.
        for k in 0..h {
            for hs in self.plant.input_set().halfspaces() {
                let mut row = vec![0.0; total];
                for l in 0..m {
                    row[u_ix(k, l)] = hs.normal()[l];
                }
                lp.add_le(&row, hs.offset());
            }
        }
        // Indicator semantics and the energy objective, per component l:
        //   ±(u_l(k) − (Kx(k))_l) ≤ M (1 − z_k)
        //   ±(u_l(k) − u_skip_l) ≤ M z_k
        //   ±(u_l(k) − u_skip_l) ≤ t_l(k)
        for k in 0..h {
            for l in 0..m {
                let k_row: Vec<f64> = self.gain.row(l).to_vec();
                let (kx_row, kx_free) = state_row(k, &k_row);
                // u − Kx ≤ M(1−z):  u − Kx_row·u_vars + M z ≤ M − kx_free… sign care:
                // u_l(k) − (Kx)_l ≤ M − M z_k.
                let mut row = kx_row.iter().map(|v| -v).collect::<Vec<f64>>();
                row[u_ix(k, l)] += 1.0;
                row[z_ix(k)] += self.big_m;
                lp.add_le(&row, self.big_m + kx_free);
                // (Kx)_l − u_l(k) ≤ M − M z_k.
                let mut row = kx_row.clone();
                row[u_ix(k, l)] -= 1.0;
                row[z_ix(k)] += self.big_m;
                lp.add_le(&row, self.big_m - kx_free);
                // u_l(k) − skip_l ≤ M z_k.
                let mut row = vec![0.0; total];
                row[u_ix(k, l)] = 1.0;
                row[z_ix(k)] = -self.big_m;
                lp.add_le(&row, self.skip_input[l]);
                // skip_l − u_l(k) ≤ M z_k.
                let mut row = vec![0.0; total];
                row[u_ix(k, l)] = -1.0;
                row[z_ix(k)] = -self.big_m;
                lp.add_le(&row, -self.skip_input[l]);
                // |u_l(k) − skip_l| ≤ t_l(k).
                let mut row = vec![0.0; total];
                row[u_ix(k, l)] = 1.0;
                row[t_ix(k, l)] = -1.0;
                lp.add_le(&row, self.skip_input[l]);
                row[u_ix(k, l)] = -1.0;
                lp.add_le(&row, -self.skip_input[l]);
            }
        }

        let binaries: Vec<usize> = (0..h).map(z_ix).collect();
        let mip = MixedIntegerProgram::new(lp, &binaries);
        let sol = mip.solve().ok()?;
        Some((0..h).map(|k| sol.binary_value(z_ix(k))).collect())
    }
}

impl SkipPolicy for ModelBasedPolicy {
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision {
        match self.solve(ctx.state, ctx.w_forecast) {
            // z = 1 means run; z = 0 means skip.
            Some(z) if !z[0] => SkipDecision::Skip,
            Some(_) => SkipDecision::Run,
            // Infeasible or numerical failure: running κ is always safe.
            None => SkipDecision::Run,
        }
    }

    fn name(&self) -> &'static str {
        "model-based-mip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::AccCaseStudy;

    fn policy(horizon: usize) -> ModelBasedPolicy {
        let case = AccCaseStudy::build_default().unwrap();
        ModelBasedPolicy::new(case.sets(), case.gain().clone(), horizon).unwrap()
    }

    #[test]
    fn skips_at_equilibrium_with_zero_disturbance() {
        // At the origin with no disturbance, skipping (coasting) keeps the
        // state well inside X' for several steps: the MIP must choose skip.
        let mut p = policy(4);
        let w0 = vec![vec![0.0, 0.0]; 4];
        let ctx = PolicyContext {
            state: &[0.0, 0.0],
            w_history: &[],
            w_forecast: &w0,
            time_step: 0,
        };
        assert_eq!(p.decide(&ctx), SkipDecision::Skip);
    }

    #[test]
    fn solve_returns_feasible_plan() {
        let p = policy(4);
        let w = vec![vec![0.5, 0.0]; 4];
        let plan = p.solve(&[2.0, 1.0], &w);
        assert!(plan.is_some(), "plan should exist near the origin");
        assert_eq!(plan.unwrap().len(), 4);
    }

    #[test]
    fn missing_forecast_treated_as_zero() {
        let mut p = policy(3);
        let ctx = PolicyContext {
            state: &[0.0, 0.0],
            w_history: &[],
            w_forecast: &[],
            time_step: 0,
        };
        // Must not panic and must return a decision.
        let _ = p.decide(&ctx);
    }

    #[test]
    fn energy_objective_prefers_skipping() {
        // Compare total |u_abs| of the returned plan against the all-run
        // alternative implicitly: the MIP picks skip whenever feasible, so
        // from a comfortably interior state the first action is skip.
        let mut p = policy(5);
        let w = vec![vec![0.0, 0.0]; 5];
        let ctx = PolicyContext {
            state: &[1.0, 2.0],
            w_history: &[],
            w_forecast: &w,
            time_step: 0,
        };
        assert_eq!(p.decide(&ctx), SkipDecision::Skip);
    }
}
