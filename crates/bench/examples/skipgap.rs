//! Diagnostic: how much skip-rate headroom is there above bang-bang on
//! one scenario, and where does it come from?
//!
//! Replays the committed-benchmark episode set (seed 42, 50 × 50) under
//! bang-bang and under a family of anticipatory threshold policies
//! ("run when the strengthened-set slack drops below τ"), printing the
//! skip rate and run-streak structure of each. Usage:
//! `cargo run --release -p oic-bench --example skipgap -- [scenario]`

use oic_core::{PolicyContext, SkipDecision, SkipPolicy};
use oic_engine::{episode_seed, BatchConfig};
use oic_scenarios::ScenarioRegistry;

/// Runs κ when the strengthened-set slack is below `tau`, skips
/// otherwise.
struct SlackThreshold {
    strengthened: oic_geom::Polytope,
    tau: f64,
}

impl SkipPolicy for SlackThreshold {
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> SkipDecision {
        if self.strengthened.min_slack(ctx.state) < self.tau {
            SkipDecision::Run
        } else {
            SkipDecision::Skip
        }
    }
    fn name(&self) -> &'static str {
        "slack-threshold"
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "acc".to_string());
    let registry = ScenarioRegistry::standard();
    let scenario = registry.get(&name).expect("registered scenario");
    let instance = scenario.build().expect("builds");
    let config = BatchConfig {
        episodes: 50,
        steps: 50,
        seed: 42,
        ..Default::default()
    };

    let sys = instance.sets().plant().system().clone();
    let run_with = |label: &str, make: &dyn Fn(u64) -> Box<dyn SkipPolicy>| {
        let mut skipped = 0usize;
        let mut steps = 0usize;
        let mut violations = 0usize;
        let mut run_streaks: Vec<usize> = Vec::new();
        for episode in 0..config.episodes {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let seed = episode_seed(config.seed, instance.name(), label, episode);
            let mut rng = StdRng::seed_from_u64(seed);
            let x0 = instance.sample_initial_state(&mut rng);
            let mut process = scenario.disturbance_process(seed ^ 0x9E37_79B9_7F4A_7C15);
            let mut runtime = instance.runtime(make(seed), config.memory);
            let mut x = x0;
            let mut streak = 0usize;
            for t in 0..config.steps {
                if !instance.sets().safe().contains_with_tol(&x, 1e-6) {
                    violations += 1;
                }
                let d = runtime.step(&x, &[]).expect("step");
                if d.skipped {
                    skipped += 1;
                    if streak > 0 {
                        run_streaks.push(streak);
                        streak = 0;
                    }
                } else {
                    streak += 1;
                }
                steps += 1;
                let w = process.next(t);
                x = sys.step(&x, &d.input, &w);
            }
            if streak > 0 {
                run_streaks.push(streak);
            }
        }
        let mean_streak = if run_streaks.is_empty() {
            0.0
        } else {
            run_streaks.iter().sum::<usize>() as f64 / run_streaks.len() as f64
        };
        let max_streak = run_streaks.iter().copied().max().unwrap_or(0);
        println!(
            "{label:<24} skip {:.4}  violations {violations}  run-streaks: n={} mean={mean_streak:.2} max={max_streak}",
            skipped as f64 / steps as f64,
            run_streaks.len(),
        );
    };

    run_with("bang-bang", &|_| Box::new(oic_core::BangBangPolicy));
    for tau in [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0] {
        let strengthened = instance.sets().strengthened().clone();
        run_with(&format!("slack<{tau}"), &move |_| {
            Box::new(SlackThreshold {
                strengthened: strengthened.clone(),
                tau,
            })
        });
    }
}
