//! Warm-start telemetry along a closed-loop tube-MPC trajectory: pivot
//! counts, hit rates, and fallbacks — the observable the revised backend
//! is minimizing. Run with
//! `cargo run --release -p oic-bench --example warm_diag`.

use oic_bench::fixtures::acc_closed_loop_states;
use oic_control::MpcWarmState;
use oic_core::acc::AccCaseStudy;

fn main() {
    let case = AccCaseStudy::build_default().expect("case study builds");
    let mpc = case.mpc();

    // Closed-loop rollout under adversarial alternating disturbances
    // (shared fixture with the criterion benches and the kernels bin).
    let states = acc_closed_loop_states(mpc, 20);

    // Cold: a fresh warm state per step never reuses a basis.
    let mut cold_pivots = 0u64;
    for s in &states {
        let mut fresh = MpcWarmState::new();
        mpc.solve_warm(s, &mut fresh).expect("feasible");
        cold_pivots += fresh.pivots();
    }

    // Warm: one carried state across the whole episode.
    let mut warm = MpcWarmState::new();
    for s in &states {
        mpc.solve_warm(s, &mut warm).expect("feasible");
    }

    let n = states.len() as u64;
    println!("steps: {n}");
    println!(
        "cold:  {cold_pivots} pivots total ({} per step)",
        cold_pivots / n
    );
    println!(
        "warm:  {} pivots total ({} per step), {} warm hits, {} fallbacks",
        warm.pivots(),
        warm.pivots() / n,
        warm.warm_hits(),
        warm.fallbacks(),
    );
}
