//! Regression tests for the committed golden learned-skipping fixtures.
//!
//! These pin the tentpole claim of the learned-policy pipeline: on the
//! ACC study the golden DQN harvests strictly more skips than every
//! analytic policy while Theorem 1 keeps every trajectory safe — and the
//! whole learned sweep stays byte-identical for any worker count.

use oic_bench::experiments::batch::standard_policies;
use oic_bench::golden;
use oic_engine::{run_batch, BatchConfig, PolicySpec};
use oic_scenarios::{AccScenario, ScenarioRegistry};

fn acc_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Box::new(AccScenario::default()));
    registry
}

/// The committed-benchmark shape: 50 episodes × 50 steps, seed 42 —
/// exactly the cells `BENCH_batch.json` locks.
fn bench_config() -> BatchConfig {
    BatchConfig {
        episodes: 50,
        steps: 50,
        seed: 42,
        ..Default::default()
    }
}

/// Golden-fixture inference on ACC reproduces a pinned tally. The pin is
/// on integer step counts (no float formatting in the loop), so any
/// silent weight-decode drift, action-order change, or encoder change
/// trips it immediately.
#[test]
fn golden_acc_tally_is_pinned() {
    let mut policies = standard_policies();
    policies.push(PolicySpec::drl("acc", golden::ACC_DQN));
    let report = run_batch(&acc_registry(), &policies, &bench_config()).unwrap();
    let drl = report
        .cells
        .iter()
        .find(|c| c.policy == "drl-acc")
        .expect("learned cell present");
    // Pinned when the fixture was trained: 2118 of 2500 steps skipped,
    // not a single safety or invariant violation.
    assert_eq!(drl.total_steps, 2500);
    assert_eq!(drl.skipped_steps, 2118, "skip tally drifted");
    assert_eq!(drl.mean_skip_rate, 0.8472000000000001, "rate drifted");
    assert_eq!(drl.safety_violations, 0, "Theorem 1");
    assert_eq!(drl.invariant_violations, 0, "Theorem 1");
}

/// The paper's headline, as an inequality the suite enforces forever:
/// the learned policy out-skips **every** analytic policy on ACC.
#[test]
fn golden_acc_beats_every_analytic_policy() {
    let mut policies = standard_policies();
    policies.push(PolicySpec::drl("acc", golden::ACC_DQN));
    let report = run_batch(&acc_registry(), &policies, &bench_config()).unwrap();
    let drl = report
        .cells
        .iter()
        .find(|c| c.policy == "drl-acc")
        .unwrap()
        .clone();
    for cell in report.cells.iter().filter(|c| c.policy != "drl-acc") {
        assert!(
            drl.mean_skip_rate > cell.mean_skip_rate,
            "drl-acc ({}) must out-skip {} ({})",
            drl.mean_skip_rate,
            cell.policy,
            cell.mean_skip_rate
        );
    }
    assert_eq!(report.total_safety_violations(), 0);
}

/// A sweep containing learned cells is byte-identical at 1 vs 8 workers
/// — the decoded network is shared, greedy inference has no RNG, and the
/// merge order never depends on the thread count.
#[test]
fn learned_sweep_is_thread_count_invariant() {
    let registry = golden::registry_with_golden();
    let mut policies = standard_policies();
    policies.extend(golden::drl_policies(&registry));
    let run = |threads: usize| {
        run_batch(
            &registry,
            &policies,
            &BatchConfig {
                episodes: 12,
                steps: 30,
                seed: 7,
                threads,
                chunk: 2,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel);
    assert_eq!(
        serial.to_json(true).to_json(),
        parallel.to_json(true).to_json(),
        "JSON must match byte-for-byte"
    );
    assert!(serial.cells.iter().any(|c| c.policy == "drl-acc"));
}
