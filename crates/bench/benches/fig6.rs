//! Fig. 6 bench: per-episode cost across the regularity spectrum (pure
//! random Ex.6 vs the most regular sinusoid Ex.10). The full series is
//! produced by the `fig6` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use oic_bench::experiments::fig6::EXPERIMENTS;
use oic_core::acc::{AccCaseStudy, EpisodeConfig};
use oic_core::BangBangPolicy;
use oic_sim::fuel::Hbefa3Fuel;

fn case() -> &'static AccCaseStudy {
    use std::sync::OnceLock;
    static CASE: OnceLock<AccCaseStudy> = OnceLock::new();
    CASE.get_or_init(|| AccCaseStudy::build_default().expect("case study builds"))
}

fn bench_fig6_units(c: &mut Criterion) {
    for (label, regularity) in [EXPERIMENTS[0], EXPERIMENTS[4]] {
        c.bench_function(&format!("fig6/episode_{label}"), |b| {
            b.iter(|| {
                let case = case();
                let mut policy = BangBangPolicy;
                let outcome = case
                    .run_episode(EpisodeConfig {
                        policy: &mut policy,
                        front: regularity.front(case.params(), 11),
                        fuel: Box::new(Hbefa3Fuel::default()),
                        steps: 100,
                        initial_state: [0.0, 0.0],
                        oracle_forecast: false,
                    })
                    .expect("episode runs");
                black_box(outcome);
            })
        });
    }
}

criterion_group! {
    name = fig6;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6_units
}
criterion_main!(fig6);
