//! Micro-benchmarks of every computational kernel in the pipeline: the LP
//! solver, polytope operations, invariant-set iterations, the tube-MPC
//! solve, the monitor check, NN inference, the MILP policy, and the
//! simulator step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use oic_bench::fixtures::{acc_closed_loop_states, drifting_rhs_sequence, tall_lp};
use oic_control::{dlqr, max_rpi, InvariantOptions, MpcWarmState};
use oic_core::acc::AccCaseStudy;
use oic_core::{ModelBasedPolicy, Monitor, PolicyContext, SkipPolicy};
use oic_drl::{DoubleDqnAgent, DqnConfig};
use oic_geom::{Polytope, SupportFunction};
use oic_linalg::Matrix;
use oic_lp::{Backend, LinearProgram, WarmStart};
use oic_sim::front::SinusoidalFront;
use oic_sim::fuel::Hbefa3Fuel;
use oic_sim::{AccParams, TrafficSim};

fn case() -> &'static AccCaseStudy {
    use std::sync::OnceLock;
    static CASE: OnceLock<AccCaseStudy> = OnceLock::new();
    CASE.get_or_init(|| AccCaseStudy::build_default().expect("case study builds"))
}

fn bench_lp(c: &mut Criterion) {
    c.bench_function("lp/simplex_20var_40row", |b| {
        b.iter_batched(
            || {
                let n = 20;
                let mut lp = LinearProgram::maximize(&vec![1.0; n]);
                for i in 0..n {
                    lp.set_bounds(i, -1.0, 1.0);
                }
                for i in 0..n {
                    let mut row = vec![0.0; n];
                    row[i] = 1.0;
                    row[(i + 1) % n] = 0.5;
                    lp.add_le(&row, 1.2);
                }
                lp
            },
            |lp| black_box(lp.solve().expect("feasible")),
            BatchSize::SmallInput,
        )
    });
}

fn bench_lp_backends(c: &mut Criterion) {
    // Warm-started resolve vs cold resolve over the same RHS sequence —
    // the speedup every templated MPC step inherits. The fixtures are
    // shared with the `kernels` snapshot bin so `BENCH_kernels.json`
    // records exactly this workload.
    let lp = tall_lp(20, 80, Backend::Revised);
    let seq = drifting_rhs_sequence(&lp, 16);
    c.bench_function("lp/warm_vs_cold_resolve/cold", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for rhs in &seq {
                acc += lp.solve_with_rhs(rhs).expect("feasible").objective();
            }
            black_box(acc)
        })
    });
    c.bench_function("lp/warm_vs_cold_resolve/warm", |b| {
        b.iter(|| {
            let mut warm = WarmStart::new();
            let mut acc = 0.0;
            for rhs in &seq {
                acc += lp
                    .solve_warm_with_rhs(rhs, &mut warm)
                    .expect("feasible")
                    .objective();
            }
            black_box(acc)
        })
    });
    // Revised vs tableau cold solves across problem shapes.
    for (vars, rows, label) in [
        (5usize, 10usize, "small_5x10"),
        (20, 40, "square_20x40"),
        (20, 160, "tall_20x160"),
    ] {
        for backend in [Backend::Tableau, Backend::Revised] {
            let tag = if backend == Backend::Tableau {
                "tableau"
            } else {
                "revised"
            };
            let lp = tall_lp(vars, rows, backend);
            c.bench_function(&format!("lp/backend_sweep/{label}/{tag}"), |b| {
                b.iter(|| black_box(lp.solve().expect("feasible")))
            });
        }
    }
}

fn bench_geometry(c: &mut Criterion) {
    let xi = case().sets().invariant().clone();
    let w = Polytope::from_box(&[-1.0, 0.0], &[1.0, 0.0]);
    c.bench_function("geom/membership_check", |b| {
        b.iter(|| black_box(xi.contains(black_box(&[3.0, -2.0]))))
    });
    c.bench_function("geom/support_lp", |b| {
        b.iter(|| black_box(xi.support(black_box(&[1.0, 2.0])).expect("bounded")))
    });
    c.bench_function("geom/minkowski_diff", |b| {
        b.iter(|| black_box(xi.minkowski_diff(&w).expect("support ok")))
    });
    c.bench_function("geom/remove_redundant", |b| {
        let doubled = xi.intersection(&xi.translate(&[0.1, 0.1]));
        b.iter(|| black_box(doubled.remove_redundant()))
    });
    let lifted = Polytope::from_box(&[-10.0, -10.0, -5.0], &[10.0, 10.0, 5.0]);
    c.bench_function("geom/fourier_motzkin_eliminate", |b| {
        b.iter(|| black_box(lifted.eliminate(2)))
    });
}

fn bench_invariants(c: &mut Criterion) {
    let a_cl = Matrix::from_rows(&[&[0.8, 0.2], &[-0.2, 0.8]]);
    let w = Polytope::from_box(&[-0.1, -0.1], &[0.1, 0.1]);
    let x = Polytope::from_box(&[-2.0, -2.0], &[2.0, 2.0]);
    c.bench_function("invariant/max_rpi_fixpoint", |b| {
        b.iter(|| black_box(max_rpi(&a_cl, &w, &x, &InvariantOptions::default()).expect("exists")))
    });
    c.bench_function("invariant/dlqr_riccati", |b| {
        let a = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 0.98]]);
        let bm = Matrix::from_rows(&[&[0.0], &[0.1]]);
        b.iter(|| black_box(dlqr(&a, &bm, &Matrix::identity(2), &Matrix::identity(1)).expect("ok")))
    });
}

fn bench_controllers(c: &mut Criterion) {
    let case = case();
    c.bench_function("mpc/tube_solve", |b| {
        b.iter(|| black_box(case.mpc().solve(black_box(&[5.0, 2.0])).expect("feasible")))
    });
    // The perf trajectory of the template refactor, one step at a time:
    // rebuild-everything (the seed's solver) vs templated cold vs
    // templated + warm-started basis carried across the resolve sequence.
    // The states are an actual closed-loop rollout under adversarial
    // disturbances — the pattern every MPC-heavy engine episode produces.
    let states = acc_closed_loop_states(case.mpc(), 20);
    c.bench_function("mpc/step_rebuild", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in &states {
                acc += case
                    .mpc()
                    .solve_rebuild_reference(x)
                    .expect("feasible")
                    .cost();
            }
            black_box(acc)
        })
    });
    c.bench_function("mpc/step_templated", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in &states {
                acc += case.mpc().solve(x).expect("feasible").cost();
            }
            black_box(acc)
        })
    });
    c.bench_function("mpc/step_templated_warm", |b| {
        b.iter(|| {
            let mut warm = MpcWarmState::new();
            let mut acc = 0.0;
            for x in &states {
                acc += case
                    .mpc()
                    .solve_warm(x, &mut warm)
                    .expect("feasible")
                    .cost();
            }
            black_box(acc)
        })
    });
    let monitor = Monitor::new(case.sets().clone());
    c.bench_function("monitor/check", |b| {
        b.iter(|| black_box(monitor.check(black_box(&[5.0, 2.0]))))
    });
    let agent = DoubleDqnAgent::new(DqnConfig {
        state_dim: 4,
        num_actions: 2,
        hidden: vec![64, 64],
        seed: 0,
        ..DqnConfig::default()
    });
    c.bench_function("drl/q_forward_64x64", |b| {
        b.iter(|| black_box(agent.q_values(black_box(&[0.1, -0.2, 0.05, 0.0]))))
    });
    let mut mip = ModelBasedPolicy::new(case.sets(), case.gain().clone(), 5).expect("builds");
    let forecast = vec![vec![0.5, 0.0]; 5];
    c.bench_function("policy/model_based_mip_h5", |b| {
        b.iter(|| {
            let ctx = PolicyContext {
                state: &[2.0, 1.0],
                w_history: &[],
                w_forecast: &forecast,
                time_step: 0,
            };
            black_box(mip.decide(&ctx))
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("sim/step", |b| {
        let params = AccParams::default();
        let front = SinusoidalFront::new(&params, 40.0, 9.0, 1.0, 0);
        let mut sim = TrafficSim::new(
            params,
            Box::new(front),
            Box::new(Hbefa3Fuel::default()),
            150.0,
            40.0,
        );
        b.iter(|| black_box(sim.step(8.0)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_lp, bench_lp_backends, bench_geometry, bench_invariants, bench_controllers,
        bench_simulator
}
criterion_main!(kernels);
