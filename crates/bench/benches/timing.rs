//! §IV-A timing bench: the two per-step costs whose ratio drives the
//! paper's computation-saving claim — one tube-MPC solve versus one
//! monitor check plus one DQN forward pass. The derived saving table is
//! produced by the `timing` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use oic_core::acc::AccCaseStudy;
use oic_core::Monitor;
use oic_drl::{DoubleDqnAgent, DqnConfig};

fn case() -> &'static AccCaseStudy {
    use std::sync::OnceLock;
    static CASE: OnceLock<AccCaseStudy> = OnceLock::new();
    CASE.get_or_init(|| AccCaseStudy::build_default().expect("case study builds"))
}

fn bench_timing_units(c: &mut Criterion) {
    let case = case();
    c.bench_function("timing/rmpc_solve_per_step", |b| {
        b.iter(|| black_box(case.mpc().solve(black_box(&[3.0, -1.0])).expect("feasible")))
    });
    let monitor = Monitor::new(case.sets().clone());
    let agent = DoubleDqnAgent::new(DqnConfig {
        state_dim: 4,
        num_actions: 2,
        hidden: vec![64, 64],
        seed: 0,
        ..DqnConfig::default()
    });
    c.bench_function("timing/monitor_plus_nn_per_step", |b| {
        b.iter(|| {
            let verdict = monitor.check(black_box(&[3.0, -1.0]));
            let q = agent.q_values(black_box(&[0.1, -0.07, 0.0, 0.0]));
            black_box((verdict, q))
        })
    });
}

criterion_group! {
    name = timing;
    config = Criterion::default().sample_size(30);
    targets = bench_timing_units
}
criterion_main!(timing);
