//! Fig. 4 bench: the per-episode cost of each controller in the Fig. 4
//! comparison (RMPC-only, bang-bang, DRL inference) on the sinusoidal
//! workload. The full histogram is produced by the `fig4` binary; this
//! bench times one unit of that experiment so regressions in the dominant
//! loop are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use oic_core::acc::{AccCaseStudy, EpisodeConfig};
use oic_core::{AlwaysRunPolicy, BangBangPolicy, DrlPolicy, SkipPolicy};
use oic_drl::{DoubleDqnAgent, DqnConfig};
use oic_sim::front::SinusoidalFront;
use oic_sim::fuel::Hbefa3Fuel;

fn case() -> &'static AccCaseStudy {
    use std::sync::OnceLock;
    static CASE: OnceLock<AccCaseStudy> = OnceLock::new();
    CASE.get_or_init(|| AccCaseStudy::build_default().expect("case study builds"))
}

fn episode(policy: &mut dyn SkipPolicy, steps: usize) {
    let case = case();
    let outcome = case
        .run_episode(EpisodeConfig {
            policy,
            front: Box::new(SinusoidalFront::new(case.params(), 40.0, 9.0, 1.0, 7)),
            fuel: Box::new(Hbefa3Fuel::default()),
            steps,
            initial_state: [0.0, 0.0],
            oracle_forecast: false,
        })
        .expect("episode runs");
    black_box(outcome);
}

fn bench_fig4_units(c: &mut Criterion) {
    let steps = 100;
    c.bench_function("fig4/episode_rmpc_only", |b| {
        b.iter(|| episode(&mut AlwaysRunPolicy, steps))
    });
    c.bench_function("fig4/episode_bang_bang", |b| {
        b.iter(|| episode(&mut BangBangPolicy, steps))
    });
    // Untrained agent: identical inference cost to a trained one.
    let agent = DoubleDqnAgent::new(DqnConfig {
        state_dim: 4,
        num_actions: 2,
        hidden: vec![64, 64],
        seed: 0,
        ..DqnConfig::default()
    });
    let mut drl = DrlPolicy::new(agent, case().sets(), 1);
    c.bench_function("fig4/episode_drl_inference", |b| {
        b.iter(|| episode(&mut drl, steps))
    });
}

criterion_group! {
    name = fig4;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4_units
}
criterion_main!(fig4);
