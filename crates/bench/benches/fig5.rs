//! Fig. 5 bench: per-episode cost on the bounded-random-acceleration
//! workload at the widest (Ex.1) and narrowest (Ex.5) velocity ranges.
//! The full series is produced by the `fig5` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use oic_bench::experiments::fig5::{ACCEL_RANGE, VELOCITY_RANGES};
use oic_core::acc::{AccCaseStudy, EpisodeConfig};
use oic_core::BangBangPolicy;
use oic_sim::front::SmoothRandomFront;
use oic_sim::fuel::Hbefa3Fuel;

fn case() -> &'static AccCaseStudy {
    use std::sync::OnceLock;
    static CASE: OnceLock<AccCaseStudy> = OnceLock::new();
    CASE.get_or_init(|| AccCaseStudy::build_default().expect("case study builds"))
}

fn bench_fig5_units(c: &mut Criterion) {
    for (label, range) in [
        ("ex1_wide", VELOCITY_RANGES[0]),
        ("ex5_narrow", VELOCITY_RANGES[4]),
    ] {
        c.bench_function(&format!("fig5/episode_{label}"), |b| {
            b.iter(|| {
                let case = case();
                let mut policy = BangBangPolicy;
                let outcome = case
                    .run_episode(EpisodeConfig {
                        policy: &mut policy,
                        front: Box::new(SmoothRandomFront::new(
                            range,
                            ACCEL_RANGE,
                            case.params().dt,
                            3,
                        )),
                        fuel: Box::new(Hbefa3Fuel::default()),
                        steps: 100,
                        initial_state: [0.0, 0.0],
                        oracle_forecast: false,
                    })
                    .expect("episode runs");
                black_box(outcome);
            })
        });
    }
}

criterion_group! {
    name = fig5;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5_units
}
criterion_main!(fig5);
