//! Plain-text table rendering for experiment reports.

/// Renders a table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// let out = oic_bench::table::render(
///     &["experiment", "saving"],
///     &[vec!["Ex.1".into(), "7.2%".into()]],
/// );
/// assert!(out.contains("Ex.1"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..*w {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", 100.0 * fraction)
}

/// Renders a horizontal ASCII bar scaled to `max` (for histogram output).
pub fn bar(value: usize, max: usize, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = (value * width + max / 2) / max;
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let out = render(
            &["a", "bbbb"],
            &[
                vec!["xxxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.2383), "23.8%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(10, 10, 10).len(), 10);
        assert_eq!(bar(5, 10, 10).len(), 5);
        assert_eq!(bar(0, 10, 10).len(), 0);
        assert_eq!(bar(3, 0, 10), "");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = render(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
