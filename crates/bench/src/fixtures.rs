//! Shared micro-benchmark fixtures.
//!
//! One definition serves the criterion benches (`benches/kernels.rs`),
//! the `kernels` snapshot bin (which records `BENCH_kernels.json`), and
//! the `warm_diag` example — so the committed perf trajectory is
//! guaranteed to measure exactly the workload the bench suite runs.

use oic_control::TubeMpc;
use oic_lp::{Backend, LinearProgram};

/// A tall MPC-shaped LP: `rows` coupled `≤`-constraints over `vars`
/// box-bounded variables.
pub fn tall_lp(vars: usize, rows: usize, backend: Backend) -> LinearProgram {
    let mut lp = LinearProgram::maximize(&vec![1.0; vars]);
    lp.set_backend(backend);
    for i in 0..vars {
        lp.set_bounds(i, -1.0, 1.0);
    }
    for r in 0..rows {
        let mut row = vec![0.0; vars];
        row[r % vars] = 1.0;
        row[(r + 1) % vars] = 0.5;
        row[(r + 3) % vars] -= 0.25;
        lp.add_le(&row, 1.2 + 0.01 * (r % 7) as f64);
    }
    lp
}

/// RHS sequence mimicking the MPC resolve pattern over [`tall_lp`]:
/// small deterministic per-step drift around the constructed RHS.
pub fn drifting_rhs_sequence(lp: &LinearProgram, steps: usize) -> Vec<Vec<f64>> {
    let m = lp.num_constraints();
    (0..steps)
        .map(|t| {
            (0..m)
                .map(|r| 1.2 + 0.01 * (r % 7) as f64 + 0.03 * ((t + r) % 5) as f64)
                .collect()
        })
        .collect()
}

/// A closed-loop tube-MPC rollout under adversarial alternating
/// disturbances `w = ±(1, 0)` from `x₀ = (18, 6)` — the resolve pattern
/// every MPC-heavy engine episode produces.
///
/// # Panics
///
/// Panics if a state along the rollout is MPC-infeasible (does not
/// happen for the ACC study this fixture is used with).
pub fn acc_closed_loop_states(mpc: &TubeMpc, steps: usize) -> Vec<Vec<f64>> {
    let sys = mpc.plant().system().clone();
    let mut x = vec![18.0, 6.0];
    let mut out = Vec::with_capacity(steps);
    for t in 0..steps {
        out.push(x.clone());
        let u = mpc.solve(&x).expect("feasible").first_input().to_vec();
        let w = if t % 2 == 0 { [1.0, 0.0] } else { [-1.0, 0.0] };
        x = sys.step(&x, &u, &w);
    }
    out
}
