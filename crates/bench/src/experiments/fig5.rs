//! Table I + Fig. 5: impact of the front vehicle's velocity **range**.
//!
//! Five experiments share the plant and safe sets (designed for the worst
//! case `v_f ∈ [30, 50]`) while the *actual* front behaviour is confined to
//! progressively narrower ranges (Table I), with bounded random
//! acceleration `v_f′ ∈ [−20, 20]`. The paper's Fig. 5 shows DRL savings
//! growing monotonically (≈7 % → ≈13 %) as the range narrows, because a
//! tighter disturbance pattern is easier to learn.

use oic_core::acc::AccCaseStudy;
use oic_core::{CoreError, SkipPolicy};
use oic_sim::front::SmoothRandomFront;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::common::{compare_on_case, ExperimentScale};
use crate::table;

/// Table I: the `v_f` range of Ex.1–Ex.5.
pub const VELOCITY_RANGES: [(f64, f64); 5] = [
    (30.0, 50.0),
    (32.5, 47.5),
    (35.0, 45.0),
    (38.0, 42.0),
    (39.0, 41.0),
];

/// The front-vehicle acceleration bound used in Ex.1–Ex.5.
pub const ACCEL_RANGE: (f64, f64) = (-20.0, 20.0);

/// One row of the Fig. 5 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Experiment label (`Ex.1` … `Ex.5`).
    pub label: String,
    /// Front velocity range.
    pub vf_range: (f64, f64),
    /// Mean DRL fuel saving over RMPC-only.
    pub mean_saving_drl: f64,
    /// Mean DRL skip rate.
    pub mean_skip_rate: f64,
    /// Safety violations (must be 0).
    pub violations: usize,
}

/// Full Fig. 5 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Report {
    /// One row per velocity range.
    pub rows: Vec<Fig5Row>,
    /// Cases per experiment.
    pub cases: usize,
}

/// Runs Ex.1–Ex.5.
///
/// # Errors
///
/// Propagates case-study construction and episode failures.
pub fn run(scale: &ExperimentScale) -> Result<Fig5Report, CoreError> {
    let case = AccCaseStudy::build_default()?;
    let dt = case.params().dt;
    let mut rows = Vec::with_capacity(VELOCITY_RANGES.len());

    for (idx, range) in VELOCITY_RANGES.iter().enumerate() {
        let range = *range;
        // Train a DRL policy specialized to this range.
        let (mut drl, _) = case.train_drl(
            Box::new(move |seed| {
                Box::new(SmoothRandomFront::new(
                    range,
                    ACCEL_RANGE,
                    dt,
                    0xF1_500 + seed,
                ))
            }),
            scale.train_episodes,
            scale.steps,
            1,
            scale.seed + idx as u64,
        );

        let mut rng = StdRng::seed_from_u64(scale.seed + 100 + idx as u64);
        let mut mean_saving = 0.0;
        let mut mean_skip = 0.0;
        let mut violations = 0;
        for case_idx in 0..scale.cases {
            let x0 = case.sample_initial_state(&mut rng);
            let front_seed = scale.seed ^ (0xAB50 + (idx * 10_000 + case_idx) as u64);
            let mut front_factory = move || -> Box<dyn oic_sim::front::FrontModel> {
                Box::new(SmoothRandomFront::new(range, ACCEL_RANGE, dt, front_seed))
            };
            let cmp = compare_on_case(
                &case,
                &mut drl as &mut dyn SkipPolicy,
                &mut front_factory,
                x0,
                scale.steps,
                false,
            )?;
            mean_saving += cmp.fuel_saving();
            mean_skip += cmp.policy.stats.skip_rate();
            violations += cmp.violations();
        }
        let n = scale.cases.max(1) as f64;
        rows.push(Fig5Row {
            label: format!("Ex.{}", idx + 1),
            vf_range: range,
            mean_saving_drl: mean_saving / n,
            mean_skip_rate: mean_skip / n,
            violations,
        });
    }
    Ok(Fig5Report {
        rows,
        cases: scale.cases,
    })
}

/// JSON form of the report (written by the binary's `--out` flag).
pub fn to_json(report: &Fig5Report, scale: &ExperimentScale) -> oic_engine::JsonValue {
    use oic_engine::JsonValue;
    let rows: Vec<JsonValue> = report
        .rows
        .iter()
        .map(|r| {
            JsonValue::object()
                .with("label", r.label.as_str())
                .with("vf_lo", r.vf_range.0)
                .with("vf_hi", r.vf_range.1)
                .with("mean_saving_drl", r.mean_saving_drl)
                .with("mean_skip_rate", r.mean_skip_rate)
                .with("violations", r.violations)
        })
        .collect();
    scale
        .json_header("fig5")
        .with("rows", JsonValue::Array(rows))
}

/// Renders Table I and the Fig. 5 series.
pub fn render(report: &Fig5Report) -> String {
    let mut out = String::from("Table I — v_f ranges for Ex.1–Ex.5\n");
    let table_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("[{}, {}]", r.vf_range.0, r.vf_range.1),
            ]
        })
        .collect();
    out.push_str(&table::render(&["experiment", "range of v_f"], &table_rows));

    out.push_str("\nFig. 5 — DRL fuel saving vs RMPC-only under shrinking v_f range\n");
    let max_milli = report
        .rows
        .iter()
        .map(|r| (r.mean_saving_drl * 1000.0) as usize)
        .max()
        .unwrap_or(1)
        .max(1);
    let fig_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("[{}, {}]", r.vf_range.0, r.vf_range.1),
                table::pct(r.mean_saving_drl),
                table::bar((r.mean_saving_drl * 1000.0) as usize, max_milli, 30),
                table::pct(r.mean_skip_rate),
                r.violations.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["range of v_f", "saving", "", "skip rate", "violations"],
        &fig_rows,
    ));
    out.push_str("\n(paper shape: saving increases monotonically as the range narrows, ≈7%→13%)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_matches_paper() {
        assert_eq!(VELOCITY_RANGES[0], (30.0, 50.0));
        assert_eq!(VELOCITY_RANGES[2], (35.0, 45.0));
        assert_eq!(VELOCITY_RANGES[4], (39.0, 41.0));
    }

    #[test]
    fn tiny_fig5_runs_clean() {
        let scale = ExperimentScale {
            cases: 1,
            steps: 30,
            train_episodes: 1,
            seed: 3,
            ..Default::default()
        };
        let report = run(&scale).unwrap();
        assert_eq!(report.rows.len(), 5);
        assert!(report.rows.iter().all(|r| r.violations == 0));
        assert!(render(&report).contains("Table I"));
    }
}
