//! Shared experiment plumbing: scaling knobs, paired episode runs, and
//! saving statistics.

use oic_core::acc::{AccCaseStudy, EpisodeConfig, EpisodeOutcome};
use oic_core::{CoreError, SkipPolicy};
use oic_sim::front::FrontModel;
use oic_sim::fuel::Hbefa3Fuel;

/// Size knobs shared by all experiment binaries.
///
/// Defaults match the paper's protocol (500 cases × 100 steps); pass
/// `--cases/--steps/--train/--seed` on the command line to scale, and
/// `--out report.json` to save the machine-readable report. The
/// engine-backed sweeps additionally honor `--threads N` (0 = all
/// cores), `--chunk N` (episodes per work-stealing task, 0 = auto) and
/// `--stream`/`--detail` (drop or keep per-episode records; streaming is
/// the default and keeps memory O(cells)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Number of random test cases per experiment.
    pub cases: usize,
    /// Steps per episode (the paper evaluates 100).
    pub steps: usize,
    /// DRL training episodes per experiment.
    pub train_episodes: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for engine sweeps (0 = one per available CPU).
    pub threads: usize,
    /// Episodes per work-stealing task (0 = deterministic auto sizing).
    pub chunk: usize,
    /// Stream aggregation only (`true`, the default) vs. keeping
    /// per-episode detail rows in the report.
    pub stream: bool,
    /// Extra policy roster entries (`--policies drl:<path>[,…]`): each
    /// `drl:<path>` adds a learned skipping policy from an `oic-nn`
    /// weight blob on disk, named after the file stem.
    pub policies: Vec<String>,
    /// Optional path for the JSON report.
    pub out: Option<String>,
    /// Optional path for the `oic-obs` metrics snapshot (`--metrics`).
    pub metrics_out: Option<String>,
    /// Optional path for the Chrome trace export (`--trace`); also turns
    /// span recording on for the run.
    pub trace_out: Option<String>,
    /// Optional content-addressed cell-cache directory (`--cache-dir`):
    /// cells already stored there are answered without running episodes,
    /// new cells are stored as they complete. Results stay byte-identical
    /// either way.
    pub cache_dir: Option<String>,
    /// Optional shard assignment (`--shard i/n`): run only the cells
    /// whose global index `g` satisfies `g % n == i`; merge shard
    /// reports back with `serve merge`.
    pub shard: Option<String>,
    /// Environment-forced actuation-dropout variants
    /// (`--dropout none,bernoulli-0.1,mk-1-5`): each label adds a
    /// dropout axis value to every `(scenario, policy)` cell. Empty
    /// (the default) keeps the fault-free grid and its exact report
    /// bytes.
    pub dropout: Vec<String>,
    /// Optional deterministic fault-injection plan
    /// (`--fault-plan plan.json`): a JSON document with `seed`,
    /// `panic_rate`, and `nan_rate` keys, applied per cell hash. The
    /// sweep degrades (failed cells, never aborts) under the plan.
    pub fault_plan: Option<String>,
    /// Episode-loop implementation (`--kernel lockstep|scalar`; the
    /// default `Auto` honors `OIC_EPISODE_KERNEL`). Both produce
    /// byte-identical reports — this is an A/B timing knob.
    pub kernel: oic_engine::KernelChoice,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self {
            cases: 500,
            steps: 100,
            train_episodes: 300,
            seed: 2020,
            threads: 0,
            chunk: 0,
            stream: true,
            policies: Vec::new(),
            out: None,
            metrics_out: None,
            trace_out: None,
            cache_dir: None,
            shard: None,
            dropout: Vec::new(),
            fault_plan: None,
            kernel: oic_engine::KernelChoice::Auto,
        }
    }
}

impl ExperimentScale {
    /// Parses `--cases N --steps N --train N --seed N --threads N
    /// --chunk N --stream --detail --policies LIST --out FILE` from an
    /// argument iterator (unknown arguments are ignored).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--cases" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        scale.cases = v;
                    }
                }
                "--steps" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        scale.steps = v;
                    }
                }
                "--train" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        scale.train_episodes = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        scale.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        scale.threads = v;
                    }
                }
                "--chunk" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        scale.chunk = v;
                    }
                }
                "--stream" => scale.stream = true,
                "--detail" => scale.stream = false,
                "--policies" => {
                    if let Some(v) = args.next() {
                        scale
                            .policies
                            .extend(v.split(',').map(|s| s.trim().to_string()));
                    }
                }
                "--out" => {
                    if let Some(v) = args.next() {
                        scale.out = Some(v);
                    }
                }
                "--metrics" => {
                    if let Some(v) = args.next() {
                        scale.metrics_out = Some(v);
                    }
                }
                "--trace" => {
                    if let Some(v) = args.next() {
                        scale.trace_out = Some(v);
                    }
                }
                "--cache-dir" => {
                    if let Some(v) = args.next() {
                        scale.cache_dir = Some(v);
                    }
                }
                "--shard" => {
                    if let Some(v) = args.next() {
                        scale.shard = Some(v);
                    }
                }
                "--dropout" => {
                    if let Some(v) = args.next() {
                        scale
                            .dropout
                            .extend(v.split(',').map(|s| s.trim().to_string()));
                    }
                }
                "--fault-plan" => {
                    if let Some(v) = args.next() {
                        scale.fault_plan = Some(v);
                    }
                }
                "--kernel" => match args.next().as_deref() {
                    Some("lockstep") => scale.kernel = oic_engine::KernelChoice::Lockstep,
                    Some("scalar") => scale.kernel = oic_engine::KernelChoice::Scalar,
                    Some(other) => eprintln!("ignoring unknown --kernel value {other}"),
                    None => {}
                },
                _ => {}
            }
        }
        scale
    }

    /// The scale parameters every JSON report carries (so a saved report
    /// is reproducible from its own header).
    pub fn json_header(&self, experiment: &str) -> oic_engine::JsonValue {
        oic_engine::JsonValue::object()
            .with("experiment", experiment)
            .with("cases", self.cases)
            .with("steps", self.steps)
            .with("train_episodes", self.train_episodes)
            .with("seed", self.seed.to_string())
    }

    /// Writes a JSON report to [`Self::out`] when set, logging the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_json(&self, document: &oic_engine::JsonValue) -> std::io::Result<()> {
        if let Some(path) = &self.out {
            std::fs::write(path, document.to_json_pretty())?;
            eprintln!("report written to {path}");
        }
        Ok(())
    }
}

/// Outcome of running one test case under a policy and under the RMPC-only
/// baseline on the *same* front-vehicle trace and initial state.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeComparison {
    /// Baseline (always-run) outcome.
    pub baseline: EpisodeOutcome,
    /// Policy-under-test outcome.
    pub policy: EpisodeOutcome,
}

impl EpisodeComparison {
    /// Fractional fuel saving of the policy over the baseline.
    pub fn fuel_saving(&self) -> f64 {
        let base = self.baseline.summary.total_fuel;
        if base <= 0.0 {
            return 0.0;
        }
        (base - self.policy.summary.total_fuel) / base
    }

    /// Total safety violations across both runs (must be zero).
    pub fn violations(&self) -> usize {
        self.baseline.summary.safety_violations + self.policy.summary.safety_violations
    }
}

/// Runs one test case: the same initial state and front trace under the
/// RMPC-only baseline and under `policy`.
///
/// # Errors
///
/// Propagates episode failures (which indicate a precondition violation —
/// they abort the experiment rather than being averaged away).
pub fn compare_on_case(
    case: &AccCaseStudy,
    policy: &mut dyn SkipPolicy,
    front_factory: &mut dyn FnMut() -> Box<dyn FrontModel>,
    initial_state: [f64; 2],
    steps: usize,
    oracle_forecast: bool,
) -> Result<EpisodeComparison, CoreError> {
    let mut always = oic_core::AlwaysRunPolicy;
    let baseline = case.run_episode(EpisodeConfig {
        policy: &mut always,
        front: front_factory(),
        fuel: Box::new(Hbefa3Fuel::default()),
        steps,
        initial_state,
        oracle_forecast: false,
    })?;
    let policy_outcome = case.run_episode(EpisodeConfig {
        policy,
        front: front_factory(),
        fuel: Box::new(Hbefa3Fuel::default()),
        steps,
        initial_state,
        oracle_forecast,
    })?;
    Ok(EpisodeComparison {
        baseline,
        policy: policy_outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let scale = ExperimentScale::from_args(
            ["--cases", "20", "--train", "5", "--junk", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(scale.cases, 20);
        assert_eq!(scale.train_episodes, 5);
        assert_eq!(scale.seed, 7);
        assert_eq!(scale.steps, 100, "untouched default");
        assert_eq!(scale.threads, 0, "untouched default");
        assert!(scale.stream, "streaming is the default");
    }

    #[test]
    fn scale_parsing_engine_knobs() {
        let scale = ExperimentScale::from_args(
            ["--threads", "16", "--chunk", "64", "--detail"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(scale.threads, 16);
        assert_eq!(scale.chunk, 64);
        assert!(!scale.stream);
        let streamed = ExperimentScale::from_args(["--stream".to_string()]);
        assert!(streamed.stream);
    }

    #[test]
    fn scale_parsing_cache_and_shard() {
        let scale = ExperimentScale::from_args(
            ["--cache-dir", "/tmp/cells", "--shard", "1/4"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(scale.cache_dir.as_deref(), Some("/tmp/cells"));
        assert_eq!(scale.shard.as_deref(), Some("1/4"));
        let default = ExperimentScale::default();
        assert!(default.cache_dir.is_none() && default.shard.is_none());
    }

    #[test]
    fn scale_parsing_fault_knobs() {
        let scale = ExperimentScale::from_args(
            ["--dropout", "none,mk-1-5", "--fault-plan", "plan.json"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(scale.dropout, ["none", "mk-1-5"]);
        assert_eq!(scale.fault_plan.as_deref(), Some("plan.json"));
        let default = ExperimentScale::default();
        assert!(default.dropout.is_empty() && default.fault_plan.is_none());
    }

    #[test]
    fn scale_parsing_policy_entries() {
        let scale = ExperimentScale::from_args(
            [
                "--policies",
                "drl:a.bin,drl:b.bin",
                "--policies",
                "drl:c.bin",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(scale.policies, ["drl:a.bin", "drl:b.bin", "drl:c.bin"]);
        assert!(ExperimentScale::default().policies.is_empty());
    }

    #[test]
    fn comparison_math() {
        use oic_core::RunStats;
        use oic_sim::SimSummary;
        let outcome = |fuel: f64| EpisodeOutcome {
            summary: SimSummary {
                total_fuel: fuel,
                total_actuation: 0.0,
                safety_violations: 0,
                skipped_steps: 0,
                steps: 100,
                min_distance: 140.0,
                max_distance: 160.0,
            },
            stats: RunStats::default(),
        };
        let cmp = EpisodeComparison {
            baseline: outcome(10.0),
            policy: outcome(8.0),
        };
        assert!((cmp.fuel_saving() - 0.2).abs() < 1e-12);
        assert_eq!(cmp.violations(), 0);
    }
}
