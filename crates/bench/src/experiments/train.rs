//! Offline training of the **golden** DQN skipping policies.
//!
//! The batch engine never trains: it consumes committed weight fixtures
//! (`crates/bench/fixtures/*.bin`, a few KB each) produced by this
//! harness at a pinned seed. Training here deliberately optimizes the
//! quantity the sweeps report — the *skip rate* — by metering `R₂` as a
//! constant 1 per executed controller run (a computation meter, not an
//! actuation meter), so the greedy policy learns to spend a run exactly
//! where it buys the longest certified coast.
//!
//! Everything downstream of the fixture is pure inference (`mul`/`add`/
//! `max` on `f64`), so the committed blobs reproduce bit-identical
//! reports on any host; only re-*training* is host-sensitive (it touches
//! `ln`/`cos` through the initializer).

use oic_core::{CoreError, GreedyDrlPolicy, SkipRewardWeights, SkipTrainingEnv};
use oic_drl::{train, DoubleDqnAgent, DqnConfig, TrainingStats};
use oic_engine::{
    episode_seed, run_batch, run_episode, BatchConfig, CellReport, PolicySpec, PreparedPolicy,
};
use oic_scenarios::{
    AccScenario, DoubleIntegratorScenario, Scenario, ScenarioInstance, ScenarioRegistry,
};

use super::batch::standard_policies;

/// Scenarios the golden fixtures are trained for.
pub const GOLDEN_SCENARIOS: [&str; 2] = ["acc", "double-integrator"];

/// Builds a fresh scenario object by registry name (only the golden
/// roster is constructible here; the registry owns the full list).
pub fn scenario_by_name(name: &str) -> Option<Box<dyn Scenario>> {
    match name {
        "acc" => Some(Box::new(AccScenario::default())),
        "double-integrator" => Some(Box::new(DoubleIntegratorScenario)),
        _ => None,
    }
}

/// Training knobs, pinned for the committed fixtures.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSpec {
    /// Registry scenario name.
    pub scenario: String,
    /// Training episodes.
    pub episodes: usize,
    /// Steps per training episode.
    pub steps: usize,
    /// Master seed (network init, exploration, replay, environment).
    pub seed: u64,
    /// Hidden layer widths of the Q-network.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// Penalty `w₁` for letting the successor leave `X′`.
    pub leave_weight: f64,
    /// Cost `w₂` per executed controller run (the skip-rate meter).
    pub run_cost: f64,
}

impl TrainSpec {
    /// The pinned golden configuration for one scenario.
    ///
    /// # Panics
    ///
    /// Panics for names outside [`GOLDEN_SCENARIOS`].
    pub fn golden(scenario: &str) -> Self {
        assert!(
            GOLDEN_SCENARIOS.contains(&scenario),
            "no golden spec for {scenario:?}"
        );
        Self {
            scenario: scenario.to_string(),
            episodes: 1_500,
            steps: 60,
            seed: 2020,
            hidden: vec![32, 32],
            // γ close to 1 so a run "spent" now is credited against the
            // forced runs it prevents several coast steps later; the
            // X′-exit penalty is kept *small* (an exit already costs its
            // forced runs through the dynamics — the explicit term only
            // nudges exploration toward anticipation, it must not drown
            // the run meter and push the optimum toward over-running).
            gamma: 0.99,
            leave_weight: 0.03,
            run_cost: 0.1,
        }
    }
}

/// Result of one training run: the serialized network plus the training
/// curve and where the selected checkpoint came from.
#[derive(Debug)]
pub struct TrainedPolicy {
    /// `oic-nn` weight blob (what the fixtures commit) — the **best
    /// checkpoint** under the validation sweep, not the last one.
    pub weights: Vec<u8>,
    /// Per-episode returns/losses across the whole run.
    pub stats: TrainingStats,
    /// Validation skip rate of the selected checkpoint.
    pub validation_skip_rate: f64,
    /// Episode count after which the selected checkpoint was taken.
    pub selected_after: usize,
}

/// Episodes per checkpoint round (train → validate → maybe keep).
const CHECKPOINT_EVERY: usize = 50;

/// Validation sweep seed — deliberately *not* the committed
/// `BENCH_batch.json` seed, so checkpoint selection never peeks at the
/// benchmark episodes it is later judged on.
const VALIDATION_SEED: u64 = 9001;

/// Trains a DQN on the named scenario's own dynamics, controller, and
/// disturbance process, with the skip-rate reward described in the
/// module docs.
///
/// DQN trajectories through a near-flat objective landscape oscillate
/// around the best achievable skip rate, so the harness does checkpoint
/// **selection**: every `CHECKPOINT_EVERY` episodes the current greedy
/// policy is swept through the engine (validation seed, benchmark
/// episode shape) and the blob with the highest violation-free skip rate
/// wins.
///
/// # Errors
///
/// Propagates scenario-build failures; unknown scenarios surface as
/// [`CoreError::Policy`].
pub fn train_policy(spec: &TrainSpec) -> Result<TrainedPolicy, CoreError> {
    let scenario = scenario_by_name(&spec.scenario).ok_or_else(|| CoreError::Policy {
        reason: format!("no trainable scenario named {:?}", spec.scenario),
    })?;
    // A second scenario object for validation: the first moves into the
    // training env's disturbance factory.
    let eval_scenario = scenario_by_name(&spec.scenario).expect("same name");
    let eval_instance = eval_scenario.build()?;

    let instance = scenario.build()?;
    let sets = instance.sets().clone();
    let controller = instance.controller().clone();

    let seed = spec.seed;
    let mut env = SkipTrainingEnv::new(
        sets.clone(),
        Box::new(controller),
        1,
        SkipRewardWeights {
            leave_strengthened: spec.leave_weight,
            energy: spec.run_cost,
        },
        Box::new(move |episode| scenario.disturbance_process(seed ^ (0xD211 + episode * 7919))),
        spec.seed,
    );
    // Meter computation, not actuation: every executed run costs 1, so
    // minimizing discounted cost maximizes the certified skip rate.
    env.set_energy_metric(Box::new(|_x, _u| 1.0));

    let n_w = sets.plant().disturbance_set().dim();
    let state_dim = sets.plant().system().state_dim() + n_w;
    // Decay ε to its floor over ~70% of the planned act() calls.
    let total_acts = (spec.episodes * spec.steps) as f64;
    let epsilon_end = 0.02f64;
    let epsilon_decay = (epsilon_end.ln() / (0.7 * total_acts)).exp();
    let mut agent = DoubleDqnAgent::new(DqnConfig {
        state_dim,
        num_actions: 2,
        hidden: spec.hidden.clone(),
        gamma: spec.gamma,
        learning_rate: 5e-4,
        epsilon_start: 1.0,
        epsilon_end,
        epsilon_decay,
        buffer_capacity: 50_000,
        batch_size: 64,
        target_sync_every: 500,
        learn_start: 1_000,
        seed: spec.seed,
    });

    let mut stats = TrainingStats::default();
    let mut best: Option<(f64, Vec<u8>, usize)> = None;
    let mut trained = 0usize;
    while trained < spec.episodes {
        let round = CHECKPOINT_EVERY.min(spec.episodes - trained);
        let s = train(&mut agent, &mut env, round, spec.steps);
        stats.episode_returns.extend(s.episode_returns);
        stats.episode_losses.extend(s.episode_losses);
        trained += round;
        let blob = agent.save_weights();
        let cell = evaluate_cell(
            &eval_instance,
            &*eval_scenario,
            &blob,
            50,
            50,
            VALIDATION_SEED,
        )?;
        let wins = cell.safety_violations == 0
            && cell.invariant_violations == 0
            && best
                .as_ref()
                .is_none_or(|(b, _, _)| cell.mean_skip_rate > *b);
        if wins {
            best = Some((cell.mean_skip_rate, blob, trained));
        }
    }
    let (validation_skip_rate, weights, selected_after) =
        best.ok_or_else(|| CoreError::Policy {
            reason: "no violation-free checkpoint found".into(),
        })?;
    Ok(TrainedPolicy {
        weights,
        stats,
        validation_skip_rate,
        selected_after,
    })
}

/// Sweeps one learned cell exactly the way the engine's `drl-<name>`
/// cell runs it (same label-derived seeds, same memory handling),
/// without rebuilding the scenario per call.
///
/// # Errors
///
/// Propagates blob-decode/dimension and episode failures.
pub fn evaluate_cell(
    instance: &ScenarioInstance,
    scenario: &dyn Scenario,
    weights: &[u8],
    episodes: usize,
    steps: usize,
    seed: u64,
) -> Result<CellReport, CoreError> {
    let prepared = PreparedPolicy::Drl(GreedyDrlPolicy::from_bytes(weights, instance.sets())?);
    let label = format!("drl-{}", instance.name());
    let mut acc = oic_engine::CellAccumulator::new();
    for episode in 0..episodes {
        let ep_seed = episode_seed(seed, instance.name(), &label, episode);
        let record = run_episode(instance, scenario, &prepared, episode, steps, 1, ep_seed)?;
        acc.push(&record);
    }
    Ok(CellReport::from_accumulator(
        instance.name(),
        &label,
        steps,
        &acc,
    ))
}

/// Engine-side evaluation of a weight blob on one scenario: the full
/// analytic roster plus the learned policy, at the committed
/// `BENCH_batch.json` settings (50 episodes × 50 steps unless told
/// otherwise).
pub struct EvalReport {
    /// The learned policy's cell.
    pub drl: CellReport,
    /// The analytic cells, roster order.
    pub analytic: Vec<CellReport>,
}

impl EvalReport {
    /// `true` iff the learned cell out-skips every analytic cell with
    /// zero safety/invariant violations anywhere.
    pub fn drl_wins(&self) -> bool {
        self.drl.safety_violations == 0
            && self.drl.invariant_violations == 0
            && self
                .analytic
                .iter()
                .all(|c| self.drl.mean_skip_rate > c.mean_skip_rate)
    }
}

/// Runs the evaluation sweep described on [`EvalReport`].
///
/// # Errors
///
/// Propagates engine failures (bad blobs, unknown scenarios).
pub fn evaluate_policy(
    scenario: &str,
    weights: &[u8],
    episodes: usize,
    steps: usize,
    seed: u64,
) -> Result<EvalReport, CoreError> {
    let object = scenario_by_name(scenario).ok_or_else(|| CoreError::Policy {
        reason: format!("no trainable scenario named {scenario:?}"),
    })?;
    let mut registry = ScenarioRegistry::new();
    registry.register(object);
    let mut policies = standard_policies();
    policies.push(PolicySpec::drl(scenario, weights));
    let config = BatchConfig {
        episodes,
        steps,
        seed,
        ..Default::default()
    };
    let report = run_batch(&registry, &policies, &config).map_err(|e| CoreError::Policy {
        reason: format!("evaluation sweep failed: {e}"),
    })?;
    let mut analytic = Vec::new();
    let mut drl = None;
    for cell in report.cells {
        if cell.policy.starts_with("drl-") {
            drl = Some(cell);
        } else {
            analytic.push(cell);
        }
    }
    Ok(EvalReport {
        drl: drl.ok_or_else(|| CoreError::Policy {
            reason: "learned cell missing from evaluation sweep (dimension mismatch?)".into(),
        })?,
        analytic,
    })
}

/// Sanity-checks a blob round-trips through the inference path for the
/// scenario it claims to serve.
///
/// # Errors
///
/// Propagates decode/dimension failures.
pub fn check_blob(scenario: &str, weights: &[u8]) -> Result<(), CoreError> {
    let object = scenario_by_name(scenario).ok_or_else(|| CoreError::Policy {
        reason: format!("no trainable scenario named {scenario:?}"),
    })?;
    let instance = object.build()?;
    GreedyDrlPolicy::from_bytes(weights, instance.sets()).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_training_produces_a_loadable_blob() {
        let spec = TrainSpec {
            episodes: 3,
            steps: 15,
            ..TrainSpec::golden("double-integrator")
        };
        let trained = train_policy(&spec).unwrap();
        assert_eq!(trained.stats.episode_returns.len(), 3);
        check_blob("double-integrator", &trained.weights).unwrap();
        let eval = evaluate_policy("double-integrator", &trained.weights, 4, 20, 7).unwrap();
        assert_eq!(eval.analytic.len(), standard_policies().len());
        assert_eq!(eval.drl.safety_violations, 0, "Theorem 1");
    }

    #[test]
    fn unknown_scenarios_are_policy_errors() {
        let err = train_policy(&TrainSpec {
            scenario: "ghost".into(),
            ..TrainSpec::golden("acc")
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::Policy { .. }));
        assert!(scenario_by_name("ghost").is_none());
    }
}
