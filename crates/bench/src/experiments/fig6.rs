//! Fig. 6: impact of the front vehicle's velocity **regularity**.
//!
//! Ex.6–Ex.10 share the full `v_f ∈ [30, 50]` range but differ in how
//! predictable the velocity is:
//!
//! * Ex.6 — completely random (i.i.d. uniform per step),
//! * Ex.7 — bounded random acceleration (same setting as Ex.1),
//! * Ex.8 — sinusoid `a_f = 5`, disturbance `[−5, 5]`,
//! * Ex.9 — sinusoid `a_f = 8`, disturbance `[−2, 2]`,
//! * Ex.10 — sinusoid `a_f = 9`, disturbance `[−1, 1]`.
//!
//! The paper's Fig. 6 shows savings increasing from Ex.7 to Ex.10 (more
//! regularity → easier to learn), with Ex.6 as an outlier that still saves
//! a lot because pure-random `v_f` degrades the RMPC baseline itself.

use oic_core::acc::AccCaseStudy;
use oic_core::{CoreError, SkipPolicy};
use oic_sim::front::{FrontModel, SinusoidalFront, SmoothRandomFront, UniformRandomFront};
use oic_sim::AccParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::common::{compare_on_case, ExperimentScale};
use crate::table;

/// One regularity setting of Ex.6–Ex.10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regularity {
    /// Ex.6: i.i.d. uniform `v_f`.
    PureRandom,
    /// Ex.7: bounded random acceleration.
    SmoothRandom,
    /// Ex.8–Ex.10: sinusoid with the given amplitude and noise, scaled ×10
    /// to stay `Eq`-able (`af10`, `noise10` are tenths).
    Sinusoid {
        /// Amplitude ×10 (e.g. 90 for `a_f = 9`).
        af10: u32,
        /// Noise half-range ×10 (e.g. 10 for `w ∈ [−1, 1]`).
        noise10: u32,
    },
}

/// The experiments of Fig. 6, in paper order.
pub const EXPERIMENTS: [(&str, Regularity); 5] = [
    ("Ex.6", Regularity::PureRandom),
    ("Ex.7", Regularity::SmoothRandom),
    (
        "Ex.8",
        Regularity::Sinusoid {
            af10: 50,
            noise10: 50,
        },
    ),
    (
        "Ex.9",
        Regularity::Sinusoid {
            af10: 80,
            noise10: 20,
        },
    ),
    (
        "Ex.10",
        Regularity::Sinusoid {
            af10: 90,
            noise10: 10,
        },
    ),
];

impl Regularity {
    /// Instantiates the front model for this setting.
    pub fn front(&self, params: &AccParams, seed: u64) -> Box<dyn FrontModel> {
        match *self {
            Regularity::PureRandom => Box::new(UniformRandomFront::new(params.vf_range, seed)),
            Regularity::SmoothRandom => Box::new(SmoothRandomFront::new(
                params.vf_range,
                (-20.0, 20.0),
                params.dt,
                seed,
            )),
            Regularity::Sinusoid { af10, noise10 } => Box::new(SinusoidalFront::new(
                params,
                40.0,
                af10 as f64 / 10.0,
                noise10 as f64 / 10.0,
                seed,
            )),
        }
    }
}

/// One row of the Fig. 6 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Experiment label.
    pub label: &'static str,
    /// Mean DRL fuel saving over RMPC-only.
    pub mean_saving_drl: f64,
    /// Mean DRL skip rate.
    pub mean_skip_rate: f64,
    /// Mean absolute baseline fuel (diagnoses the Ex.6 outlier).
    pub mean_baseline_fuel: f64,
    /// Safety violations (must be 0).
    pub violations: usize,
}

/// Full Fig. 6 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Report {
    /// One row per experiment.
    pub rows: Vec<Fig6Row>,
    /// Cases per experiment.
    pub cases: usize,
}

/// Runs Ex.6–Ex.10.
///
/// # Errors
///
/// Propagates case-study construction and episode failures.
pub fn run(scale: &ExperimentScale) -> Result<Fig6Report, CoreError> {
    let case = AccCaseStudy::build_default()?;
    let params = case.params().clone();
    let mut rows = Vec::with_capacity(EXPERIMENTS.len());

    for (idx, (label, regularity)) in EXPERIMENTS.iter().enumerate() {
        let reg = *regularity;
        let train_params = params.clone();
        let (mut drl, _) = case.train_drl(
            Box::new(move |seed| reg.front(&train_params, 0xF1_600 + seed)),
            scale.train_episodes,
            scale.steps,
            1,
            scale.seed + idx as u64,
        );

        let mut rng = StdRng::seed_from_u64(scale.seed + 200 + idx as u64);
        let mut mean_saving = 0.0;
        let mut mean_skip = 0.0;
        let mut mean_base_fuel = 0.0;
        let mut violations = 0;
        for case_idx in 0..scale.cases {
            let x0 = case.sample_initial_state(&mut rng);
            let front_seed = scale.seed ^ (0xC6_000 + (idx * 10_000 + case_idx) as u64);
            let params_ref = params.clone();
            let mut front_factory =
                move || -> Box<dyn FrontModel> { reg.front(&params_ref, front_seed) };
            let cmp = compare_on_case(
                &case,
                &mut drl as &mut dyn SkipPolicy,
                &mut front_factory,
                x0,
                scale.steps,
                false,
            )?;
            mean_saving += cmp.fuel_saving();
            mean_skip += cmp.policy.stats.skip_rate();
            mean_base_fuel += cmp.baseline.summary.total_fuel;
            violations += cmp.violations();
        }
        let n = scale.cases.max(1) as f64;
        rows.push(Fig6Row {
            label,
            mean_saving_drl: mean_saving / n,
            mean_skip_rate: mean_skip / n,
            mean_baseline_fuel: mean_base_fuel / n,
            violations,
        });
    }
    Ok(Fig6Report {
        rows,
        cases: scale.cases,
    })
}

/// JSON form of the report (written by the binary's `--out` flag).
pub fn to_json(report: &Fig6Report, scale: &ExperimentScale) -> oic_engine::JsonValue {
    use oic_engine::JsonValue;
    let rows: Vec<JsonValue> = report
        .rows
        .iter()
        .map(|r| {
            JsonValue::object()
                .with("label", r.label)
                .with("mean_saving_drl", r.mean_saving_drl)
                .with("mean_skip_rate", r.mean_skip_rate)
                .with("mean_baseline_fuel", r.mean_baseline_fuel)
                .with("violations", r.violations)
        })
        .collect();
    scale
        .json_header("fig6")
        .with("rows", JsonValue::Array(rows))
}

/// Renders the Fig. 6 series.
pub fn render(report: &Fig6Report) -> String {
    let mut out =
        String::from("Fig. 6 — DRL fuel saving vs RMPC-only under different v_f regularity\n");
    let max_milli = report
        .rows
        .iter()
        .map(|r| (r.mean_saving_drl * 1000.0) as usize)
        .max()
        .unwrap_or(1)
        .max(1);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                table::pct(r.mean_saving_drl),
                table::bar((r.mean_saving_drl * 1000.0) as usize, max_milli, 30),
                table::pct(r.mean_skip_rate),
                format!("{:.2}", r.mean_baseline_fuel),
                r.violations.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "experiment",
            "saving",
            "",
            "skip rate",
            "baseline fuel",
            "violations",
        ],
        &rows,
    ));
    out.push_str(
        "\n(paper shape: saving grows Ex.7→Ex.10 with regularity; Ex.6 is an outlier that\n still saves because pure-random v_f degrades the RMPC baseline itself)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_roster_matches_paper() {
        assert_eq!(EXPERIMENTS.len(), 5);
        assert_eq!(EXPERIMENTS[0].1, Regularity::PureRandom);
        assert_eq!(
            EXPERIMENTS[4].1,
            Regularity::Sinusoid {
                af10: 90,
                noise10: 10
            }
        );
    }

    #[test]
    fn fronts_respect_ranges() {
        let params = AccParams::default();
        for (_, reg) in EXPERIMENTS {
            let mut f = reg.front(&params, 3);
            for t in 0..200 {
                let v = f.velocity(t);
                assert!((30.0..=50.0).contains(&v), "{reg:?} produced {v}");
            }
        }
    }

    #[test]
    fn tiny_fig6_runs_clean() {
        let scale = ExperimentScale {
            cases: 1,
            steps: 30,
            train_episodes: 1,
            seed: 5,
            ..Default::default()
        };
        let report = run(&scale).unwrap();
        assert_eq!(report.rows.len(), 5);
        assert!(report.rows.iter().all(|r| r.violations == 0));
        assert!(render(&report).contains("Ex.10"));
    }
}
