//! §IV-A computation-saving analysis.
//!
//! The paper measures 0.12 s per RMPC solve versus 0.02 s for the monitor
//! check + DQN inference, and with 79.4/100 steps skipped derives ≈60 %
//! computation saving via
//!
//! `(C_mpc·T − (C_mon·T + C_mpc·(T − skipped))) / (C_mpc·T)`.
//!
//! Absolute times differ on our solver/hardware; the reproduced quantities
//! are the *ratio* between the two per-step costs and the resulting
//! saving at the measured skip rate.

use std::time::Instant;

use oic_core::acc::AccCaseStudy;
use oic_core::{BangBangPolicy, CoreError, Monitor, SkipPolicy};
use oic_drl::{DoubleDqnAgent, DqnConfig};
use oic_sim::front::SinusoidalFront;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::common::{compare_on_case, ExperimentScale};
use crate::table;

/// Timing + computation-saving results.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Mean seconds per RMPC solve.
    pub mpc_solve_seconds: f64,
    /// Mean seconds per monitor check + DQN forward pass.
    pub monitor_nn_seconds: f64,
    /// Mean skipped steps per 100 (from DRL evaluation episodes).
    pub skipped_per_100: f64,
    /// Computation saving by the paper's formula.
    pub computation_saving: f64,
    /// Number of MPC solves timed.
    pub solves_timed: usize,
}

/// Runs the timing analysis.
///
/// # Errors
///
/// Propagates case-study construction and episode failures.
pub fn run(scale: &ExperimentScale) -> Result<TimingReport, CoreError> {
    let case = AccCaseStudy::build_default()?;
    let params = case.params().clone();
    let mut rng = StdRng::seed_from_u64(scale.seed);

    // --- Time the RMPC solve over representative states. ---
    let states: Vec<[f64; 2]> = (0..200.min(scale.cases.max(20)))
        .map(|_| case.sample_initial_state(&mut rng))
        .collect();
    let start = Instant::now();
    let mut solves = 0usize;
    for x in &states {
        let _ = case
            .mpc()
            .solve(x)
            .expect("states sampled inside the feasible set");
        solves += 1;
    }
    let mpc_solve_seconds = start.elapsed().as_secs_f64() / solves as f64;

    // --- Time monitor check + DQN forward (architecture of §IV: 64×64). ---
    let monitor = Monitor::new(case.sets().clone());
    let agent = DoubleDqnAgent::new(DqnConfig {
        state_dim: 4,
        num_actions: 2,
        hidden: vec![64, 64],
        seed: scale.seed,
        ..DqnConfig::default()
    });
    let reps = 20_000usize;
    let start = Instant::now();
    let mut sink = 0usize;
    for i in 0..reps {
        let x = states[i % states.len()];
        let verdict = monitor.check(&x);
        let q = agent.q_values(&[x[0] / 30.0, x[1] / 15.0, 0.0, 0.0]);
        sink += (q[0] > q[1]) as usize + (verdict == oic_core::Verdict::Strengthened) as usize;
    }
    let monitor_nn_seconds = start.elapsed().as_secs_f64() / reps as f64;
    std::hint::black_box(sink);

    // --- Skip rate from closed-loop episodes (bang-bang gives the
    //     skip-every-possible-step upper bound the DRL policy approaches). ---
    let episodes = scale.cases.clamp(5, 50);
    let mut skipped = 0.0;
    for i in 0..episodes {
        let x0 = case.sample_initial_state(&mut rng);
        let mut bang = BangBangPolicy;
        let front_seed = scale.seed ^ (0x71_31 + i as u64);
        let params_ref = params.clone();
        let mut factory = move || -> Box<dyn oic_sim::front::FrontModel> {
            Box::new(SinusoidalFront::new(
                &params_ref,
                40.0,
                9.0,
                1.0,
                front_seed,
            ))
        };
        let cmp = compare_on_case(
            &case,
            &mut bang as &mut dyn SkipPolicy,
            &mut factory,
            x0,
            scale.steps,
            false,
        )?;
        skipped += cmp.policy.stats.skip_rate() * 100.0;
    }
    let skipped_per_100 = skipped / episodes as f64;

    // Paper formula with T = 100.
    let t = 100.0;
    let c_mpc = mpc_solve_seconds;
    let c_mon = monitor_nn_seconds;
    let computation_saving =
        (c_mpc * t - (c_mon * t + c_mpc * (t - skipped_per_100))) / (c_mpc * t);

    Ok(TimingReport {
        mpc_solve_seconds,
        monitor_nn_seconds,
        skipped_per_100,
        computation_saving,
        solves_timed: solves,
    })
}

/// JSON form of the report (written by the binary's `--out` flag).
///
/// Unlike the engine's batch reports, timing output is inherently
/// machine-dependent — the JSON records measurements, not a reproducible
/// trajectory.
pub fn to_json(report: &TimingReport, scale: &ExperimentScale) -> oic_engine::JsonValue {
    scale
        .json_header("timing")
        .with("mpc_solve_seconds", report.mpc_solve_seconds)
        .with("monitor_nn_seconds", report.monitor_nn_seconds)
        .with("skipped_per_100", report.skipped_per_100)
        .with("computation_saving", report.computation_saving)
        .with("solves_timed", report.solves_timed)
}

/// Renders the timing table in the paper's terms.
pub fn render(report: &TimingReport) -> String {
    let rows = vec![
        vec![
            "RMPC solve (per step)".to_string(),
            format!("{:.3} ms", report.mpc_solve_seconds * 1e3),
            "120 ms".to_string(),
        ],
        vec![
            "monitor + NN inference (per step)".to_string(),
            format!("{:.4} ms", report.monitor_nn_seconds * 1e3),
            "20 ms".to_string(),
        ],
        vec![
            "skipped steps per 100".to_string(),
            format!("{:.1}", report.skipped_per_100),
            "79.4".to_string(),
        ],
        vec![
            "computation saving".to_string(),
            table::pct(report.computation_saving),
            "~60%".to_string(),
        ],
    ];
    let mut out = String::from("§IV-A — computation savings from skipping RMPC computation\n");
    out.push_str(&table::render(&["quantity", "measured", "paper"], &rows));
    out.push_str(&format!(
        "\nper-step cost ratio (MPC / monitor+NN): {:.0}x (paper: 6x)\n",
        report.mpc_solve_seconds / report.monitor_nn_seconds
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_timing_runs() {
        let scale = ExperimentScale {
            cases: 5,
            steps: 30,
            train_episodes: 0,
            seed: 1,
            ..Default::default()
        };
        let report = run(&scale).unwrap();
        assert!(report.mpc_solve_seconds > 0.0);
        assert!(report.monitor_nn_seconds > 0.0);
        assert!(
            report.mpc_solve_seconds > report.monitor_nn_seconds,
            "MPC must dominate: {} vs {}",
            report.mpc_solve_seconds,
            report.monitor_nn_seconds
        );
        assert!(report.skipped_per_100 > 0.0);
        assert!(render(&report).contains("computation saving"));
    }
}
