//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Tightening recursion** — the paper's open-loop `A^{k−1}W` versus
//!    Chisci et al.'s closed-loop `(A+BK)^{k−1}W`: effect on the tightened
//!    sets and the feasible region `X_F = XI`.
//! 2. **Skip-input semantics** — literal zero (deviation coordinates)
//!    versus physical coasting: effect on the strengthened set `X′` and on
//!    bang-bang fuel savings.
//! 3. **MPC horizon** — effect on `XI` and the strengthened set.

use oic_control::{dlqr, ConstrainedLti, Lti, TighteningMode, TubeMpcBuilder};
use oic_core::acc::{AccCaseStudy, EpisodeConfig};
use oic_core::{AlwaysRunPolicy, BangBangPolicy, CoreError, SkipInput};
use oic_geom::{Polytope, SupportFunction};
use oic_linalg::Matrix;
use oic_sim::front::SinusoidalFront;
use oic_sim::fuel::Hbefa3Fuel;
use oic_sim::AccParams;

use super::common::ExperimentScale;
use crate::table;

fn acc_plant(params: &AccParams) -> ConstrainedLti {
    let (x_lo, x_hi, u_lo, u_hi, w_lo, w_hi) = params.deviation_bounds();
    ConstrainedLti::new(
        Lti::new(params.a_matrix(), params.b_matrix()),
        Polytope::from_box(&x_lo, &x_hi),
        Polytope::from_box(&u_lo, &u_hi),
        Polytope::from_box(&w_lo, &w_hi),
    )
}

fn span(set: &Polytope, dir: [f64; 2]) -> f64 {
    let hi = set.support(&dir).unwrap_or(f64::NAN);
    let lo = -set.support(&[-dir[0], -dir[1]]).unwrap_or(f64::NAN);
    hi - lo
}

/// Runs all ablations and renders the tables.
///
/// # Errors
///
/// Propagates set-construction and episode failures.
pub fn run(scale: &ExperimentScale) -> Result<String, CoreError> {
    let params = AccParams::default();
    let mut out = String::new();

    // --- 1. Tightening recursion. ---
    let mut rows = Vec::new();
    for (label, mode) in [
        ("open-loop A^k W (paper)", None),
        ("closed-loop (A+BK)^k W (Chisci)", Some(())),
    ] {
        let plant = acc_plant(&params);
        let k = dlqr(
            plant.system().a(),
            plant.system().b(),
            &Matrix::identity(2),
            &Matrix::identity(1),
        )?;
        let mut builder = TubeMpcBuilder::new(plant, 10)
            .state_weight_vector(vec![1.0, 0.02])
            .input_weight(0.05);
        if mode.is_some() {
            builder = builder.tightening(TighteningMode::ClosedLoop(k));
        }
        let mpc = builder.build()?;
        let x10 = &mpc.tightened_sets()[10];
        let xf = mpc.feasible_set()?;
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", span(x10, [1.0, 0.0])),
            format!("{:.2}", span(&xf, [1.0, 0.0])),
            format!("{:.2}", span(&xf, [0.0, 1.0])),
        ]);
    }
    out.push_str("Ablation 1 — tightening recursion (horizon 10)\n");
    out.push_str(&table::render(
        &["recursion", "X(10) s-span", "X_F s-span", "X_F v-span"],
        &rows,
    ));

    // --- 2. Skip-input semantics. ---
    let mut rows = Vec::new();
    for (label, skip) in [
        ("literal zero (deviation u = 0)", SkipInput::Zero),
        (
            "physical coast (absolute u = 0)",
            SkipInput::Vector(vec![-params.u_eq()]),
        ),
    ] {
        let case = AccCaseStudy::build(params.clone(), 10, skip)?;
        let xp = case.sets().strengthened();
        // Quick paired fuel comparison on a few cases.
        let mut base_total = 0.0;
        let mut bang_total = 0.0;
        let episodes = scale.cases.clamp(3, 20);
        for i in 0..episodes {
            let front_seed = scale.seed + i as u64;
            let run = |policy: &mut dyn oic_core::SkipPolicy| -> Result<f64, CoreError> {
                Ok(case
                    .run_episode(EpisodeConfig {
                        policy,
                        front: Box::new(SinusoidalFront::new(&params, 40.0, 9.0, 1.0, front_seed)),
                        fuel: Box::new(Hbefa3Fuel::default()),
                        steps: scale.steps,
                        initial_state: [0.0, 0.0],
                        oracle_forecast: false,
                    })?
                    .summary
                    .total_fuel)
            };
            base_total += run(&mut AlwaysRunPolicy)?;
            bang_total += run(&mut BangBangPolicy)?;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", span(xp, [1.0, 0.0])),
            format!("{:.2}", span(xp, [0.0, 1.0])),
            table::pct(1.0 - bang_total / base_total),
        ]);
    }
    out.push_str("\nAblation 2 — skip-input semantics\n");
    out.push_str(&table::render(
        &[
            "skip input",
            "X' s-span",
            "X' v-span",
            "bang-bang fuel saving",
        ],
        &rows,
    ));

    // --- 3. MPC horizon. ---
    // Longer horizons tighten X(k) further each step; past a breakdown
    // point the terminal RPI set no longer fits and the design is
    // infeasible — the classic tube-MPC horizon trade-off, reported as
    // such rather than hidden.
    let mut rows = Vec::new();
    for horizon in [5usize, 8, 10, 12] {
        match AccCaseStudy::build(
            params.clone(),
            horizon,
            SkipInput::Vector(vec![-params.u_eq()]),
        ) {
            Ok(case) => rows.push(vec![
                horizon.to_string(),
                format!("{:.2}", span(case.sets().invariant(), [1.0, 0.0])),
                format!("{:.2}", span(case.sets().strengthened(), [1.0, 0.0])),
                format!("{:.2}", span(case.sets().strengthened(), [0.0, 1.0])),
            ]),
            Err(CoreError::Control(oic_control::ControlError::EmptySet))
            | Err(CoreError::EmptySet) => rows.push(vec![
                horizon.to_string(),
                "(empty)".to_string(),
                "(empty)".to_string(),
                "design infeasible: tightening leaves no terminal RPI set".to_string(),
            ]),
            Err(e) => return Err(e),
        }
    }
    out.push_str("\nAblation 3 — MPC horizon\n");
    out.push_str(&table::render(
        &["horizon N", "XI s-span", "X' s-span", "X' v-span"],
        &rows,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_renders() {
        let scale = ExperimentScale {
            cases: 3,
            steps: 30,
            train_episodes: 0,
            seed: 1,
            ..Default::default()
        };
        let out = run(&scale).unwrap();
        assert!(out.contains("Ablation 1"));
        assert!(out.contains("Ablation 2"));
        assert!(out.contains("Ablation 3"));
    }
}
