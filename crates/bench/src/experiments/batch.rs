//! The engine-backed scenario sweep: every registered scenario × a
//! standard policy roster, executed in parallel by `oic-engine`.
//!
//! This is the experiment the ROADMAP's scale direction runs through —
//! unlike the fig4–fig6 reproductions it is not tied to the ACC study or
//! its fuel model, so adding a scenario to the registry automatically
//! adds a row here.

use oic_engine::{
    run_batch_opts, BatchConfig, BatchReport, CellCache, DropoutSpec, EngineError, FaultPlan,
    JsonValue, PolicySpec, ShardInfo, SweepOptions, SweepStats,
};
use oic_scenarios::ScenarioRegistry;

use super::common::ExperimentScale;

/// The standard **analytic** policy roster for scenario sweeps — one of
/// every closed-form [`PolicySpec`] variant.
pub fn standard_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::AlwaysRun,
        PolicySpec::BangBang,
        PolicySpec::Periodic(4),
        PolicySpec::Random(0.25),
        PolicySpec::MaxSkip(2),
    ]
}

/// The full sweep roster: the analytic policies, the golden learned
/// policies riding on `registry` weight blobs (labels `drl-<scenario>`),
/// and any extra `drl:<path>` blobs the command line loaded.
///
/// Roster order is analytic → golden → CLI extras, so the analytic cells
/// of the committed `BENCH_batch.json` keep their positions (new cells
/// append within each scenario's block).
pub fn full_roster(
    registry: &ScenarioRegistry,
    scale: &ExperimentScale,
) -> Result<Vec<PolicySpec>, String> {
    let mut roster = standard_policies();
    roster.extend(crate::golden::drl_policies(registry));
    roster.extend(extra_policies(scale)?);
    Ok(roster)
}

/// Loads the `--policies drl:<path>` entries of a scale: each path is an
/// `oic-nn` weight blob, added as a [`PolicySpec::Drl`] named after the
/// file stem.
///
/// # Errors
///
/// Returns a human-readable message for unreadable files or malformed
/// entries (unknown prefixes).
pub fn extra_policies(scale: &ExperimentScale) -> Result<Vec<PolicySpec>, String> {
    let mut extras = Vec::new();
    for entry in &scale.policies {
        let Some(path) = entry.strip_prefix("drl:") else {
            return Err(format!(
                "unknown policy entry {entry:?} (expected drl:<path>)"
            ));
        };
        let weights =
            std::fs::read(path).map_err(|e| format!("cannot read weight blob {path:?}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("blob")
            .to_string();
        extras.push(PolicySpec::drl(name, weights));
    }
    Ok(extras)
}

/// The engine configuration a scale maps to (shared by `run` and the
/// CI determinism job, which needs byte-identical configs per thread
/// count).
pub fn config(scale: &ExperimentScale) -> BatchConfig {
    BatchConfig {
        episodes: scale.cases,
        steps: scale.steps,
        seed: scale.seed,
        threads: scale.threads,
        chunk: scale.chunk,
        detail: !scale.stream,
        ..Default::default()
    }
}

/// Runs the sweep: `scale.cases` episodes of `scale.steps` steps per
/// (scenario, policy) cell over the full standard registry, with the
/// golden learned policies alongside the analytic roster (learned cells
/// materialize wherever the network's dimensions fit the plant — the
/// scenario it was trained for is the headline row, the rest are
/// zero-shot transfer stressors that Theorem 1 keeps safe anyway).
///
/// # Errors
///
/// Propagates scenario-build and episode failures from the engine;
/// unreadable `--policies` blobs surface as [`EngineError::InvalidConfig`].
pub fn run(scale: &ExperimentScale) -> Result<BatchReport, EngineError> {
    run_with_stats(scale).map(|(report, _)| report)
}

/// [`run`] plus the sweep statistics — work-stealing scheduler counters,
/// dimension-skip tallies and per-cell wall times (for wall-clock
/// summaries and throughput reports; never serialized into the
/// deterministic report).
///
/// # Errors
///
/// Same contract as [`run`].
pub fn run_with_stats(scale: &ExperimentScale) -> Result<(BatchReport, SweepStats), EngineError> {
    let registry = crate::golden::registry_with_golden();
    let roster = full_roster(&registry, scale).map_err(|message| {
        eprintln!("{message}");
        EngineError::InvalidConfig("unusable --policies entry (see stderr)")
    })?;
    let shard = match &scale.shard {
        Some(text) => Some(ShardInfo::parse(text).map_err(|message| {
            eprintln!("{message}");
            EngineError::InvalidConfig("unusable --shard (see stderr)")
        })?),
        None => None,
    };
    let cache = scale
        .cache_dir
        .as_ref()
        .map(|dir| CellCache::new(4096, Some(dir.into())));
    let dropouts = dropout_specs(scale).map_err(|message| {
        eprintln!("{message}");
        EngineError::InvalidConfig("unusable --dropout (see stderr)")
    })?;
    let plan = match &scale.fault_plan {
        Some(path) => Some(load_fault_plan(path).map_err(|message| {
            eprintln!("{message}");
            EngineError::InvalidConfig("unusable --fault-plan (see stderr)")
        })?),
        None => None,
    };
    let opts = SweepOptions {
        shard,
        cache: cache.as_ref(),
        dropouts: (!dropouts.is_empty()).then_some(dropouts.as_slice()),
        faults: plan.as_ref(),
        kernel: scale.kernel,
        ..Default::default()
    };
    run_batch_opts(&registry, &roster, &config(scale), &opts)
}

/// Parses the `--dropout` labels of a scale into engine specs.
///
/// # Errors
///
/// Returns a human-readable message naming the unparseable label.
pub fn dropout_specs(scale: &ExperimentScale) -> Result<Vec<DropoutSpec>, String> {
    scale
        .dropout
        .iter()
        .map(|label| {
            DropoutSpec::parse(label).map_err(|e| format!("bad --dropout entry {label:?}: {e}"))
        })
        .collect()
}

/// Loads a `--fault-plan` JSON document (`seed`, `panic_rate`,
/// `nan_rate`) into a validated [`FaultPlan`].
///
/// # Errors
///
/// Returns a human-readable message for unreadable files, malformed
/// JSON, or out-of-range rates.
pub fn load_fault_plan(path: &str) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fault plan {path:?}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("fault plan {path:?}: {e}"))?;
    let seed = match doc.get("seed") {
        Some(JsonValue::Number(n)) => *n as u64,
        Some(value) => value
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("fault plan {path:?}: seed must be a u64"))?,
        None => 0,
    };
    let rate = |key: &str| -> Result<f64, String> {
        match doc.get(key) {
            Some(value) => value
                .as_f64()
                .ok_or_else(|| format!("fault plan {path:?}: {key} must be a number")),
            None => Ok(0.0),
        }
    };
    let plan = FaultPlan {
        seed,
        panic_rate: rate("panic_rate")?,
        nan_rate: rate("nan_rate")?,
    };
    plan.validate()
        .map_err(|message| format!("fault plan {path:?}: {message}"))?;
    Ok(plan)
}

/// The batch bin's stderr wall-clock summary line.
///
/// The `wall-clock: <seconds>s` prefix is load-bearing: CI greps
/// `wall-clock: [0-9.]*s` out of stderr to enforce the bench-baseline
/// time ceiling, so the prefix format must not change. The trailing
/// scheduler summary labels the no-steal case explicitly (single-cell
/// and single-worker runs never steal — printing `0 steals` there reads
/// like a scheduler regression when it is just a degenerate pool).
pub fn wall_clock_line(
    elapsed_s: f64,
    episodes: usize,
    cells: usize,
    tasks: u64,
    workers: u64,
    steals: u64,
) -> String {
    let rate = episodes as f64 / elapsed_s.max(1e-9);
    let steal_part = if steals == 0 {
        "no steals".to_string()
    } else {
        format!("{steals} steals")
    };
    format!(
        "wall-clock: {elapsed_s:.3}s for {episodes} episodes in {cells} cells \
         ({rate:.0} episodes/s; {tasks} tasks on {workers} workers, {steal_part})"
    )
}

/// Renders the sweep as a table plus the Theorem-1 tally.
pub fn render(report: &BatchReport) -> String {
    let mut out = String::from("Scenario sweep — all registered plants x standard policies\n");
    out.push_str(&report.render_table());
    out.push_str(&format!(
        "\ntotal safety violations across {} cells: {} (Theorem 1 demands 0)\n",
        report.cells.len(),
        report.total_safety_violations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_clean_and_serializes() {
        let scale = ExperimentScale {
            cases: 2,
            steps: 25,
            train_episodes: 0,
            seed: 9,
            ..Default::default()
        };
        let report = run(&scale).unwrap();
        // 10 scenarios × 5 analytic policies, plus the two golden 4-input
        // networks on each of the eight 2-state plants (the 3-state CSTR
        // and 4-state two-mass spring cells are dimension-skipped).
        let analytic = 10 * standard_policies().len();
        let learned = report
            .cells
            .iter()
            .filter(|c| c.policy.starts_with("drl-"))
            .count();
        assert_eq!(learned, 16);
        assert_eq!(report.cells.len(), analytic + learned);
        assert_eq!(report.total_safety_violations(), 0);
        assert!(
            !report
                .cells
                .iter()
                .any(|c| c.scenario == "cstr" && c.policy.starts_with("drl-")),
            "3-state plants cannot host the 4-input golden networks"
        );
        let rendered = render(&report);
        assert!(rendered.contains("lane-keeping"));
        assert!(rendered.contains("pendulum-cart"));
        assert!(rendered.contains("cstr"));
        assert!(rendered.contains("two-mass-spring"));
        assert!(rendered.contains("drl-acc"));
        let json = report.to_json(false).to_json();
        assert!(json.contains("\"seed\":\"9\""));
    }

    #[test]
    fn cli_policy_entries_load_or_fail_loudly() {
        let bogus = ExperimentScale {
            policies: vec!["mlp:whatever".into()],
            ..Default::default()
        };
        assert!(extra_policies(&bogus).unwrap_err().contains("mlp:whatever"));
        let missing = ExperimentScale {
            policies: vec!["drl:/nonexistent/net.bin".into()],
            ..Default::default()
        };
        assert!(extra_policies(&missing).unwrap_err().contains("net.bin"));
        // A real blob round-trips and is named after the file stem.
        let dir = std::env::temp_dir().join("oic-bench-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("my_net.bin");
        std::fs::write(&path, crate::golden::ACC_DQN).unwrap();
        let ok = ExperimentScale {
            policies: vec![format!("drl:{}", path.display())],
            ..Default::default()
        };
        let extras = extra_policies(&ok).unwrap();
        assert_eq!(extras.len(), 1);
        assert_eq!(extras[0].label(), "drl-my_net");
    }

    #[test]
    fn wall_clock_line_keeps_the_ci_grep_prefix() {
        // CI extracts the runtime with `grep -o 'wall-clock: [0-9.]*s'`;
        // both branches must keep that prefix intact.
        let stolen = wall_clock_line(1.5, 1000, 4, 16, 8, 12);
        assert!(stolen.starts_with("wall-clock: 1.500s for 1000 episodes in 4 cells"));
        assert!(stolen.contains("16 tasks on 8 workers, 12 steals"));
        let quiet = wall_clock_line(0.25, 10, 1, 1, 1, 0);
        assert!(quiet.starts_with("wall-clock: 0.250s"));
        assert!(quiet.contains("no steals"), "zero case is labeled: {quiet}");
        assert!(
            !quiet.contains("0 steals"),
            "not printed as a count: {quiet}"
        );
    }

    #[test]
    fn warm_cache_run_is_byte_identical_with_full_hits() {
        let dir = std::env::temp_dir().join(format!("oic-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = ExperimentScale {
            cases: 3,
            steps: 20,
            train_episodes: 0,
            seed: 11,
            cache_dir: Some(dir.display().to_string()),
            ..Default::default()
        };
        let (cold, cold_stats) = run_with_stats(&scale).unwrap();
        assert_eq!(cold_stats.cells_from_cache, 0, "first run populates");
        // A fresh process would start with a cold memory tier too; the
        // second run here reopens the store from disk the same way.
        let (warm, warm_stats) = run_with_stats(&scale).unwrap();
        assert_eq!(
            warm_stats.cells_from_cache,
            warm.cells.len(),
            "second run is answered entirely from cache"
        );
        assert_eq!(
            warm.to_json(false).to_json_pretty(),
            cold.to_json(false).to_json_pretty(),
            "cached report is byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_runs_partition_the_grid() {
        let scale = |shard: &str| ExperimentScale {
            cases: 2,
            steps: 15,
            train_episodes: 0,
            seed: 5,
            shard: Some(shard.to_string()),
            ..Default::default()
        };
        let full = run(&ExperimentScale {
            cases: 2,
            steps: 15,
            train_episodes: 0,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let (a, b) = (run(&scale("0/2")).unwrap(), run(&scale("1/2")).unwrap());
        assert_eq!(a.shard, Some(ShardInfo { index: 0, of: 2 }));
        assert_eq!(a.cells.len() + b.cells.len(), full.cells.len());
        // Interleaving merged[g] = shard[g % 2].cells[g / 2] rebuilds the
        // full report cell-for-cell (the serve merge subcommand's contract).
        for (g, cell) in full.cells.iter().enumerate() {
            let piece = if g % 2 == 0 { &a } else { &b };
            assert_eq!(&piece.cells[g / 2], cell, "global cell {g}");
        }
        assert!(run(&scale("2/2")).is_err(), "index out of range");
    }

    #[test]
    fn dropout_axis_multiplies_the_grid_without_touching_fault_free_bytes() {
        let base = ExperimentScale {
            cases: 2,
            steps: 15,
            train_episodes: 0,
            seed: 5,
            ..Default::default()
        };
        let plain = run(&base).unwrap();
        let faulted = run(&ExperimentScale {
            dropout: vec!["none".into(), "mk-1-5".into()],
            ..base.clone()
        })
        .unwrap();
        assert_eq!(faulted.cells.len(), 2 * plain.cells.len());
        // The none-variant cells render the exact fault-free bytes.
        for (g, cell) in plain.cells.iter().enumerate() {
            assert_eq!(
                faulted.cells[2 * g].to_json(false).to_json(),
                cell.to_json(false).to_json(),
                "none variant of global cell {g}"
            );
            assert_eq!(faulted.cells[2 * g + 1].dropout, "mk-1-5");
        }
        // Theorem 1's zero-violation guarantee only covers the nominal
        // actuator: the fault-free variants must keep it, while dropout
        // variants tally whatever the forced skips actually cause.
        let nominal_violations: usize = faulted
            .cells
            .iter()
            .filter(|cell| cell.dropout == "none")
            .map(|cell| cell.safety_violations)
            .sum();
        assert_eq!(nominal_violations, 0, "Theorem 1 on the nominal axis");
        let bad = ExperimentScale {
            dropout: vec!["bernoulli-nope".into()],
            ..base
        };
        assert!(run(&bad).is_err(), "bad labels are rejected loudly");
    }

    #[test]
    fn fault_plans_load_validate_and_degrade_cells() {
        let dir = std::env::temp_dir().join(format!("oic-bench-plan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        std::fs::write(
            &path,
            r#"{"seed": "7", "panic_rate": 1.0, "nan_rate": 0.0}"#,
        )
        .unwrap();
        let plan = load_fault_plan(&path.display().to_string()).unwrap();
        assert_eq!(plan.seed, 7);
        assert!((plan.panic_rate - 1.0).abs() < 1e-12);

        let bad = dir.join("bad.json");
        std::fs::write(&bad, r#"{"panic_rate": 0.8, "nan_rate": 0.8}"#).unwrap();
        assert!(load_fault_plan(&bad.display().to_string())
            .unwrap_err()
            .contains("exceed"));
        assert!(load_fault_plan("/nonexistent/plan.json")
            .unwrap_err()
            .contains("cannot read"));

        let scale = ExperimentScale {
            cases: 2,
            steps: 15,
            train_episodes: 0,
            seed: 5,
            fault_plan: Some(path.display().to_string()),
            ..Default::default()
        };
        let (report, stats) = run_with_stats(&scale).unwrap();
        assert_eq!(
            stats.cells_failed,
            report.cells.len(),
            "rate-1.0 plan fails every cell"
        );
        assert!(report.cells.iter().all(|c| c.is_failed()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_maps_to_engine_config() {
        let scale = ExperimentScale {
            cases: 7,
            steps: 11,
            seed: 3,
            threads: 2,
            chunk: 5,
            stream: false,
            ..Default::default()
        };
        let config = config(&scale);
        assert_eq!(config.episodes, 7);
        assert_eq!(config.steps, 11);
        assert_eq!(config.seed, 3);
        assert_eq!(config.threads, 2);
        assert_eq!(config.chunk, 5);
        assert!(config.detail, "--detail keeps per-episode rows");
    }
}
