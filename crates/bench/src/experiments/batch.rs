//! The engine-backed scenario sweep: every registered scenario × a
//! standard policy roster, executed in parallel by `oic-engine`.
//!
//! This is the experiment the ROADMAP's scale direction runs through —
//! unlike the fig4–fig6 reproductions it is not tied to the ACC study or
//! its fuel model, so adding a scenario to the registry automatically
//! adds a row here.

use oic_engine::{run_batch, BatchConfig, BatchReport, EngineError, PolicySpec};
use oic_scenarios::ScenarioRegistry;

use super::common::ExperimentScale;

/// The standard policy roster for scenario sweeps.
pub fn standard_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::AlwaysRun,
        PolicySpec::BangBang,
        PolicySpec::Periodic(4),
        PolicySpec::MaxSkip(2),
    ]
}

/// Runs the sweep: `scale.cases` episodes of `scale.steps` steps per
/// (scenario, policy) cell over the full standard registry.
///
/// # Errors
///
/// Propagates scenario-build and episode failures from the engine.
pub fn run(scale: &ExperimentScale) -> Result<BatchReport, EngineError> {
    let registry = ScenarioRegistry::standard();
    let config = BatchConfig {
        episodes: scale.cases,
        steps: scale.steps,
        seed: scale.seed,
        ..Default::default()
    };
    run_batch(&registry, &standard_policies(), &config)
}

/// Renders the sweep as a table plus the Theorem-1 tally.
pub fn render(report: &BatchReport) -> String {
    let mut out = String::from("Scenario sweep — all registered plants x standard policies\n");
    out.push_str(&report.render_table());
    out.push_str(&format!(
        "\ntotal safety violations across {} cells: {} (Theorem 1 demands 0)\n",
        report.cells.len(),
        report.total_safety_violations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_clean_and_serializes() {
        let scale = ExperimentScale {
            cases: 2,
            steps: 25,
            train_episodes: 0,
            seed: 9,
            out: None,
        };
        let report = run(&scale).unwrap();
        assert_eq!(report.cells.len(), 5 * standard_policies().len());
        assert_eq!(report.total_safety_violations(), 0);
        let rendered = render(&report);
        assert!(rendered.contains("lane-keeping"));
        let json = report.to_json(false).to_json();
        assert!(json.contains("\"seed\":\"9\""));
    }
}
