//! The engine-backed scenario sweep: every registered scenario × a
//! standard policy roster, executed in parallel by `oic-engine`.
//!
//! This is the experiment the ROADMAP's scale direction runs through —
//! unlike the fig4–fig6 reproductions it is not tied to the ACC study or
//! its fuel model, so adding a scenario to the registry automatically
//! adds a row here.

use oic_engine::{
    run_batch_with_stats, BatchConfig, BatchReport, EngineError, PolicySpec, StealStats,
};
use oic_scenarios::ScenarioRegistry;

use super::common::ExperimentScale;

/// The standard policy roster for scenario sweeps — one of every
/// [`PolicySpec`] variant, so the sweep exercises the full policy space.
pub fn standard_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::AlwaysRun,
        PolicySpec::BangBang,
        PolicySpec::Periodic(4),
        PolicySpec::Random(0.25),
        PolicySpec::MaxSkip(2),
    ]
}

/// The engine configuration a scale maps to (shared by `run` and the
/// CI determinism job, which needs byte-identical configs per thread
/// count).
pub fn config(scale: &ExperimentScale) -> BatchConfig {
    BatchConfig {
        episodes: scale.cases,
        steps: scale.steps,
        seed: scale.seed,
        threads: scale.threads,
        chunk: scale.chunk,
        detail: !scale.stream,
        ..Default::default()
    }
}

/// Runs the sweep: `scale.cases` episodes of `scale.steps` steps per
/// (scenario, policy) cell over the full standard registry.
///
/// # Errors
///
/// Propagates scenario-build and episode failures from the engine.
pub fn run(scale: &ExperimentScale) -> Result<BatchReport, EngineError> {
    run_with_stats(scale).map(|(report, _)| report)
}

/// [`run`] plus the work-stealing scheduler's counters (for wall-clock
/// summaries; never serialized into the deterministic report).
///
/// # Errors
///
/// Propagates scenario-build and episode failures from the engine.
pub fn run_with_stats(scale: &ExperimentScale) -> Result<(BatchReport, StealStats), EngineError> {
    let registry = ScenarioRegistry::standard();
    run_batch_with_stats(&registry, &standard_policies(), &config(scale))
}

/// Renders the sweep as a table plus the Theorem-1 tally.
pub fn render(report: &BatchReport) -> String {
    let mut out = String::from("Scenario sweep — all registered plants x standard policies\n");
    out.push_str(&report.render_table());
    out.push_str(&format!(
        "\ntotal safety violations across {} cells: {} (Theorem 1 demands 0)\n",
        report.cells.len(),
        report.total_safety_violations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_clean_and_serializes() {
        let scale = ExperimentScale {
            cases: 2,
            steps: 25,
            train_episodes: 0,
            seed: 9,
            ..Default::default()
        };
        let report = run(&scale).unwrap();
        assert_eq!(report.cells.len(), 10 * standard_policies().len());
        assert_eq!(report.total_safety_violations(), 0);
        let rendered = render(&report);
        assert!(rendered.contains("lane-keeping"));
        assert!(rendered.contains("pendulum-cart"));
        assert!(rendered.contains("cstr"));
        assert!(rendered.contains("two-mass-spring"));
        let json = report.to_json(false).to_json();
        assert!(json.contains("\"seed\":\"9\""));
    }

    #[test]
    fn scale_maps_to_engine_config() {
        let scale = ExperimentScale {
            cases: 7,
            steps: 11,
            seed: 3,
            threads: 2,
            chunk: 5,
            stream: false,
            ..Default::default()
        };
        let config = config(&scale);
        assert_eq!(config.episodes, 7);
        assert_eq!(config.steps, 11);
        assert_eq!(config.seed, 3);
        assert_eq!(config.threads, 2);
        assert_eq!(config.chunk, 5);
        assert!(config.detail, "--detail keeps per-episode rows");
    }
}
