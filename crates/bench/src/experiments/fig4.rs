//! Fig. 4: fuel-consumption-saving histogram over random test cases.
//!
//! Protocol (paper §IV-A): sinusoidal front vehicle (Eq. (8) with
//! `v_e = 40, a_f = 9, w ∈ [−1, 1]`), 100 steps, 500 random initial states;
//! compare DRL-based opportunistic intermittent control and bang-bang
//! control against the RMPC-only baseline. The paper reports mean savings
//! of 16.28 % (bang-bang) and 23.83 % (DRL), with the DRL histogram shifted
//! right of the bang-bang histogram.

use oic_core::acc::AccCaseStudy;
use oic_core::{BangBangPolicy, CoreError, SkipPolicy};
use oic_sim::front::SinusoidalFront;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::common::{compare_on_case, ExperimentScale};
use crate::table;

/// Histogram bucket labels (paper x-axis plus a catch-all for regressions).
pub const BUCKETS: [&str; 7] = [
    "<0%", "0%-10%", "10%-20%", "20%-30%", "30%-40%", "40%-50%", "50%-60%",
];

/// Aggregated Fig. 4 results.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Report {
    /// Cases per histogram bucket for bang-bang control.
    pub bang_bang_counts: [usize; 7],
    /// Cases per histogram bucket for DRL-based intermittent control.
    pub drl_counts: [usize; 7],
    /// Mean fuel saving of bang-bang over RMPC-only.
    pub mean_saving_bang_bang: f64,
    /// Mean fuel saving of DRL over RMPC-only.
    pub mean_saving_drl: f64,
    /// Mean fraction of steps skipped by the DRL policy.
    pub mean_skip_rate_drl: f64,
    /// Mean fraction of steps skipped by bang-bang.
    pub mean_skip_rate_bang_bang: f64,
    /// Safety violations across *all* runs (Theorem 1 demands 0).
    pub total_violations: usize,
    /// Number of test cases.
    pub cases: usize,
}

fn bucket_of(saving: f64) -> usize {
    if saving < 0.0 {
        0
    } else {
        (1 + ((saving * 10.0).floor() as usize).min(5)).min(6)
    }
}

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates case-study construction and episode failures.
pub fn run(scale: &ExperimentScale) -> Result<Fig4Report, CoreError> {
    let case = AccCaseStudy::build_default()?;
    let params = case.params().clone();

    // Train the DRL policy on the same class of front behaviour.
    let train_params = params.clone();
    let (mut drl, _stats) = case.train_drl(
        Box::new(move |seed| {
            Box::new(SinusoidalFront::new(
                &train_params,
                40.0,
                9.0,
                1.0,
                0xD6A0 + seed,
            ))
        }),
        scale.train_episodes,
        scale.steps,
        1,
        scale.seed,
    );

    let mut report = Fig4Report {
        bang_bang_counts: [0; 7],
        drl_counts: [0; 7],
        mean_saving_bang_bang: 0.0,
        mean_saving_drl: 0.0,
        mean_skip_rate_drl: 0.0,
        mean_skip_rate_bang_bang: 0.0,
        total_violations: 0,
        cases: scale.cases,
    };

    let mut rng = StdRng::seed_from_u64(scale.seed);
    for case_idx in 0..scale.cases {
        let x0 = case.sample_initial_state(&mut rng);
        let front_seed = scale.seed ^ (0xF194 + case_idx as u64);
        let mut front_factory = {
            let params = params.clone();
            move || -> Box<dyn oic_sim::front::FrontModel> {
                Box::new(SinusoidalFront::new(&params, 40.0, 9.0, 1.0, front_seed))
            }
        };

        let mut bang = BangBangPolicy;
        let cmp_bang =
            compare_on_case(&case, &mut bang, &mut front_factory, x0, scale.steps, false)?;
        let cmp_drl = compare_on_case(
            &case,
            &mut drl as &mut dyn SkipPolicy,
            &mut front_factory,
            x0,
            scale.steps,
            false,
        )?;

        report.bang_bang_counts[bucket_of(cmp_bang.fuel_saving())] += 1;
        report.drl_counts[bucket_of(cmp_drl.fuel_saving())] += 1;
        report.mean_saving_bang_bang += cmp_bang.fuel_saving();
        report.mean_saving_drl += cmp_drl.fuel_saving();
        report.mean_skip_rate_bang_bang += cmp_bang.policy.stats.skip_rate();
        report.mean_skip_rate_drl += cmp_drl.policy.stats.skip_rate();
        report.total_violations += cmp_bang.violations() + cmp_drl.violations();
    }
    let n = scale.cases.max(1) as f64;
    report.mean_saving_bang_bang /= n;
    report.mean_saving_drl /= n;
    report.mean_skip_rate_bang_bang /= n;
    report.mean_skip_rate_drl /= n;
    Ok(report)
}

/// JSON form of the report (written by the binary's `--out` flag).
pub fn to_json(report: &Fig4Report, scale: &ExperimentScale) -> oic_engine::JsonValue {
    use oic_engine::JsonValue;
    scale
        .json_header("fig4")
        .with(
            "buckets",
            JsonValue::Array(BUCKETS.iter().map(|b| (*b).into()).collect()),
        )
        .with("bang_bang_counts", report.bang_bang_counts.to_vec())
        .with("drl_counts", report.drl_counts.to_vec())
        .with("mean_saving_bang_bang", report.mean_saving_bang_bang)
        .with("mean_saving_drl", report.mean_saving_drl)
        .with("mean_skip_rate_bang_bang", report.mean_skip_rate_bang_bang)
        .with("mean_skip_rate_drl", report.mean_skip_rate_drl)
        .with("total_violations", report.total_violations)
}

/// Renders the report in the paper's layout (histogram + means).
pub fn render(report: &Fig4Report) -> String {
    let max = report
        .bang_bang_counts
        .iter()
        .chain(report.drl_counts.iter())
        .copied()
        .max()
        .unwrap_or(1);
    let rows: Vec<Vec<String>> = BUCKETS
        .iter()
        .enumerate()
        .map(|(i, b)| {
            vec![
                b.to_string(),
                report.bang_bang_counts[i].to_string(),
                table::bar(report.bang_bang_counts[i], max, 25),
                report.drl_counts[i].to_string(),
                table::bar(report.drl_counts[i], max, 25),
            ]
        })
        .collect();
    let mut out = String::from("Fig. 4 — fuel consumption saving vs RMPC-only\n");
    out.push_str(&table::render(
        &["saving range", "bang-bang", "", "opportunistic (DRL)", ""],
        &rows,
    ));
    out.push_str(&format!(
        "\nmean saving: bang-bang {} | DRL {}   (paper: 16.28% | 23.83%)\n",
        table::pct(report.mean_saving_bang_bang),
        table::pct(report.mean_saving_drl),
    ));
    out.push_str(&format!(
        "mean skip rate: bang-bang {} | DRL {}   (paper DRL: 79.4/100)\n",
        table::pct(report.mean_skip_rate_bang_bang),
        table::pct(report.mean_skip_rate_drl),
    ));
    out.push_str(&format!(
        "safety violations across {} cases x 3 controllers: {}\n",
        report.cases, report.total_violations
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_savings() {
        assert_eq!(bucket_of(-0.05), 0);
        assert_eq!(bucket_of(0.0), 1);
        assert_eq!(bucket_of(0.099), 1);
        assert_eq!(bucket_of(0.15), 2);
        assert_eq!(bucket_of(0.55), 6);
        assert_eq!(bucket_of(0.99), 6);
    }

    #[test]
    fn tiny_fig4_runs_clean() {
        let scale = ExperimentScale {
            cases: 2,
            steps: 40,
            train_episodes: 2,
            seed: 7,
            ..Default::default()
        };
        let report = run(&scale).unwrap();
        assert_eq!(report.cases, 2);
        assert_eq!(report.total_violations, 0, "Theorem 1 must hold");
        let total: usize = report.drl_counts.iter().sum();
        assert_eq!(total, 2);
        let rendered = render(&report);
        assert!(rendered.contains("mean saving"));
    }
}
