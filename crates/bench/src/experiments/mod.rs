//! Experiment runners, one module per paper artifact, plus the
//! engine-backed scenario sweep.

pub mod ablation;
pub mod batch;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod timing;
pub mod train;

mod common;

pub use common::{EpisodeComparison, ExperimentScale};
