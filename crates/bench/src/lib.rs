//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§IV), plus shared table-printing utilities.
//!
//! Each paper artifact has a binary that prints the same rows/series the
//! paper reports:
//!
//! | Artifact | Binary | Module |
//! |---|---|---|
//! | Fig. 4 (fuel-saving histogram, 500 cases) | `cargo run --release -p oic-bench --bin fig4` | [`experiments::fig4`] |
//! | §IV-A timing (0.12 s vs 0.02 s, ≈60 % saving) | `… --bin timing` | [`experiments::timing`] |
//! | Table I + Fig. 5 (velocity ranges) | `… --bin fig5` | [`experiments::fig5`] |
//! | Fig. 6 (velocity regularity) | `… --bin fig6` | [`experiments::fig6`] |
//! | Scenario sweep (all registered plants, via `oic-engine`) | `… --bin batch` | [`experiments::batch`] |
//!
//! All binaries accept `--cases N --steps N --train N --seed N` to scale the
//! experiment (defaults match the paper: 500 cases × 100 steps), plus
//! `--out report.json` to save a machine-readable report — batch reports
//! are seed-stable byte-for-byte, which makes `BENCH_*.json` perf
//! trajectories reproducible.

pub mod experiments;
pub mod fixtures;
pub mod golden;
pub mod table;
