//! Trains the golden DQN skipping-policy fixtures.
//!
//! Usage: `cargo run --release -p oic-bench --bin train -- [--scenario
//! NAME] [--episodes N] [--steps N] [--seed N] [--out FILE]`
//!
//! With no `--scenario`, trains every golden scenario at its pinned spec
//! and writes `crates/bench/fixtures/<name>_dqn.bin`. Sweeps and CI never
//! retrain: they consume the committed fixtures (which are pure-inference
//! artifacts, bit-stable on any host). After each training run the blob
//! is evaluated through the batch engine at the `BENCH_batch.json`
//! settings and the skip-rate comparison against the analytic roster is
//! printed.

use oic_bench::experiments::train::{evaluate_policy, train_policy, TrainSpec, GOLDEN_SCENARIOS};

fn fixture_path(scenario: &str) -> String {
    format!(
        "{}/fixtures/{}_dqn.bin",
        env!("CARGO_MANIFEST_DIR"),
        scenario.replace('-', "_")
    )
}

fn main() {
    let mut scenario: Option<String> = None;
    let mut out: Option<String> = None;
    let mut episodes: Option<usize> = None;
    let mut steps: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => scenario = args.next(),
            "--out" => out = args.next(),
            "--episodes" => episodes = args.next().and_then(|v| v.parse().ok()),
            "--steps" => steps = args.next().and_then(|v| v.parse().ok()),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()),
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }

    let roster: Vec<String> = match scenario {
        Some(s) => vec![s],
        None => GOLDEN_SCENARIOS.iter().map(|s| s.to_string()).collect(),
    };
    if out.is_some() && roster.len() > 1 {
        eprintln!("--out needs --scenario: one output path cannot hold every golden fixture");
        std::process::exit(1);
    }
    for name in roster {
        let mut spec = TrainSpec::golden(&name);
        if let Some(e) = episodes {
            spec.episodes = e;
        }
        if let Some(s) = steps {
            spec.steps = s;
        }
        if let Some(s) = seed {
            spec.seed = s;
        }
        eprintln!(
            "training {name}: {} episodes x {} steps, seed {}, hidden {:?}",
            spec.episodes, spec.steps, spec.seed, spec.hidden
        );
        let started = std::time::Instant::now();
        let trained = match train_policy(&spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("training {name} failed: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "trained in {:.1}s ({} bytes, late mean return {:.4}; selected checkpoint after {} episodes, validation skip {:.4})",
            started.elapsed().as_secs_f64(),
            trained.weights.len(),
            trained.stats.recent_mean_return(100),
            trained.selected_after,
            trained.validation_skip_rate,
        );
        match evaluate_policy(&name, &trained.weights, 50, 50, 42) {
            Ok(eval) => {
                for cell in &eval.analytic {
                    eprintln!(
                        "  {:<16} skip {:.4}  violations {}",
                        cell.policy, cell.mean_skip_rate, cell.safety_violations
                    );
                }
                eprintln!(
                    "  {:<16} skip {:.4}  violations {}  => drl {}",
                    eval.drl.policy,
                    eval.drl.mean_skip_rate,
                    eval.drl.safety_violations,
                    if eval.drl_wins() {
                        "WINS"
                    } else {
                        "does not win"
                    },
                );
            }
            Err(e) => {
                eprintln!("evaluation of {name} failed: {e}");
                std::process::exit(1);
            }
        }
        let path = out.clone().unwrap_or_else(|| fixture_path(&name));
        if let Err(e) = std::fs::write(&path, &trained.weights) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("fixture written to {path}");
    }
}
