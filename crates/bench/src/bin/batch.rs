//! The engine-backed scenario sweep: every registered scenario × the
//! standard policy roster, chunked through the work-stealing pool, with
//! seed-stable JSON output.
//!
//! Usage: `cargo run --release -p oic-bench --bin batch -- [--cases N]
//! [--steps N] [--seed N] [--threads N] [--chunk N] [--stream|--detail]
//! [--policies drl:<path>[,drl:<path>…]] [--out report.json]
//! [--metrics metrics.json] [--trace trace.json] [--cache-dir DIR]
//! [--shard i/n] [--dropout LABEL[,LABEL…]] [--fault-plan plan.json]`
//!
//! `--cache-dir` answers already-computed cells from the
//! content-addressed store under `DIR` (and fills it as new cells
//! complete); `--shard i/n` runs the cells whose global index is `i`
//! modulo `n`, for fan-out across machines — `serve merge` interleaves
//! the shard reports back into the unsharded bytes. Neither flag
//! changes a single report byte (see `docs/PROTOCOL.md`).
//!
//! `--dropout` adds environment-forced actuation-dropout variants
//! (`none`, `bernoulli-<p>`, `mk-<m>-<k>`) as a third grid axis;
//! `--fault-plan` injects deterministic infrastructure faults (worker
//! panics, NaN plant updates) from a committed JSON plan — the sweep
//! degrades (failed cells in the report) instead of aborting, and both
//! stay byte-reproducible at any thread count (`docs/ROBUSTNESS.md`).
//!
//! The roster is the five analytic policies plus the committed golden
//! learned policies (`drl-acc`, `drl-double-integrator`); `--policies
//! drl:<path>` appends additional weight blobs from disk.
//!
//! The wall-clock/scheduler summary goes to stderr only — the JSON
//! report is deterministic byte-for-byte and must stay that way (CI
//! diffs it against the committed `BENCH_batch.json` baseline).
//! Telemetry never touches the report: `--metrics` dumps the `oic-obs`
//! counter/histogram snapshot as JSON (plus a stderr table), `--trace`
//! records spans and writes a Chrome trace-event file that loads in
//! `chrome://tracing` / Perfetto.

use std::time::Instant;

use oic_bench::experiments::{batch, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::from_args(std::env::args().skip(1));
    // The paper-scale default of 500 training episodes is a DRL knob; the
    // sweep is policy-only, so only cases/steps/seed/engine knobs apply.
    scale.train_episodes = 0;
    // Metrics are always on here: the wall-clock/scheduler stderr summary
    // below reads the snapshot, so logs and `--metrics` dumps share one
    // code path. Spans cost more (a ring write per episode), so tracing
    // stays off unless a trace file was requested.
    oic_obs::set_metrics_enabled(true);
    if scale.trace_out.is_some() {
        oic_obs::set_trace_enabled(true);
    }
    eprintln!(
        "batch: full registry x standard policies, {} episodes x {} steps (seed {}, threads {}, chunk {}, {})",
        scale.cases,
        scale.steps,
        scale.seed,
        if scale.threads == 0 { "auto".to_string() } else { scale.threads.to_string() },
        if scale.chunk == 0 { "auto".to_string() } else { scale.chunk.to_string() },
        if scale.stream { "streaming" } else { "detail" },
    );
    let started = Instant::now();
    match batch::run_with_stats(&scale) {
        Ok((report, stats)) => {
            let elapsed = started.elapsed();
            print!("{}", batch::render(&report));
            let episodes: usize = report.cells.iter().map(|c| c.episodes).sum();
            // The scheduler numbers come from the metrics snapshot — the
            // same registry `--metrics` serializes — so the summary line
            // and the machine-readable dump can never disagree.
            let snapshot = oic_obs::metrics_snapshot();
            eprintln!(
                "{}",
                batch::wall_clock_line(
                    elapsed.as_secs_f64(),
                    episodes,
                    report.cells.len(),
                    snapshot.counter("engine.tasks_executed").unwrap_or(0),
                    snapshot.gauge("engine.workers").unwrap_or(0),
                    snapshot.counter("engine.steals").unwrap_or(0),
                )
            );
            if scale.cache_dir.is_some() {
                eprintln!(
                    "cache: {} of {} cells answered from the store, {} ran",
                    stats.cells_from_cache,
                    report.cells.len(),
                    report.cells.len() - stats.cells_from_cache,
                );
            }
            if stats.cells_failed > 0 {
                eprintln!(
                    "{} cells degraded to failed entries under fault injection",
                    stats.cells_failed,
                );
            }
            if stats.cells_skipped_incompatible > 0 {
                eprintln!(
                    "skipped {} (scenario, policy) cells whose network dimensions do not fit the plant",
                    stats.cells_skipped_incompatible,
                );
            }
            if let Some(path) = &scale.metrics_out {
                eprint!("{}", snapshot.render_table());
                if let Err(e) = std::fs::write(path, snapshot.to_json()) {
                    eprintln!("failed to write metrics: {e}");
                    std::process::exit(1);
                }
                eprintln!("metrics written to {path}");
            }
            if let Some(path) = &scale.trace_out {
                let spans = oic_obs::drain_trace();
                let dropped = oic_obs::dropped_spans();
                if dropped > 0 {
                    eprintln!("trace ring overflowed: {dropped} oldest spans dropped");
                }
                if let Err(e) = std::fs::write(path, oic_obs::chrome_trace_json(&spans)) {
                    eprintln!("failed to write trace: {e}");
                    std::process::exit(1);
                }
                eprintln!("trace written to {path} ({} spans)", spans.len());
            }
            if let Err(e) = scale.save_json(&report.to_json(!scale.stream)) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("batch failed: {e}");
            std::process::exit(1);
        }
    }
}
