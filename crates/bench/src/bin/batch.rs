//! The engine-backed scenario sweep: every registered scenario × the
//! standard policy roster, chunked through the work-stealing pool, with
//! seed-stable JSON output.
//!
//! Usage: `cargo run --release -p oic-bench --bin batch -- [--cases N]
//! [--steps N] [--seed N] [--threads N] [--chunk N] [--stream|--detail]
//! [--policies drl:<path>[,drl:<path>…]] [--out report.json]`
//!
//! The roster is the five analytic policies plus the committed golden
//! learned policies (`drl-acc`, `drl-double-integrator`); `--policies
//! drl:<path>` appends additional weight blobs from disk.
//!
//! The wall-clock/scheduler summary goes to stderr only — the JSON
//! report is deterministic byte-for-byte and must stay that way (CI
//! diffs it against the committed `BENCH_batch.json` baseline).

use std::time::Instant;

use oic_bench::experiments::{batch, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::from_args(std::env::args().skip(1));
    // The paper-scale default of 500 training episodes is a DRL knob; the
    // sweep is policy-only, so only cases/steps/seed/engine knobs apply.
    scale.train_episodes = 0;
    eprintln!(
        "batch: full registry x standard policies, {} episodes x {} steps (seed {}, threads {}, chunk {}, {})",
        scale.cases,
        scale.steps,
        scale.seed,
        if scale.threads == 0 { "auto".to_string() } else { scale.threads.to_string() },
        if scale.chunk == 0 { "auto".to_string() } else { scale.chunk.to_string() },
        if scale.stream { "streaming" } else { "detail" },
    );
    let started = Instant::now();
    match batch::run_with_stats(&scale) {
        Ok((report, stats)) => {
            let elapsed = started.elapsed();
            print!("{}", batch::render(&report));
            let episodes: usize = report.cells.iter().map(|c| c.episodes).sum();
            eprintln!(
                "wall-clock: {:.3}s for {} episodes in {} cells ({:.0} episodes/s; {} tasks on {} workers, {} steals)",
                elapsed.as_secs_f64(),
                episodes,
                report.cells.len(),
                episodes as f64 / elapsed.as_secs_f64().max(1e-9),
                stats.executed,
                stats.workers,
                stats.steals,
            );
            if let Err(e) = scale.save_json(&report.to_json(!scale.stream)) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("batch failed: {e}");
            std::process::exit(1);
        }
    }
}
