//! The engine-backed scenario sweep: every registered scenario × the
//! standard policy roster, in parallel, with seed-stable JSON output.
//!
//! Usage: `cargo run --release -p oic-bench --bin batch -- [--cases N]
//! [--steps N] [--seed N] [--out report.json]`

use oic_bench::experiments::{batch, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::from_args(std::env::args().skip(1));
    // The paper-scale default of 500 training episodes is a DRL knob; the
    // sweep is policy-only, so only cases/steps/seed apply.
    scale.train_episodes = 0;
    eprintln!(
        "batch: full registry x standard policies, {} episodes x {} steps (seed {})",
        scale.cases, scale.steps, scale.seed
    );
    match batch::run(&scale) {
        Ok(report) => {
            print!("{}", batch::render(&report));
            if let Err(e) = scale.save_json(&report.to_json(false)) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("batch failed: {e}");
            std::process::exit(1);
        }
    }
}
