//! Kernel timing snapshot: measures the LP/MPC hot-path kernels and the
//! engine's episode-loop throughput, and writes `BENCH_kernels.json`
//! alongside the batch baseline.
//!
//! Usage: `cargo run --release -p oic-bench --bin kernels -- [--out FILE]
//! [--samples N] [--engine-only]`
//!
//! Unlike `BENCH_batch.json` (bit-exact, CI-diffed) these numbers are
//! wall-clock and machine-dependent: the committed file is a recorded
//! perf *trajectory* for the ROADMAP, not a byte-compared baseline. The
//! ratios (`speedup_*`) are the stable, machine-portable part — the
//! templated warm-started MPC step is required to stay ≥ 2× faster than
//! the seed's rebuild-every-step path, and the lockstep episode kernel
//! is required to beat the scalar reference loop.
//!
//! Schema 4: `engine_sweep` counts **executed** episodes only —
//! cache-hit cells (zero recorded wall time; their episodes never ran)
//! and failed cells are excluded from the throughput quotient — and a
//! second sweep under the scalar reference kernel records
//! `engine_sweep_scalar` plus two ratios:
//!
//! * `speedup_lockstep` — whole-sweep wall-clock ratio. This is
//!   Amdahl-limited: the tube-MPC cells (`acc`, `lane-keeping`) spend
//!   ~85% of their CPU inside the simplex engine, whose pivot sequence
//!   is pinned by the byte-identity contract (`BENCH_batch.json` is
//!   CI-diffed), so the episode kernel cannot legally touch it.
//! * `speedup_lockstep_median_cell` — median per-cell CPU-time ratio,
//!   the honest summary of what the kernel buys on the cells it
//!   targets (analytic-controller and DRL cells).
//!
//! `--engine-only` skips the LP/MPC/geometry sections (for CI's
//! throughput floor check).

use std::time::Instant;

use oic_bench::experiments::{batch, ExperimentScale};
use oic_bench::fixtures::{acc_closed_loop_states, drifting_rhs_sequence, tall_lp};
use oic_control::{robust_controllable_pre, MpcWarmState};
use oic_core::acc::AccCaseStudy;
use oic_engine::{executed_throughput, JsonValue, KernelChoice};
use oic_lp::{Backend, WarmStart};
use oic_scenarios::ScenarioRegistry;

/// Median wall-clock nanoseconds of `f` over `samples` runs (2 warm-ups).
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..2 {
        f();
    }
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// One instrumented registry sweep under the given episode kernel:
/// `(sweep json, executed episodes per wall-clock second)`. Throughput
/// counts executed episodes only — cache hits and failed cells are
/// excluded from numerator and denominator alike.
fn engine_sweep(kernel: KernelChoice, by_cell: bool) -> (JsonValue, f64) {
    let scale = ExperimentScale {
        cases: 16,
        steps: 50,
        train_episodes: 0,
        seed: 42,
        kernel,
        ..Default::default()
    };
    let started = Instant::now();
    let (report, stats) = batch::run_with_stats(&scale).expect("registry sweep runs clean");
    let wall_s = started.elapsed().as_secs_f64().max(1e-9);
    let executed = executed_throughput(&report, &stats);
    let episodes_total: usize = report.cells.iter().map(|c| c.episodes).sum();
    let eps = executed.episodes as f64 / wall_s;
    let mut json = JsonValue::object()
        .with("episodes_total", episodes_total)
        .with("episodes_executed", executed.episodes)
        .with("cells", report.cells.len())
        .with("cells_from_cache", executed.cells_from_cache)
        .with("cells_failed", executed.cells_failed)
        .with("wall_s", wall_s)
        .with("episodes_per_sec", eps);
    if by_cell {
        // Per-cell rates from the engine's summed chunk times (CPU-,
        // not wall-clock-seconds), executed cells only.
        let mut cell_rates = JsonValue::object();
        for (cell, timing) in report.cells.iter().zip(&stats.cell_timings) {
            if cell.is_failed() || timing.wall_ns == 0 {
                continue;
            }
            let secs = (timing.wall_ns as f64 / 1e9).max(1e-9);
            cell_rates = cell_rates.with(
                &format!("{}/{}", timing.scenario, timing.policy),
                timing.episodes as f64 / secs,
            );
        }
        json = json.with("episodes_per_cpu_sec_by_cell", cell_rates);
    }
    (json, eps)
}

fn main() {
    let mut out = "BENCH_kernels.json".to_string();
    let mut samples = 30usize;
    let mut engine_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(v) = args.next() {
                    out = v;
                }
            }
            "--samples" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    samples = v;
                }
            }
            "--engine-only" => engine_only = true,
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    // --- Engine sweep throughput: instrumented batch runs over the
    // full registry, lockstep kernel vs the scalar reference loop. ---
    eprintln!("kernels: instrumented engine sweep (full registry, lockstep kernel)…");
    let (sweep_lockstep, eps_lockstep) = engine_sweep(KernelChoice::Lockstep, true);
    eprintln!("kernels: instrumented engine sweep (full registry, scalar kernel)…");
    let (sweep_scalar, eps_scalar) = engine_sweep(KernelChoice::Scalar, true);
    let speedup_lockstep = eps_lockstep / eps_scalar.max(1e-9);
    // Per-cell speedup distribution: wall throughput is Amdahl-limited by
    // the LP-bound tube-MPC cells (simplex pivot order is pinned by the
    // byte-identity gate, so the kernel cannot touch it); the median cell
    // is the honest summary of what the lockstep kernel buys.
    let cell_speedup = |lock: &JsonValue, scal: &JsonValue| -> Vec<(String, f64)> {
        let (Some(JsonValue::Object(l_cells)), Some(s)) = (
            lock.get("episodes_per_cpu_sec_by_cell"),
            scal.get("episodes_per_cpu_sec_by_cell"),
        ) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (cell, rate) in l_cells {
            if let (Some(lr), Some(sr)) = (rate.as_f64(), s.get(cell).and_then(JsonValue::as_f64)) {
                if sr > 0.0 {
                    out.push((cell.clone(), lr / sr));
                }
            }
        }
        out
    };
    let mut ratios = cell_speedup(&sweep_lockstep, &sweep_scalar);
    ratios.sort_by(|a, b| a.1.total_cmp(&b.1));
    let median_cell_speedup = ratios.get(ratios.len() / 2).map_or(1.0, |(_, r)| *r);
    eprintln!(
        "engine sweep: lockstep {eps_lockstep:.1} eps/s, scalar {eps_scalar:.1} eps/s \
         ({speedup_lockstep:.2}x wall, {median_cell_speedup:.2}x median cell)"
    );

    if engine_only {
        let doc = JsonValue::object()
            .with("schema", 4.0)
            .with("engine_sweep", sweep_lockstep)
            .with("engine_sweep_scalar", sweep_scalar)
            .with("speedup_lockstep", speedup_lockstep)
            .with("speedup_lockstep_median_cell", median_cell_speedup);
        println!("{}", doc.to_json_pretty());
        if let Err(e) = std::fs::write(&out, doc.to_json_pretty()) {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("snapshot written to {out}");
        return;
    }

    eprintln!("kernels: building ACC case study (tube MPC, horizon 10)…");
    let case = AccCaseStudy::build_default().expect("case study builds");
    let mpc = case.mpc();
    // A real closed-loop rollout under adversarial disturbances — the
    // resolve pattern every MPC-heavy engine episode produces (shared
    // fixture with the criterion benches).
    let states = acc_closed_loop_states(mpc, 20);

    // --- Tube-MPC step: rebuild vs templated vs templated + warm. ---
    let step_rebuild = median_ns(samples, || {
        for x in &states {
            mpc.solve_rebuild_reference(x).expect("feasible");
        }
    }) / states.len() as u64;
    let step_templated = median_ns(samples, || {
        for x in &states {
            mpc.solve(x).expect("feasible");
        }
    }) / states.len() as u64;
    let step_warm = median_ns(samples, || {
        let mut warm = MpcWarmState::new();
        for x in &states {
            mpc.solve_warm(x, &mut warm).expect("feasible");
        }
    }) / states.len() as u64;

    // --- LP resolve sequence: warm vs cold on an MPC-shaped program. ---
    let lp = tall_lp(20, 80, Backend::Revised);
    let seq = drifting_rhs_sequence(&lp, 16);
    let resolve_cold = median_ns(samples, || {
        for rhs in &seq {
            lp.solve_with_rhs(rhs).expect("feasible");
        }
    }) / seq.len() as u64;
    let resolve_warm = median_ns(samples, || {
        let mut warm = WarmStart::new();
        for rhs in &seq {
            lp.solve_warm_with_rhs(rhs, &mut warm).expect("feasible");
        }
    }) / seq.len() as u64;

    // --- Backend sweep: cold tableau vs cold revised across shapes. ---
    let mut sweep = JsonValue::object();
    for (vars, rows, label) in [
        (5usize, 10usize, "small_5x10"),
        (20, 40, "square_20x40"),
        (20, 160, "tall_20x160"),
    ] {
        let tableau = tall_lp(vars, rows, Backend::Tableau);
        let revised = tall_lp(vars, rows, Backend::Revised);
        let t_ns = median_ns(samples, || {
            tableau.solve().expect("feasible");
        });
        let r_ns = median_ns(samples, || {
            revised.solve().expect("feasible");
        });
        sweep = sweep.with(
            label,
            JsonValue::object()
                .with("tableau_ns", t_ns as f64)
                .with("revised_ns", r_ns as f64),
        );
    }

    // --- n-D certification kernels: Fourier–Motzkin projection and
    // Raković RPI tube synthesis on the registry's 2-, 3-, and 4-state
    // plants (the dimension-generic pipeline's two hot paths). ---
    let registry = ScenarioRegistry::standard();
    let mut nd = JsonValue::object();
    for (name, label) in [
        ("acc", "dim2_acc"),
        ("cstr", "dim3_cstr"),
        ("two-mass-spring", "dim4_two_mass"),
    ] {
        let scenario = registry.get(name).expect("registered scenario");
        eprintln!("kernels: n-D geometry on {name}…");
        // Projection: one robust controllable predecessor of the safe set
        // (n + m → n Fourier–Motzkin elimination with LP pruning).
        let instance = scenario.build().expect("scenario builds");
        let plant = instance.sets().plant().clone();
        let safe = plant.safe_set().clone();
        let projection_ns = median_ns(samples.min(10), || {
            robust_controllable_pre(&plant, &safe).expect("pre-set exists");
        });
        // RPI synthesis: the certified tube (facet-ratio Raković sum plus
        // the support-template invariance closure), measured end to end.
        let gain_loop = instance
            .tube()
            .expect("registry scenarios attach tubes")
            .clone();
        let rpi_ns = median_ns(samples.min(10), || {
            let w = gain_loop.disturbance().clone();
            let a_cl = gain_loop.closed_loop().clone();
            oic_control::rakovic_rpi_certified(
                &a_cl,
                &w,
                &oic_control::InvariantOptions::default(),
            )
            .expect("tube synthesis succeeds");
        });
        nd = nd.with(
            label,
            JsonValue::object()
                .with("projection_ns", projection_ns as f64)
                .with("rpi_synthesis_ns", rpi_ns as f64)
                .with("tube_facets", gain_loop.set().num_halfspaces() as f64),
        );
    }

    let ratio = |slow: u64, fast: u64| slow as f64 / fast.max(1) as f64;
    let doc = JsonValue::object()
        .with("schema", 4.0)
        .with(
            "mpc_step",
            JsonValue::object()
                .with("rebuild_ns", step_rebuild as f64)
                .with("templated_ns", step_templated as f64)
                .with("templated_warm_ns", step_warm as f64)
                .with("speedup_templated", ratio(step_rebuild, step_templated))
                .with("speedup_warm", ratio(step_rebuild, step_warm)),
        )
        .with(
            "lp_resolve",
            JsonValue::object()
                .with("cold_ns", resolve_cold as f64)
                .with("warm_ns", resolve_warm as f64)
                .with("speedup_warm", ratio(resolve_cold, resolve_warm)),
        )
        .with("backend_sweep", sweep)
        .with("nd_geometry", nd)
        .with("engine_sweep", sweep_lockstep)
        .with("engine_sweep_scalar", sweep_scalar)
        .with("speedup_lockstep", speedup_lockstep)
        .with("speedup_lockstep_median_cell", median_cell_speedup);

    println!("{}", doc.to_json_pretty());
    eprintln!(
        "mpc step: rebuild {step_rebuild} ns, templated {step_templated} ns, warm {step_warm} ns \
         (warm speedup {:.2}x)",
        ratio(step_rebuild, step_warm)
    );
    if let Err(e) = std::fs::write(&out, doc.to_json_pretty()) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("snapshot written to {out}");
}
