//! Ablations over the design choices DESIGN.md calls out (tightening
//! recursion, skip-input semantics, MPC horizon).
//!
//! Usage: `cargo run --release -p oic-bench --bin ablation -- [--cases N]
//! [--steps N] [--seed N]`

use oic_bench::experiments::{ablation, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    match ablation::run(&scale) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
