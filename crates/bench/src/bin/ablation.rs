//! Ablations over the design choices DESIGN.md calls out (tightening
//! recursion, skip-input semantics, MPC horizon).
//!
//! Usage: `cargo run --release -p oic-bench --bin ablation -- [--cases N]
//! [--steps N] [--seed N] [--out report.json]`

use oic_bench::experiments::{ablation, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    match ablation::run(&scale) {
        Ok(out) => {
            print!("{out}");
            let json = scale.json_header("ablation").with("text", out.as_str());
            if let Err(e) = scale.save_json(&json) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
