//! Regenerates the paper's Table I and Fig. 5 (savings vs `v_f` range).
//!
//! Usage: `cargo run --release -p oic-bench --bin fig5 -- [--cases N]
//! [--steps N] [--train N] [--seed N] [--out report.json]`

use oic_bench::experiments::{fig5, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!(
        "fig5: 5 experiments x {} cases x {} steps, {} training episodes (seed {})",
        scale.cases, scale.steps, scale.train_episodes, scale.seed
    );
    match fig5::run(&scale) {
        Ok(report) => {
            print!("{}", fig5::render(&report));
            if let Err(e) = scale.save_json(&fig5::to_json(&report, &scale)) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fig5 failed: {e}");
            std::process::exit(1);
        }
    }
}
