//! Regenerates the paper's Fig. 6 (savings vs `v_f` regularity).
//!
//! Usage: `cargo run --release -p oic-bench --bin fig6 -- [--cases N]
//! [--steps N] [--train N] [--seed N] [--out report.json]`

use oic_bench::experiments::{fig6, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!(
        "fig6: 5 experiments x {} cases x {} steps, {} training episodes (seed {})",
        scale.cases, scale.steps, scale.train_episodes, scale.seed
    );
    match fig6::run(&scale) {
        Ok(report) => {
            print!("{}", fig6::render(&report));
            if let Err(e) = scale.save_json(&fig6::to_json(&report, &scale)) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
