//! Regenerates the paper's Fig. 4 (fuel-saving histogram over 500 cases).
//!
//! Usage: `cargo run --release -p oic-bench --bin fig4 -- [--cases N]
//! [--steps N] [--train N] [--seed N] [--out report.json]`

use oic_bench::experiments::{fig4, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!(
        "fig4: {} cases x {} steps, {} training episodes (seed {})",
        scale.cases, scale.steps, scale.train_episodes, scale.seed
    );
    match fig4::run(&scale) {
        Ok(report) => {
            print!("{}", fig4::render(&report));
            if let Err(e) = scale.save_json(&fig4::to_json(&report, &scale)) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
