//! Regenerates the paper's §IV-A computation-saving analysis.
//!
//! Usage: `cargo run --release -p oic-bench --bin timing -- [--cases N]
//! [--steps N] [--seed N] [--out report.json]`

use oic_bench::experiments::{timing, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("timing: seed {}", scale.seed);
    match timing::run(&scale) {
        Ok(report) => {
            print!("{}", timing::render(&report));
            if let Err(e) = scale.save_json(&timing::to_json(&report, &scale)) {
                eprintln!("failed to write report: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("timing failed: {e}");
            std::process::exit(1);
        }
    }
}
