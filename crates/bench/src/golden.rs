//! Committed **golden** learned-policy fixtures.
//!
//! The blobs under `crates/bench/fixtures/` are trained once by
//! `cargo run --release -p oic-bench --bin train` (pinned seeds, see
//! [`crate::experiments::train::TrainSpec::golden`]) and committed; the
//! sweeps and CI only ever do inference on them, which is bit-stable on
//! any host. They are compiled in via `include_bytes!`, so a fixture
//! change rebuilds every consumer and invalidates the benchmark-baseline
//! jobs.

use oic_engine::PolicySpec;
use oic_scenarios::ScenarioRegistry;

/// The golden ACC skipping network (trained on the tube-MPC ACC study).
pub const ACC_DQN: &[u8] = include_bytes!("../fixtures/acc_dqn.bin");

/// The golden double-integrator skipping network.
pub const DOUBLE_INTEGRATOR_DQN: &[u8] = include_bytes!("../fixtures/double_integrator_dqn.bin");

/// The fixture trained for a scenario, if one is committed.
pub fn fixture_for(scenario: &str) -> Option<&'static [u8]> {
    match scenario {
        "acc" => Some(ACC_DQN),
        "double-integrator" => Some(DOUBLE_INTEGRATOR_DQN),
        _ => None,
    }
}

/// All committed `(scenario, blob)` fixtures, registry order.
pub const FIXTURES: [(&str, &[u8]); 2] = [
    ("acc", ACC_DQN),
    ("double-integrator", DOUBLE_INTEGRATOR_DQN),
];

/// The standard registry with every golden blob attached to the
/// scenario it was trained for.
pub fn registry_with_golden() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::standard();
    for (name, blob) in FIXTURES {
        registry.attach_policy_weights(name, blob);
    }
    registry
}

/// One [`PolicySpec::Drl`] per blob attached to `registry`, named after
/// the scenario the network was trained for (labels `drl-acc`, …), in
/// the registry's deterministic entry order.
pub fn drl_policies(registry: &ScenarioRegistry) -> Vec<PolicySpec> {
    registry
        .policy_weight_entries()
        .map(|(name, blob)| PolicySpec::Drl {
            name: name.to_string(),
            weights: blob.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_decode_for_their_scenarios() {
        for (name, blob) in FIXTURES {
            assert!(blob.len() < 64 * 1024, "{name}: fixtures stay small");
            crate::experiments::train::check_blob(name, blob).unwrap();
            assert_eq!(fixture_for(name), Some(blob));
        }
        assert!(fixture_for("cstr").is_none());
    }

    #[test]
    fn golden_registry_exposes_both_blobs() {
        let registry = registry_with_golden();
        let specs = drl_policies(&registry);
        let labels: Vec<String> = specs.iter().map(PolicySpec::label).collect();
        assert_eq!(labels, ["drl-acc", "drl-double-integrator"]);
        for spec in &specs {
            spec.validate().unwrap();
        }
    }
}
