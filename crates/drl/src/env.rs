//! The environment abstraction and a generic training loop.

use crate::{DoubleDqnAgent, Transition};

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Successor observation.
    pub next_state: Vec<f64>,
    /// Immediate reward.
    pub reward: f64,
    /// Whether the episode ended.
    pub done: bool,
}

/// A discrete-action reinforcement-learning environment.
///
/// The intermittent-control training environment in `oic-core` implements
/// this trait; so do the toy MDPs in the tests.
pub trait Environment {
    /// Dimension of the observation vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions.
    fn num_actions(&self) -> usize;

    /// Starts a new episode, returning the initial observation.
    fn reset(&mut self) -> Vec<f64>;

    /// Applies `action`, returning the transition outcome.
    fn step(&mut self, action: usize) -> StepOutcome;
}

/// Per-episode training statistics returned by [`train`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingStats {
    /// Undiscounted return of each episode.
    pub episode_returns: Vec<f64>,
    /// Mean training loss of each episode (0 when no training happened).
    pub episode_losses: Vec<f64>,
}

impl TrainingStats {
    /// Mean return over the last `n` episodes (or all, if fewer).
    pub fn recent_mean_return(&self, n: usize) -> f64 {
        let tail = &self.episode_returns[self.episode_returns.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Trains `agent` on `env` for `episodes` episodes of at most `max_steps`
/// steps, doing one gradient step per environment step.
///
/// # Panics
///
/// Panics if the environment's dimensions disagree with the agent's
/// configuration.
pub fn train(
    agent: &mut DoubleDqnAgent,
    env: &mut dyn Environment,
    episodes: usize,
    max_steps: usize,
) -> TrainingStats {
    assert_eq!(
        env.state_dim(),
        agent.config().state_dim,
        "state dimension mismatch"
    );
    assert_eq!(
        env.num_actions(),
        agent.config().num_actions,
        "action count mismatch"
    );
    let mut stats = TrainingStats::default();
    for _ in 0..episodes {
        let mut state = env.reset();
        let mut ep_return = 0.0;
        let mut ep_loss = 0.0;
        let mut loss_count = 0usize;
        for step in 0..max_steps {
            let action = agent.act(&state);
            let outcome = env.step(action);
            ep_return += outcome.reward;
            let done = outcome.done || step + 1 == max_steps;
            agent.remember(Transition {
                state: state.clone(),
                action,
                reward: outcome.reward,
                next_state: outcome.next_state.clone(),
                done: outcome.done,
            });
            if let Some(l) = agent.train_step() {
                ep_loss += l;
                loss_count += 1;
            }
            state = outcome.next_state;
            if done {
                break;
            }
        }
        stats.episode_returns.push(ep_return);
        stats.episode_losses.push(if loss_count > 0 {
            ep_loss / loss_count as f64
        } else {
            0.0
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DqnConfig;

    /// A 1-D corridor: start at 0, goal at +3; action 1 moves right (+1),
    /// action 0 moves left (−1, floored at 0). Reward 1 at the goal, else
    /// −0.01. Optimal policy: always right.
    struct Corridor {
        pos: i32,
    }

    impl Environment for Corridor {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            self.pos = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            self.pos = if action == 1 {
                self.pos + 1
            } else {
                (self.pos - 1).max(0)
            };
            let done = self.pos >= 3;
            StepOutcome {
                next_state: vec![self.pos as f64 / 3.0],
                reward: if done { 1.0 } else { -0.01 },
                done,
            }
        }
    }

    #[test]
    fn trains_corridor_to_optimal_policy() {
        let mut agent = DoubleDqnAgent::new(DqnConfig {
            state_dim: 1,
            num_actions: 2,
            hidden: vec![24],
            gamma: 0.9,
            learning_rate: 3e-3,
            epsilon_decay: 0.995,
            buffer_capacity: 2048,
            batch_size: 32,
            target_sync_every: 100,
            learn_start: 64,
            seed: 11,
            ..DqnConfig::default()
        });
        let mut env = Corridor { pos: 0 };
        let stats = train(&mut agent, &mut env, 300, 30);
        // Optimal return: 2 steps at −0.01 plus 1.0 = 0.98.
        let late = stats.recent_mean_return(50);
        assert!(late > 0.9, "late mean return {late}");
        // Greedy rollout reaches the goal in 3 steps.
        let mut s = env.reset();
        for _ in 0..3 {
            let a = agent.act_greedy(&s);
            assert_eq!(a, 1, "greedy policy should always move right");
            s = env.step(a).next_state;
        }
    }

    #[test]
    fn stats_track_episodes() {
        let mut agent = DoubleDqnAgent::new(DqnConfig {
            state_dim: 1,
            num_actions: 2,
            hidden: vec![8],
            learn_start: 8,
            batch_size: 8,
            seed: 0,
            ..DqnConfig::default()
        });
        let mut env = Corridor { pos: 0 };
        let stats = train(&mut agent, &mut env, 5, 10);
        assert_eq!(stats.episode_returns.len(), 5);
        assert_eq!(stats.episode_losses.len(), 5);
    }
}
