//! Double deep Q-learning (paper reference \[24\], van Hasselt et al.).
//!
//! The paper's skipping decision function `Ω` is a DQN with two actions
//! (skip / run the controller) trained online. This crate provides the
//! generic pieces: a ring [`ReplayBuffer`], an ε-greedy
//! [`DoubleDqnAgent`] with online/target networks and the double-DQN
//! target `r + γ·Q_target(s′, argmax_a Q_online(s′, a))`, a generic
//! [`Environment`] trait, and a [`train`] loop.
//!
//! # Examples
//!
//! ```
//! use oic_drl::{DoubleDqnAgent, DqnConfig};
//!
//! let mut agent = DoubleDqnAgent::new(DqnConfig {
//!     state_dim: 2,
//!     num_actions: 2,
//!     seed: 7,
//!     ..DqnConfig::default()
//! });
//! let q = agent.q_values(&[0.0, 1.0]);
//! assert_eq!(q.len(), 2);
//! let a = agent.act(&[0.0, 1.0]);
//! assert!(a < 2);
//! ```

mod agent;
mod buffer;
mod env;

pub use agent::{DoubleDqnAgent, DqnConfig};
pub use buffer::{ReplayBuffer, Transition};
pub use env::{train, Environment, StepOutcome, TrainingStats};
