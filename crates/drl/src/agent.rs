//! The double deep Q-learning agent.

use oic_nn::{huber_loss, Activation, Adam, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ReplayBuffer, Transition};

/// Hyper-parameters of [`DoubleDqnAgent`].
///
/// The defaults follow the paper's setup (double DQN over a small MLP) with
/// standard values for the knobs the paper does not report.
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// Input dimension of the Q-network (`x` plus disturbance history).
    pub state_dim: usize,
    /// Number of discrete actions (2 for skip / run).
    pub num_actions: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initial exploration rate.
    pub epsilon_start: f64,
    /// Final exploration rate.
    pub epsilon_end: f64,
    /// Multiplicative ε decay applied per [`DoubleDqnAgent::act`] call.
    pub epsilon_decay: f64,
    /// Replay buffer capacity.
    pub buffer_capacity: usize,
    /// Mini-batch size per training step.
    pub batch_size: usize,
    /// Copy online → target every this many training steps.
    pub target_sync_every: usize,
    /// Do not train until the buffer holds at least this many transitions.
    pub learn_start: usize,
    /// RNG seed (exploration, initialization, replay sampling).
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            state_dim: 3,
            num_actions: 2,
            hidden: vec![64, 64],
            gamma: 0.95,
            learning_rate: 1e-3,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.999,
            buffer_capacity: 20_000,
            batch_size: 64,
            target_sync_every: 200,
            learn_start: 256,
            seed: 0,
        }
    }
}

/// Double deep Q-learning agent (van Hasselt et al., paper reference \[24\]).
///
/// The online network selects the bootstrap action, the target network
/// evaluates it: `y = r + γ·Q_tgt(s′, argmax_a Q_on(s′, a))`. This decouples
/// selection from evaluation and removes the max-operator overestimation of
/// vanilla DQN.
///
/// # Examples
///
/// ```
/// use oic_drl::{DoubleDqnAgent, DqnConfig, Transition};
///
/// let mut agent = DoubleDqnAgent::new(DqnConfig {
///     state_dim: 1,
///     num_actions: 2,
///     learn_start: 1,
///     batch_size: 4,
///     ..DqnConfig::default()
/// });
/// agent.remember(Transition {
///     state: vec![0.0],
///     action: 1,
///     reward: 1.0,
///     next_state: vec![0.0],
///     done: false,
/// });
/// let loss = agent.train_step();
/// assert!(loss.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct DoubleDqnAgent {
    online: Mlp,
    target: Mlp,
    optimizer: Adam,
    buffer: ReplayBuffer,
    config: DqnConfig,
    epsilon: f64,
    train_steps: usize,
    rng: StdRng,
}

impl DoubleDqnAgent {
    /// Creates an agent with freshly initialized online and target networks
    /// (target = copy of online).
    ///
    /// # Panics
    ///
    /// Panics if `state_dim`, `num_actions`, `batch_size` or
    /// `buffer_capacity` is zero.
    pub fn new(config: DqnConfig) -> Self {
        assert!(config.state_dim > 0, "state_dim must be positive");
        assert!(config.num_actions > 0, "num_actions must be positive");
        assert!(config.batch_size > 0, "batch_size must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sizes = vec![config.state_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(config.num_actions);
        let online = Mlp::new(&sizes, Activation::Relu, &mut rng);
        let target = online.clone();
        let optimizer = Adam::new(config.learning_rate);
        let buffer = ReplayBuffer::new(config.buffer_capacity);
        let epsilon = config.epsilon_start;
        Self {
            online,
            target,
            optimizer,
            buffer,
            config,
            epsilon,
            train_steps: 0,
            rng,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Current exploration rate ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of gradient steps taken so far.
    pub fn train_steps(&self) -> usize {
        self.train_steps
    }

    /// Number of transitions currently stored.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Q-values of the online network at `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from `state_dim`.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.online.forward(state)
    }

    /// ε-greedy action selection; decays ε by `epsilon_decay` per call (down
    /// to `epsilon_end`).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from `state_dim`.
    pub fn act(&mut self, state: &[f64]) -> usize {
        let explore = self.rng.gen_range(0.0..1.0) < self.epsilon;
        self.epsilon = (self.epsilon * self.config.epsilon_decay).max(self.config.epsilon_end);
        if explore {
            self.rng.gen_range(0..self.config.num_actions)
        } else {
            self.act_greedy(state)
        }
    }

    /// Greedy action (no exploration) — used at evaluation time.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from `state_dim`.
    pub fn act_greedy(&self, state: &[f64]) -> usize {
        argmax(&self.q_values(state))
    }

    /// Stores a transition in the replay buffer.
    pub fn remember(&mut self, transition: Transition) {
        assert_eq!(
            transition.state.len(),
            self.config.state_dim,
            "state dimension mismatch"
        );
        assert!(
            transition.action < self.config.num_actions,
            "action index out of range"
        );
        self.buffer.push(transition);
    }

    /// One mini-batch gradient step with the double-DQN target.
    ///
    /// Returns `None` (and does nothing) while the buffer holds fewer than
    /// `learn_start` transitions; otherwise returns the batch Huber loss.
    pub fn train_step(&mut self) -> Option<f64> {
        if self.buffer.len() < self.config.learn_start.max(1) {
            return None;
        }
        let batch: Vec<Transition> = self
            .buffer
            .sample(&mut self.rng, self.config.batch_size)
            .into_iter()
            .cloned()
            .collect();

        let mut grads = self.online.zero_gradients();
        let mut total_loss = 0.0;
        for t in &batch {
            // Double-DQN target.
            let target_q = if t.done {
                t.reward
            } else {
                let best = argmax(&self.online.forward(&t.next_state));
                t.reward + self.config.gamma * self.target.forward(&t.next_state)[best]
            };
            let cache = self.online.forward_cached(&t.state);
            let q = cache.output().to_vec();
            // Only the taken action's output receives a loss gradient.
            let (loss, grad_taken) = huber_loss(&[q[t.action]], &[target_q], 1.0);
            total_loss += loss;
            let mut dl = vec![0.0; q.len()];
            dl[t.action] = grad_taken[0];
            self.online.backward(&cache, &dl, &mut grads);
        }
        grads.scale(1.0 / batch.len() as f64);
        grads.clip_norm(10.0);
        self.optimizer.step(&mut self.online, &grads);

        self.train_steps += 1;
        if self
            .train_steps
            .is_multiple_of(self.config.target_sync_every)
        {
            self.target.copy_params_from(&self.online);
        }
        Some(total_loss / batch.len() as f64)
    }

    /// Forces a target-network sync (e.g. at the end of training).
    pub fn sync_target(&mut self) {
        self.target.copy_params_from(&self.online);
    }

    /// Serializes the online network's weights (sufficient to restore the
    /// greedy policy; training state is not persisted).
    pub fn save_weights(&self) -> Vec<u8> {
        self.online.to_bytes().to_vec()
    }

    /// Restores the online (and target) network from
    /// [`save_weights`](Self::save_weights) output.
    ///
    /// # Errors
    ///
    /// Returns the decode error message when the blob is malformed or the
    /// architecture does not match this agent's configuration.
    pub fn load_weights(&mut self, blob: &[u8]) -> Result<(), String> {
        let net = Mlp::from_bytes(blob).map_err(|e| e.to_string())?;
        if net.input_dim() != self.config.state_dim || net.output_dim() != self.config.num_actions {
            return Err(format!(
                "architecture mismatch: blob is {}->{}, agent expects {}->{}",
                net.input_dim(),
                net.output_dim(),
                self.config.state_dim,
                self.config.num_actions
            ));
        }
        self.online = net;
        self.target.copy_params_from(&self.online);
        Ok(())
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bandit_config() -> DqnConfig {
        DqnConfig {
            state_dim: 1,
            num_actions: 2,
            hidden: vec![16],
            gamma: 0.0, // bandit: no bootstrapping
            learning_rate: 5e-3,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.99,
            buffer_capacity: 512,
            batch_size: 16,
            target_sync_every: 50,
            learn_start: 16,
            seed: 3,
        }
    }

    #[test]
    fn learns_a_two_armed_bandit() {
        // Action 1 pays 1, action 0 pays 0; γ = 0 so Q(a) → E[r|a].
        let mut agent = DoubleDqnAgent::new(bandit_config());
        for step in 0..600 {
            let a = agent.act(&[0.0]);
            let r = if a == 1 { 1.0 } else { 0.0 };
            agent.remember(Transition {
                state: vec![0.0],
                action: a,
                reward: r,
                next_state: vec![0.0],
                done: true,
            });
            let _ = agent.train_step();
            let _ = step;
        }
        let q = agent.q_values(&[0.0]);
        assert!(q[1] > q[0], "Q = {q:?}");
        assert!((q[1] - 1.0).abs() < 0.2, "Q(1) should approach 1: {q:?}");
        assert_eq!(agent.act_greedy(&[0.0]), 1);
    }

    #[test]
    fn learns_a_two_step_chain_with_bootstrapping() {
        // States 0 → 1 → terminal. Rewards: action 1 in state 0 pays 0 then
        // state 1 pays 2 for action 0. γ = 0.9 so Q₀(1) ≈ 1.8 > Q₀(0) = 0.5.
        let cfg = DqnConfig {
            gamma: 0.9,
            epsilon_decay: 0.995,
            learn_start: 32,
            seed: 5,
            ..bandit_config()
        };
        let mut agent = DoubleDqnAgent::new(cfg);
        for _ in 0..1500 {
            // state 0
            let a0 = agent.act(&[0.0]);
            if a0 == 0 {
                agent.remember(Transition {
                    state: vec![0.0],
                    action: 0,
                    reward: 0.5,
                    next_state: vec![0.0],
                    done: true,
                });
            } else {
                agent.remember(Transition {
                    state: vec![0.0],
                    action: 1,
                    reward: 0.0,
                    next_state: vec![1.0],
                    done: false,
                });
                // state 1: any action pays 2 and terminates.
                let a1 = agent.act(&[1.0]);
                agent.remember(Transition {
                    state: vec![1.0],
                    action: a1,
                    reward: 2.0,
                    next_state: vec![1.0],
                    done: true,
                });
            }
            let _ = agent.train_step();
        }
        let q0 = agent.q_values(&[0.0]);
        assert!(q0[1] > q0[0], "bootstrapped value should win: {q0:?}");
        assert!((q0[1] - 1.8).abs() < 0.4, "Q0(1) ≈ γ·2: {q0:?}");
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut agent = DoubleDqnAgent::new(bandit_config());
        for _ in 0..5000 {
            let _ = agent.act(&[0.0]);
        }
        assert!((agent.epsilon() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn no_training_before_learn_start() {
        let mut agent = DoubleDqnAgent::new(bandit_config());
        assert!(agent.train_step().is_none());
        for _ in 0..15 {
            agent.remember(Transition {
                state: vec![0.0],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0],
                done: true,
            });
        }
        assert!(agent.train_step().is_none(), "learn_start = 16 not reached");
    }

    #[test]
    fn save_load_roundtrip_preserves_policy() {
        let mut agent = DoubleDqnAgent::new(bandit_config());
        for _ in 0..100 {
            let a = agent.act(&[0.0]);
            agent.remember(Transition {
                state: vec![0.0],
                action: a,
                reward: a as f64,
                next_state: vec![0.0],
                done: true,
            });
            let _ = agent.train_step();
        }
        let blob = agent.save_weights();
        let mut fresh = DoubleDqnAgent::new(bandit_config());
        assert_ne!(fresh.q_values(&[0.0]), agent.q_values(&[0.0]));
        fresh.load_weights(&blob).unwrap();
        assert_eq!(fresh.q_values(&[0.0]), agent.q_values(&[0.0]));
        assert_eq!(fresh.act_greedy(&[0.0]), agent.act_greedy(&[0.0]));
    }

    #[test]
    fn load_rejects_architecture_mismatch() {
        let agent = DoubleDqnAgent::new(bandit_config());
        let blob = agent.save_weights();
        let mut other = DoubleDqnAgent::new(DqnConfig {
            state_dim: 3, // differs from the bandit's 1
            ..bandit_config()
        });
        let err = other.load_weights(&blob).unwrap_err();
        assert!(err.contains("architecture mismatch"), "{err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut agent = DoubleDqnAgent::new(bandit_config());
            for _ in 0..100 {
                let a = agent.act(&[0.0]);
                agent.remember(Transition {
                    state: vec![0.0],
                    action: a,
                    reward: a as f64,
                    next_state: vec![0.0],
                    done: true,
                });
                let _ = agent.train_step();
            }
            agent.q_values(&[0.0])
        };
        assert_eq!(run(), run());
    }
}
