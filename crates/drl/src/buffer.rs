//! Experience replay.

use rand::Rng;

/// One environment transition `(s, a, r, s′, done)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State the action was taken in.
    pub state: Vec<f64>,
    /// Index of the action taken.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// Successor state.
    pub next_state: Vec<f64>,
    /// Whether the episode terminated at `next_state` (no bootstrapping).
    pub done: bool,
}

/// Fixed-capacity ring buffer of transitions with uniform sampling.
///
/// # Examples
///
/// ```
/// use oic_drl::{ReplayBuffer, Transition};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: vec![i as f64],
///         action: 0,
///         reward: 0.0,
///         next_state: vec![0.0],
///         done: false,
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest evicted
/// let mut rng = StdRng::seed_from_u64(0);
/// assert_eq!(buf.sample(&mut rng, 2).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    data: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            data: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Samples `count` transitions uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R, count: usize) -> Vec<&'a Transition> {
        assert!(!self.data.is_empty(), "cannot sample from an empty buffer");
        (0..count)
            .map(|_| &self.data[rng.gen_range(0..self.data.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(i: usize) -> Transition {
        Transition {
            state: vec![i as f64],
            action: i % 2,
            reward: i as f64,
            next_state: vec![0.0],
            done: false,
        }
    }

    #[test]
    fn ring_eviction_order() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i));
        }
        assert_eq!(buf.len(), 3);
        // 0 and 1 evicted; 2, 3, 4 remain.
        let states: Vec<f64> = buf.data.iter().map(|t| t.state[0]).collect();
        assert!(states.contains(&2.0) && states.contains(&3.0) && states.contains(&4.0));
    }

    #[test]
    fn sampling_covers_buffer() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let sample = buf.sample(&mut rng, 256);
        let mut seen = [false; 8];
        for s in sample {
            seen[s.state[0] as usize] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "uniform sampling should hit all slots"
        );
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(&mut rng, 1);
    }
}
