//! User-facing linear-program builder with pluggable solve backends.

use std::sync::OnceLock;

use crate::revised::{solve_revised, solve_revised_warm, WarmCarry, WarmOutcome};
use crate::simplex::{solve_standard, StandardForm, StandardSolution};
use crate::LpError;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

/// Which simplex engine executes a solve.
///
/// | Backend | Cold [`solve`](LinearProgram::solve) | Warm [`solve_warm`](LinearProgram::solve_warm) |
/// |---|---|---|
/// | `Auto` (default) | dense tableau (bit-stable reference) | revised from the carried basis once the problem is tall enough (≥ 8 rows), tableau otherwise |
/// | `Tableau` | dense tableau | dense tableau every time (warm state ignored) |
/// | `Revised` | revised two-phase | revised from the carried basis |
///
/// The `OIC_LP_BACKEND` environment variable (`tableau` or `revised`,
/// read once per process) overrides every program's configured backend —
/// CI uses it to run the whole suite under each engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Per-shape selection: the dense tableau for one-shot solves (its
    /// pivot sequence is the deterministic reference all baselines are
    /// recorded against), the revised engine for warm-started sequences on
    /// MPC-shaped (tall) problems.
    #[default]
    Auto,
    /// Force the dense two-phase tableau everywhere.
    Tableau,
    /// Force the revised (factorized-basis) engine everywhere.
    Revised,
}

/// Minimum row count for `Backend::Auto` to route a warm solve to the
/// revised engine; below this the tableau's cache behavior wins.
const AUTO_WARM_MIN_ROWS: usize = 8;

/// The process-wide backend override from `OIC_LP_BACKEND`, if any.
///
/// Parsed once (first call) and cached: `"tableau"` and `"revised"` force
/// the respective engine for every [`LinearProgram`] in the process; any
/// other value (or an unset variable) leaves per-program selection alone.
pub fn forced_backend() -> Option<Backend> {
    static FORCED: OnceLock<Option<Backend>> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("OIC_LP_BACKEND").ok().as_deref() {
        Some("tableau") => Some(Backend::Tableau),
        Some("revised") => Some(Backend::Revised),
        _ => None,
    })
}

/// Basis state carried between [`LinearProgram::solve_warm`] calls.
///
/// A warm start is only reused when the problem shape (row and column
/// counts of the internal standard form) matches the shape it was recorded
/// for; anything else falls back to a cold solve transparently. The
/// counters expose how often the fast path actually ran.
///
/// # Examples
///
/// ```
/// use oic_lp::{Backend, LinearProgram, WarmStart};
///
/// # fn main() -> Result<(), oic_lp::LpError> {
/// let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
/// lp.set_backend(Backend::Revised);
/// for i in 0..10 {
///     lp.add_le(&[1.0, (i % 3) as f64 + 1.0], 4.0 + i as f64);
/// }
/// lp.set_lower_bound(0, 0.0);
/// lp.set_lower_bound(1, 0.0);
/// let mut warm = WarmStart::new();
/// let cold = lp.solve_warm(&mut warm)?; // cold: records the basis
/// let again = lp.solve_warm(&mut warm)?; // warm: zero-pivot resolve
/// assert!((cold.objective() - again.objective()).abs() < 1e-9);
/// if oic_lp::forced_backend() != Some(Backend::Tableau) {
///     assert!(warm.warm_hits() >= 1);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// The shape-stable standard form, compiled once per constraint-matrix
    /// fingerprint (rebuilding it per solve would cost as much as a cold
    /// tableau setup).
    compiled: Option<CompiledForm>,
    /// The carried basis and its live factorization.
    carry: WarmCarry,
    solves: u64,
    warm_hits: u64,
    fallbacks: u64,
    pivots: u64,
    last_fallback_reason: Option<&'static str>,
}

impl WarmStart {
    /// An empty warm start (the first solve through it runs cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the carried basis and compiled form; the next solve runs
    /// cold. Structural mutations (constraints, bounds) are detected
    /// automatically via the program's revision counter, so this is only
    /// needed to force a cold re-solve explicitly.
    pub fn invalidate(&mut self) {
        self.compiled = None;
        self.carry.clear();
    }

    /// Whether a basis is currently carried.
    pub fn has_basis(&self) -> bool {
        !self.carry.is_empty()
    }

    /// Total solves routed through this warm start.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Solves that reused the carried basis.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    /// Warm attempts that had to fall back to a cold solve (stale or
    /// unusable basis).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Total simplex pivots across all solves routed through this warm
    /// start (cold and warm) — the number a warm sequence is minimizing.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Why the most recent fallback happened (`"singular-basis"` or
    /// `"not-restorable"`), if any occurred.
    pub fn last_fallback_reason(&self) -> Option<&'static str> {
        self.last_fallback_reason
    }
}

#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

/// How each user variable maps to non-negative standard variables.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x_i = l + y_j`
    Shifted(usize, f64),
    /// `x_i = u − y_j`
    Mirrored(usize, f64),
    /// `x_i = y_jp − y_jm`
    Split(usize, usize),
}

/// A standardized problem plus everything needed to map solutions back.
struct Standardized {
    sf: StandardForm,
    hints: Vec<Option<usize>>,
    var_map: Vec<VarMap>,
    obj_constant: f64,
    /// Structural + slack column count (basis indices below this are
    /// warm-start reusable).
    total: usize,
}

/// The shape-stable (unflipped) standard form compiled once per
/// constraint-matrix fingerprint and cached inside a [`WarmStart`]: across
/// an RHS/objective-perturbed resolve sequence only the `b` and `c`
/// vectors are reassembled per solve — the row matrix is shared.
#[derive(Debug, Clone)]
struct CompiledForm {
    /// The structure revision of the program this form was compiled from;
    /// cost and RHS mutations deliberately do not advance it (they may
    /// change freely between warm solves).
    revision: u64,
    rows: Vec<Vec<f64>>,
    var_map: Vec<VarMap>,
    total: usize,
    /// Per user constraint: row orientation (−1 for `Ge` rows).
    sign: Vec<f64>,
    /// Per user constraint: substitution constant subtracted from the RHS.
    constant: Vec<f64>,
    /// RHS of the appended two-sided-bound range rows (fixed per shape).
    range_rhs: Vec<f64>,
}

impl CompiledForm {
    /// Assembles the standard-form RHS for the current (possibly
    /// overridden) user RHS values — the only per-solve work besides the
    /// cost vector.
    fn rhs_vector(&self, lp: &LinearProgram, rhs_override: Option<&[f64]>) -> Vec<f64> {
        let mut b = Vec::with_capacity(self.rows.len());
        for (i, c) in lp.constraints.iter().enumerate() {
            let user = rhs_override.map_or(c.rhs, |r| r[i]);
            let mut rhs = user - self.constant[i];
            if self.sign[i] < 0.0 {
                rhs = -rhs;
            }
            b.push(rhs);
        }
        b.extend_from_slice(&self.range_rhs);
        b
    }

    /// Substitutes the current costs into standard variables.
    fn cost_vector(&self, lp: &LinearProgram) -> (Vec<f64>, f64) {
        let mut c = vec![0.0; self.total];
        let mut constant = 0.0;
        for (i, &ci) in lp.costs.iter().enumerate() {
            if ci == 0.0 {
                continue;
            }
            match self.var_map[i] {
                VarMap::Shifted(j, l) => {
                    c[j] += ci;
                    constant += ci * l;
                }
                VarMap::Mirrored(j, u) => {
                    c[j] -= ci;
                    constant += ci * u;
                }
                VarMap::Split(jp, jm) => {
                    c[jp] += ci;
                    c[jm] -= ci;
                }
            }
        }
        (c, constant)
    }
}

/// A linear program over real variables.
///
/// Variables are **free** (unbounded) by default; use
/// [`set_lower_bound`](Self::set_lower_bound) /
/// [`set_upper_bound`](Self::set_upper_bound) to bound them. The builder is
/// non-consuming: configure, then call [`solve`](Self::solve) as many times
/// as needed (e.g. after adding constraints). Repeated solves that differ
/// only in right-hand sides or objective should go through
/// [`solve_warm`](Self::solve_warm) with a carried [`WarmStart`].
///
/// # Examples
///
/// ```
/// use oic_lp::LinearProgram;
///
/// # fn main() -> Result<(), oic_lp::LpError> {
/// // Support function of the box [-1,1]² in direction (3,4): value 7.
/// let mut lp = LinearProgram::maximize(&[3.0, 4.0]);
/// lp.set_bounds(0, -1.0, 1.0);
/// lp.set_bounds(1, -1.0, 1.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective() - 7.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Minimization costs (already negated for maximize problems).
    costs: Vec<f64>,
    maximize: bool,
    constraints: Vec<Constraint>,
    lower: Vec<Option<f64>>,
    upper: Vec<Option<f64>>,
    backend: Backend,
    /// Process-unique structure revision: advanced by every mutation that
    /// changes the constraint matrix or bound structure (not by RHS or
    /// cost updates). Guards the compiled form cached in a [`WarmStart`].
    structure_rev: u64,
}

/// Draws a process-unique structure revision (uniqueness across program
/// instances is what makes the O(1) compiled-form guard sound).
fn next_revision() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    x: Vec<f64>,
    objective: f64,
}

impl LpSolution {
    /// Optimal variable values, in the order variables were declared.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Optimal objective value (in the user's orientation: maximal value for
    /// maximize problems, minimal for minimize problems).
    pub fn objective(&self) -> f64 {
        self.objective
    }
}

impl LinearProgram {
    /// Creates a minimization problem `min cᵀx` with one variable per cost
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty.
    pub fn minimize(costs: &[f64]) -> Self {
        assert!(
            !costs.is_empty(),
            "objective must have at least one variable"
        );
        Self {
            costs: costs.to_vec(),
            maximize: false,
            constraints: Vec::new(),
            lower: vec![None; costs.len()],
            upper: vec![None; costs.len()],
            backend: Backend::Auto,
            structure_rev: next_revision(),
        }
    }

    /// Creates a maximization problem `max cᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty.
    pub fn maximize(costs: &[f64]) -> Self {
        let mut lp = Self::minimize(&costs.iter().map(|c| -c).collect::<Vec<_>>());
        lp.maximize = true;
        lp
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Returns `true` for problems built with [`maximize`](Self::maximize).
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Number of constraints added so far (excluding variable bounds).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Selects the solve backend (default [`Backend::Auto`]).
    ///
    /// The `OIC_LP_BACKEND` environment variable overrides this setting
    /// process-wide; see [`forced_backend`].
    pub fn set_backend(&mut self, backend: Backend) -> &mut Self {
        self.backend = backend;
        self
    }

    /// The configured backend (before any environment override).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn effective_backend(&self) -> Backend {
        forced_backend().unwrap_or(self.backend)
    }

    /// Adds a general constraint `coeffs · x REL rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of variables or if
    /// any coefficient is non-finite.
    pub fn add_constraint(&mut self, coeffs: &[f64], relation: Relation, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.num_vars(), "coefficient length mismatch");
        assert!(
            coeffs
                .iter()
                .chain(std::iter::once(&rhs))
                .all(|v| v.is_finite()),
            "constraint entries must be finite"
        );
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        self.structure_rev = next_revision();
        self
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn add_le(&mut self, coeffs: &[f64], rhs: f64) -> &mut Self {
        self.add_constraint(coeffs, Relation::Le, rhs)
    }

    /// Adds `coeffs · x ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: &[f64], rhs: f64) -> &mut Self {
        self.add_constraint(coeffs, Relation::Ge, rhs)
    }

    /// Adds `coeffs · x = rhs`.
    pub fn add_eq(&mut self, coeffs: &[f64], rhs: f64) -> &mut Self {
        self.add_constraint(coeffs, Relation::Eq, rhs)
    }

    /// Replaces the right-hand side of constraint `i` (in insertion order).
    ///
    /// Together with [`solve_warm`](Self::solve_warm) this is the cheap
    /// path for RHS-perturbed resolve sequences: the constraint matrix is
    /// left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `rhs` is not finite.
    pub fn set_rhs(&mut self, i: usize, rhs: f64) -> &mut Self {
        assert!(i < self.constraints.len(), "constraint index out of range");
        assert!(rhs.is_finite(), "rhs must be finite");
        self.constraints[i].rhs = rhs;
        self
    }

    /// Replaces the objective coefficients, keeping the orientation the
    /// program was built with (`costs` is interpreted exactly like the
    /// constructor argument).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the variable count or any entry is
    /// non-finite.
    pub fn set_objective(&mut self, costs: &[f64]) -> &mut Self {
        assert_eq!(costs.len(), self.num_vars(), "objective length mismatch");
        assert!(
            costs.iter().all(|v| v.is_finite()),
            "objective entries must be finite"
        );
        for (slot, &c) in self.costs.iter_mut().zip(costs) {
            *slot = if self.maximize { -c } else { c };
        }
        self
    }

    /// Sets a lower bound `x[i] ≥ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `bound` is not finite.
    pub fn set_lower_bound(&mut self, i: usize, bound: f64) -> &mut Self {
        assert!(i < self.num_vars(), "variable index out of range");
        assert!(bound.is_finite(), "bound must be finite");
        self.lower[i] = Some(bound);
        self.structure_rev = next_revision();
        self
    }

    /// Sets an upper bound `x[i] ≤ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `bound` is not finite.
    pub fn set_upper_bound(&mut self, i: usize, bound: f64) -> &mut Self {
        assert!(i < self.num_vars(), "variable index out of range");
        assert!(bound.is_finite(), "bound must be finite");
        self.upper[i] = Some(bound);
        self.structure_rev = next_revision();
        self
    }

    /// Sets both bounds `lo ≤ x[i] ≤ hi`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, bounds are non-finite, or `lo > hi`.
    pub fn set_bounds(&mut self, i: usize, lo: f64, hi: f64) -> &mut Self {
        assert!(lo <= hi, "lower bound exceeds upper bound");
        self.set_lower_bound(i, lo);
        self.set_upper_bound(i, hi)
    }

    /// Converts to standard form `min cᵀy, Ay = b, y ≥ 0`.
    ///
    /// With `flip = true` rows with negative RHS are negated so `b ≥ 0`
    /// (the two-phase entry contract; flipped `≤`-rows lose their slack
    /// basis hint). With `flip = false` the RHS keeps its sign and every
    /// `≤`-row keeps a `+1` slack — the *shape-stable* form whose column
    /// space does not depend on the RHS values, which is what makes a basis
    /// reusable across a warm-started resolve sequence.
    ///
    /// `rhs_override`, when given, replaces the stored constraint RHS
    /// values (one per constraint, bounds excluded).
    fn standardize(
        &self,
        rhs_override: Option<&[f64]>,
        flip: bool,
    ) -> Result<Standardized, LpError> {
        let n = self.num_vars();
        if let Some(rhs) = rhs_override {
            assert_eq!(
                rhs.len(),
                self.constraints.len(),
                "rhs override length mismatch"
            );
        }

        // --- Variable substitution to non-negative standard variables. ---
        let mut var_map = Vec::with_capacity(n);
        let mut n_std = 0usize;
        // Extra rows for two-sided bounds: (std_index, range).
        let mut range_rows: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            match (self.lower[i], self.upper[i]) {
                (Some(l), Some(u)) => {
                    if u < l {
                        return Err(LpError::Infeasible);
                    }
                    var_map.push(VarMap::Shifted(n_std, l));
                    range_rows.push((n_std, u - l));
                    n_std += 1;
                }
                (Some(l), None) => {
                    var_map.push(VarMap::Shifted(n_std, l));
                    n_std += 1;
                }
                (None, Some(u)) => {
                    var_map.push(VarMap::Mirrored(n_std, u));
                    n_std += 1;
                }
                (None, None) => {
                    var_map.push(VarMap::Split(n_std, n_std + 1));
                    n_std += 2;
                }
            }
        }

        // Substitute into a row of original coefficients: returns the
        // standard-variable row plus the constant term contributed.
        let substitute = |coeffs: &[f64]| -> (Vec<f64>, f64) {
            let mut row = vec![0.0; n_std];
            let mut constant = 0.0;
            for (i, &ci) in coeffs.iter().enumerate() {
                if ci == 0.0 {
                    continue;
                }
                match var_map[i] {
                    VarMap::Shifted(j, l) => {
                        row[j] += ci;
                        constant += ci * l;
                    }
                    VarMap::Mirrored(j, u) => {
                        row[j] -= ci;
                        constant += ci * u;
                    }
                    VarMap::Split(jp, jm) => {
                        row[jp] += ci;
                        row[jm] -= ci;
                    }
                }
            }
            (row, constant)
        };

        // --- Build standard-form rows. ---
        // Working list of (row over std vars, relation in {Le, Eq}, rhs).
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        for (ci, c) in self.constraints.iter().enumerate() {
            let (mut row, constant) = substitute(&c.coeffs);
            let user_rhs = rhs_override.map_or(c.rhs, |r| r[ci]);
            let mut rhs = user_rhs - constant;
            let mut rel = c.relation;
            if rel == Relation::Ge {
                for v in &mut row {
                    *v = -*v;
                }
                rhs = -rhs;
                rel = Relation::Le;
            }
            rows.push((row, rel, rhs));
        }
        for &(j, range) in &range_rows {
            let mut row = vec![0.0; n_std];
            row[j] = 1.0;
            rows.push((row, Relation::Le, range));
        }

        let m = rows.len();
        let n_slack: usize = rows
            .iter()
            .filter(|(_, rel, _)| *rel == Relation::Le)
            .count();
        let total = n_std + n_slack;

        let mut a = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        let mut hints: Vec<Option<usize>> = Vec::with_capacity(m);
        let mut slack_col = n_std;
        for (mut row, rel, mut rhs) in rows {
            row.resize(total, 0.0);
            match rel {
                Relation::Le => {
                    let neg = flip && rhs < 0.0;
                    if neg {
                        for v in &mut row {
                            *v = -*v;
                        }
                        rhs = -rhs;
                        row[slack_col] = -1.0;
                        hints.push(None);
                    } else {
                        row[slack_col] = 1.0;
                        hints.push(Some(slack_col));
                    }
                    slack_col += 1;
                }
                Relation::Eq => {
                    if flip && rhs < 0.0 {
                        for v in &mut row {
                            *v = -*v;
                        }
                        rhs = -rhs;
                    }
                    hints.push(None);
                }
                Relation::Ge => unreachable!("Ge was normalized to Le above"),
            }
            a.push(row);
            b.push(rhs);
        }

        // --- Objective in standard variables. ---
        let (mut c_std, obj_constant) = substitute(&self.costs);
        c_std.resize(total, 0.0);

        Ok(Standardized {
            sf: StandardForm { a, b, c: c_std },
            hints,
            var_map,
            obj_constant,
            total,
        })
    }

    /// Maps a standard-form solution back to user variables.
    fn map_solution(&self, std: &Standardized, sol: &StandardSolution) -> LpSolution {
        self.finish(&std.var_map, std.obj_constant, sol)
    }

    fn finish(&self, var_map: &[VarMap], obj_constant: f64, sol: &StandardSolution) -> LpSolution {
        let mut x = vec![0.0; self.num_vars()];
        for (i, vm) in var_map.iter().enumerate() {
            x[i] = match *vm {
                VarMap::Shifted(j, l) => l + sol.x[j],
                VarMap::Mirrored(j, u) => u - sol.x[j],
                VarMap::Split(jp, jm) => sol.x[jp] - sol.x[jm],
            };
        }
        let mut objective = sol.objective + obj_constant;
        if self.maximize {
            objective = -objective;
        }
        LpSolution { x, objective }
    }

    /// Compiles the shape-stable standard form (see [`CompiledForm`]).
    fn compile(&self, revision: u64) -> Result<CompiledForm, LpError> {
        let std = self.standardize(None, false)?;
        let nc = self.constraints.len();
        let mut sign = Vec::with_capacity(nc);
        let mut constant = Vec::with_capacity(nc);
        for c in &self.constraints {
            sign.push(if c.relation == Relation::Ge {
                -1.0
            } else {
                1.0
            });
            // Same accumulation order as `standardize`'s substitution so
            // the reassembled RHS is bit-identical to a fresh build.
            let mut k = 0.0;
            for (i, &ci) in c.coeffs.iter().enumerate() {
                if ci == 0.0 {
                    continue;
                }
                match std.var_map[i] {
                    VarMap::Shifted(_, l) => k += ci * l,
                    VarMap::Mirrored(_, u) => k += ci * u,
                    VarMap::Split(..) => {}
                }
            }
            constant.push(k);
        }
        let range_rhs = std.sf.b[nc..].to_vec();
        Ok(CompiledForm {
            revision,
            rows: std.sf.a,
            var_map: std.var_map,
            total: std.total,
            sign,
            constant,
            range_rhs,
        })
    }

    /// Cold solve on the flipped (two-phase) standard form under the
    /// effective backend.
    fn solve_cold(
        &self,
        rhs_override: Option<&[f64]>,
    ) -> Result<(Standardized, StandardSolution), LpError> {
        oic_obs::counter!("lp.solves", "solves").incr();
        let std = self.standardize(rhs_override, true)?;
        let sol = match self.effective_backend() {
            Backend::Revised => solve_revised(&std.sf, &std.hints)?,
            Backend::Tableau | Backend::Auto => solve_standard(&std.sf, &std.hints)?,
        };
        oic_obs::counter!("lp.pivots", "pivots").add(sol.iters as u64);
        Ok((std, sol))
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — the constraints admit no solution.
    /// * [`LpError::Unbounded`] — the objective is unbounded.
    /// * [`LpError::IterationLimit`] — the pivot limit was reached, which
    ///   indicates severe degeneracy or ill-conditioning.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let (std, sol) = self.solve_cold(None)?;
        Ok(self.map_solution(&std, &sol))
    }

    /// Solves with the stored constraint right-hand sides replaced by
    /// `rhs` (one entry per constraint, bounds excluded) — the program
    /// itself is not mutated, so a shared template can serve many solves.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Self::solve).
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.num_constraints()` or any entry is
    /// non-finite.
    pub fn solve_with_rhs(&self, rhs: &[f64]) -> Result<LpSolution, LpError> {
        assert_eq!(
            rhs.len(),
            self.num_constraints(),
            "rhs override length mismatch"
        );
        assert!(
            rhs.iter().all(|v| v.is_finite()),
            "rhs entries must be finite"
        );
        let (std, sol) = self.solve_cold(Some(rhs))?;
        Ok(self.map_solution(&std, &sol))
    }

    /// Solves the program, carrying the optimal basis in `warm` so the
    /// *next* solve through the same `WarmStart` can skip phase 1 and most
    /// pivots. See [`Backend`] for when the revised engine is used.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Self::solve).
    pub fn solve_warm(&self, warm: &mut WarmStart) -> Result<LpSolution, LpError> {
        self.solve_warm_impl(None, warm)
    }

    /// [`solve_with_rhs`](Self::solve_with_rhs) with warm-start carry —
    /// the fast path for RHS-perturbed resolve sequences (templated MPC).
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Self::solve).
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.num_constraints()` or any entry is
    /// non-finite.
    pub fn solve_warm_with_rhs(
        &self,
        rhs: &[f64],
        warm: &mut WarmStart,
    ) -> Result<LpSolution, LpError> {
        assert_eq!(
            rhs.len(),
            self.num_constraints(),
            "rhs override length mismatch"
        );
        assert!(
            rhs.iter().all(|v| v.is_finite()),
            "rhs entries must be finite"
        );
        self.solve_warm_impl(Some(rhs), warm)
    }

    fn solve_warm_impl(
        &self,
        rhs_override: Option<&[f64]>,
        warm: &mut WarmStart,
    ) -> Result<LpSolution, LpError> {
        warm.solves += 1;
        let both_bounded = self
            .lower
            .iter()
            .zip(&self.upper)
            .filter(|(l, u)| l.is_some() && u.is_some())
            .count();
        let m = self.constraints.len() + both_bounded;
        let use_revised = match self.effective_backend() {
            Backend::Tableau => false,
            Backend::Revised => true,
            Backend::Auto => m >= AUTO_WARM_MIN_ROWS,
        };

        if use_revised {
            // Keep the compiled shape-stable form current (the revision
            // counter detects structural mutation and instance changes;
            // RHS/cost updates don't recompile).
            let rev = self.structure_rev;
            if warm.compiled.as_ref().is_none_or(|c| c.revision != rev) {
                warm.compiled = Some(self.compile(rev)?);
                warm.carry.clear();
            }
            let WarmStart {
                compiled,
                carry,
                warm_hits,
                fallbacks,
                pivots,
                last_fallback_reason,
                ..
            } = warm;
            let compiled = compiled.as_ref().expect("compiled above");
            if !carry.is_empty() && carry.basis.len() == compiled.rows.len() {
                let b = compiled.rhs_vector(self, rhs_override);
                let (c_std, obj_constant) = compiled.cost_vector(self);
                match solve_revised_warm(&compiled.rows, &b, &c_std, carry) {
                    WarmOutcome::Solved(sol) => {
                        *warm_hits += 1;
                        *pivots += sol.iters as u64;
                        oic_obs::counter!("lp.solves", "solves").incr();
                        oic_obs::counter!("lp.warm_hits", "solves").incr();
                        oic_obs::counter!("lp.pivots", "pivots").add(sol.iters as u64);
                        return Ok(self.finish(&compiled.var_map, obj_constant, &sol));
                    }
                    WarmOutcome::Lp(e) => return Err(e),
                    WarmOutcome::Fallback(failure) => {
                        *fallbacks += 1;
                        *last_fallback_reason = Some(failure.reason());
                        oic_obs::counter!("lp.warm_fallbacks", "solves").incr();
                        carry.clear();
                    }
                }
            }
        }

        // Cold path; seed the warm start for the next call when the final
        // basis is artificial-free (a basis containing a zero-level
        // artificial would not transfer to the unflipped column space).
        let (std, sol) = self.solve_cold(rhs_override)?;
        warm.pivots += sol.iters as u64;
        if use_revised {
            if let Some(basis) = sol.structural_basis(std.total) {
                warm.carry.set_basis(basis);
            } else {
                warm.carry.clear();
            }
        }
        Ok(self.map_solution(&std, &sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximize_with_nonneg_vars() {
        let mut lp = LinearProgram::maximize(&[3.0, 5.0]);
        lp.add_le(&[1.0, 0.0], 4.0);
        lp.add_le(&[0.0, 2.0], 12.0);
        lp.add_le(&[3.0, 2.0], 18.0);
        lp.set_lower_bound(0, 0.0);
        lp.set_lower_bound(1, 0.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 36.0).abs() < 1e-9);
        assert!((sol.x()[0] - 2.0).abs() < 1e-9);
        assert!((sol.x()[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn free_variables_support_function() {
        // max (1,1)·x over the diamond |x1| + |x2| <= 1: optimum 1.
        let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
        lp.add_le(&[1.0, 1.0], 1.0);
        lp.add_le(&[1.0, -1.0], 1.0);
        lp.add_le(&[-1.0, 1.0], 1.0);
        lp.add_le(&[-1.0, -1.0], 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. x <= -3 and x >= -10.
        let mut lp = LinearProgram::minimize(&[1.0]);
        lp.add_le(&[1.0], -3.0);
        lp.add_ge(&[1.0], -10.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraint() {
        // min x1 + 2x2 s.t. x1 + x2 = 3, x1 - x2 >= -1, free vars.
        // Optimum pushes x2 as small as allowed: x1 - x2 >= -1 with
        // x1 = 3 - x2 gives 3 - 2x2 >= -1, x2 <= 2 -> x = (1, 2)? cost 5;
        // but decreasing x2 lowers cost: x2 unbounded below? x1 = 3 - x2
        // grows, cost = 3 - x2 + 2x2 = 3 + x2 -> unbounded below without
        // more constraints. Add x2 >= 0: optimum x = (3, 0), cost 3.
        let mut lp = LinearProgram::minimize(&[1.0, 2.0]);
        lp.add_eq(&[1.0, 1.0], 3.0);
        lp.add_ge(&[1.0, -1.0], -1.0);
        lp.set_lower_bound(1, 0.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-9);
        assert!((sol.x()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // max x s.t. x <= 5 via bound: Mirrored mapping.
        let mut lp = LinearProgram::maximize(&[1.0]);
        lp.set_upper_bound(0, 5.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_sided_bounds() {
        let mut lp = LinearProgram::minimize(&[1.0, -1.0]);
        lp.set_bounds(0, -2.0, 3.0);
        lp.set_bounds(1, -4.0, 7.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - (-2.0 - 7.0)).abs() < 1e-9);
        assert!((sol.x()[0] + 2.0).abs() < 1e-9);
        assert!((sol.x()[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_bounds_infeasible() {
        let mut lp = LinearProgram::minimize(&[1.0]);
        lp.set_lower_bound(0, 2.0);
        lp.set_upper_bound(0, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_constraints() {
        let mut lp = LinearProgram::minimize(&[0.0, 0.0]);
        lp.add_le(&[1.0, 1.0], 1.0);
        lp.add_ge(&[1.0, 1.0], 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_free_problem() {
        let mut lp = LinearProgram::minimize(&[1.0]);
        lp.add_le(&[1.0], 10.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_problem_solves() {
        // Multiple constraints active at the optimum.
        let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
        lp.add_le(&[1.0, 0.0], 1.0);
        lp.add_le(&[0.0, 1.0], 1.0);
        lp.add_le(&[1.0, 1.0], 2.0);
        lp.add_le(&[2.0, 1.0], 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut lp = LinearProgram::minimize(&[0.0, 0.0]);
        lp.add_eq(&[1.0, 1.0], 1.0);
        lp.add_ge(&[1.0, 0.0], 0.25);
        let sol = lp.solve().unwrap();
        assert!(sol.x()[0] >= 0.25 - 1e-9);
        assert!((sol.x()[0] + sol.x()[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solution_reuse_after_adding_constraint() {
        let mut lp = LinearProgram::maximize(&[1.0]);
        lp.set_bounds(0, 0.0, 10.0);
        assert!((lp.solve().unwrap().objective() - 10.0).abs() < 1e-9);
        lp.add_le(&[1.0], 4.0);
        assert!((lp.solve().unwrap().objective() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn revised_backend_matches_tableau_on_builder_problems() {
        let build = |backend: Backend| {
            let mut lp = LinearProgram::maximize(&[3.0, 5.0]);
            lp.set_backend(backend);
            lp.add_le(&[1.0, 0.0], 4.0);
            lp.add_le(&[0.0, 2.0], 12.0);
            lp.add_le(&[3.0, 2.0], 18.0);
            lp.set_lower_bound(0, 0.0);
            lp.set_lower_bound(1, 0.0);
            lp.solve().unwrap()
        };
        let t = build(Backend::Tableau);
        let r = build(Backend::Revised);
        assert!((t.objective() - r.objective()).abs() < 1e-9);
        for (a, b) in t.x().iter().zip(r.x()) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn solve_with_rhs_leaves_program_untouched() {
        let mut lp = LinearProgram::maximize(&[1.0]);
        lp.set_lower_bound(0, 0.0);
        lp.add_le(&[1.0], 10.0);
        let tight = lp.solve_with_rhs(&[4.0]).unwrap();
        assert!((tight.objective() - 4.0).abs() < 1e-9);
        let original = lp.solve().unwrap();
        assert!((original.objective() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_sequence_matches_cold_solves() {
        let mut lp = LinearProgram::maximize(&[2.0, 1.0]);
        lp.set_backend(Backend::Revised);
        lp.add_le(&[1.0, 1.0], 10.0);
        lp.add_le(&[1.0, -1.0], 4.0);
        lp.add_le(&[0.5, 2.0], 9.0);
        lp.set_lower_bound(0, 0.0);
        lp.set_lower_bound(1, 0.0);
        let mut warm = WarmStart::new();
        for shift in [0.0, 1.0, -0.5, 2.0, -1.5] {
            let rhs = [10.0 + shift, 4.0 - shift * 0.5, 9.0 + shift];
            let warm_sol = lp.solve_warm_with_rhs(&rhs, &mut warm).unwrap();
            let cold_sol = lp.solve_with_rhs(&rhs).unwrap();
            assert!(
                (warm_sol.objective() - cold_sol.objective()).abs() < 1e-7,
                "shift {shift}: warm {} vs cold {}",
                warm_sol.objective(),
                cold_sol.objective()
            );
        }
        assert_eq!(warm.solves(), 5);
        if forced_backend() != Some(Backend::Tableau) {
            assert!(warm.warm_hits() >= 3, "warm hits: {}", warm.warm_hits());
        }
    }

    #[test]
    fn warm_start_survives_objective_change() {
        let mut lp = LinearProgram::maximize(&[1.0, 0.0]);
        lp.set_backend(Backend::Revised);
        lp.add_le(&[1.0, 1.0], 4.0);
        lp.add_le(&[1.0, -1.0], 2.0);
        lp.set_lower_bound(0, 0.0);
        lp.set_lower_bound(1, 0.0);
        let mut warm = WarmStart::new();
        let first = lp.solve_warm(&mut warm).unwrap();
        assert!((first.objective() - 3.0).abs() < 1e-9);
        lp.set_objective(&[0.0, 1.0]);
        let second = lp.solve_warm(&mut warm).unwrap();
        assert!((second.objective() - 4.0).abs() < 1e-9);
        if forced_backend() != Some(Backend::Tableau) {
            assert!(warm.warm_hits() >= 1);
        }
    }

    #[test]
    fn tableau_backend_ignores_warm_state_but_still_solves() {
        let mut lp = LinearProgram::maximize(&[1.0]);
        lp.set_backend(Backend::Tableau);
        lp.set_bounds(0, 0.0, 3.0);
        let mut warm = WarmStart::new();
        let sol = lp.solve_warm(&mut warm).unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-9);
        // The no-carry assertions only hold when no env override forces
        // the revised engine over the configured backend.
        if forced_backend().is_none() {
            assert_eq!(warm.warm_hits(), 0);
            assert!(!warm.has_basis());
        }
    }

    #[test]
    fn warm_infeasible_rhs_reports_infeasible() {
        let mut lp = LinearProgram::minimize(&[0.0]);
        lp.set_backend(Backend::Revised);
        lp.add_le(&[1.0], 5.0);
        lp.add_ge(&[1.0], 1.0);
        let mut warm = WarmStart::new();
        assert!(lp.solve_warm(&mut warm).is_ok());
        // rhs: x ≤ 0 while x ≥ 1 stays → infeasible.
        let err = lp.solve_warm_with_rhs(&[0.0, 1.0], &mut warm).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }
}
