//! User-facing linear-program builder.

use crate::simplex::{solve_standard, StandardForm};
use crate::LpError;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

/// A linear program over real variables.
///
/// Variables are **free** (unbounded) by default; use
/// [`set_lower_bound`](Self::set_lower_bound) /
/// [`set_upper_bound`](Self::set_upper_bound) to bound them. The builder is
/// non-consuming: configure, then call [`solve`](Self::solve) as many times
/// as needed (e.g. after adding constraints).
///
/// # Examples
///
/// ```
/// use oic_lp::LinearProgram;
///
/// # fn main() -> Result<(), oic_lp::LpError> {
/// // Support function of the box [-1,1]² in direction (3,4): value 7.
/// let mut lp = LinearProgram::maximize(&[3.0, 4.0]);
/// lp.set_bounds(0, -1.0, 1.0);
/// lp.set_bounds(1, -1.0, 1.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective() - 7.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Minimization costs (already negated for maximize problems).
    costs: Vec<f64>,
    maximize: bool,
    constraints: Vec<Constraint>,
    lower: Vec<Option<f64>>,
    upper: Vec<Option<f64>>,
}

/// Solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    x: Vec<f64>,
    objective: f64,
}

impl LpSolution {
    /// Optimal variable values, in the order variables were declared.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Optimal objective value (in the user's orientation: maximal value for
    /// maximize problems, minimal for minimize problems).
    pub fn objective(&self) -> f64 {
        self.objective
    }
}

impl LinearProgram {
    /// Creates a minimization problem `min cᵀx` with one variable per cost
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty.
    pub fn minimize(costs: &[f64]) -> Self {
        assert!(
            !costs.is_empty(),
            "objective must have at least one variable"
        );
        Self {
            costs: costs.to_vec(),
            maximize: false,
            constraints: Vec::new(),
            lower: vec![None; costs.len()],
            upper: vec![None; costs.len()],
        }
    }

    /// Creates a maximization problem `max cᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty.
    pub fn maximize(costs: &[f64]) -> Self {
        let mut lp = Self::minimize(&costs.iter().map(|c| -c).collect::<Vec<_>>());
        lp.maximize = true;
        lp
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Returns `true` for problems built with [`maximize`](Self::maximize).
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Number of constraints added so far (excluding variable bounds).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a general constraint `coeffs · x REL rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of variables or if
    /// any coefficient is non-finite.
    pub fn add_constraint(&mut self, coeffs: &[f64], relation: Relation, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.num_vars(), "coefficient length mismatch");
        assert!(
            coeffs
                .iter()
                .chain(std::iter::once(&rhs))
                .all(|v| v.is_finite()),
            "constraint entries must be finite"
        );
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        self
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn add_le(&mut self, coeffs: &[f64], rhs: f64) -> &mut Self {
        self.add_constraint(coeffs, Relation::Le, rhs)
    }

    /// Adds `coeffs · x ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: &[f64], rhs: f64) -> &mut Self {
        self.add_constraint(coeffs, Relation::Ge, rhs)
    }

    /// Adds `coeffs · x = rhs`.
    pub fn add_eq(&mut self, coeffs: &[f64], rhs: f64) -> &mut Self {
        self.add_constraint(coeffs, Relation::Eq, rhs)
    }

    /// Sets a lower bound `x[i] ≥ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `bound` is not finite.
    pub fn set_lower_bound(&mut self, i: usize, bound: f64) -> &mut Self {
        assert!(i < self.num_vars(), "variable index out of range");
        assert!(bound.is_finite(), "bound must be finite");
        self.lower[i] = Some(bound);
        self
    }

    /// Sets an upper bound `x[i] ≤ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `bound` is not finite.
    pub fn set_upper_bound(&mut self, i: usize, bound: f64) -> &mut Self {
        assert!(i < self.num_vars(), "variable index out of range");
        assert!(bound.is_finite(), "bound must be finite");
        self.upper[i] = Some(bound);
        self
    }

    /// Sets both bounds `lo ≤ x[i] ≤ hi`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, bounds are non-finite, or `lo > hi`.
    pub fn set_bounds(&mut self, i: usize, lo: f64, hi: f64) -> &mut Self {
        assert!(lo <= hi, "lower bound exceeds upper bound");
        self.set_lower_bound(i, lo);
        self.set_upper_bound(i, hi)
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — the constraints admit no solution.
    /// * [`LpError::Unbounded`] — the objective is unbounded.
    /// * [`LpError::IterationLimit`] — the pivot limit was reached, which
    ///   indicates severe degeneracy or ill-conditioning.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let n = self.num_vars();

        // --- Variable substitution to non-negative standard variables. ---
        // Each original variable maps to one of:
        //   Shifted(j, l):      x_i = l + y_j
        //   Mirrored(j, u):     x_i = u - y_j
        //   Split(jp, jm):      x_i = y_jp - y_jm
        #[derive(Clone, Copy)]
        enum VarMap {
            Shifted(usize, f64),
            Mirrored(usize, f64),
            Split(usize, usize),
        }

        let mut var_map = Vec::with_capacity(n);
        let mut n_std = 0usize;
        // Extra rows for two-sided bounds: (std_index, range).
        let mut range_rows: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            match (self.lower[i], self.upper[i]) {
                (Some(l), Some(u)) => {
                    if u < l {
                        return Err(LpError::Infeasible);
                    }
                    var_map.push(VarMap::Shifted(n_std, l));
                    range_rows.push((n_std, u - l));
                    n_std += 1;
                }
                (Some(l), None) => {
                    var_map.push(VarMap::Shifted(n_std, l));
                    n_std += 1;
                }
                (None, Some(u)) => {
                    var_map.push(VarMap::Mirrored(n_std, u));
                    n_std += 1;
                }
                (None, None) => {
                    var_map.push(VarMap::Split(n_std, n_std + 1));
                    n_std += 2;
                }
            }
        }

        // Substitute into a row of original coefficients: returns the
        // standard-variable row plus the constant term contributed.
        let substitute = |coeffs: &[f64]| -> (Vec<f64>, f64) {
            let mut row = vec![0.0; n_std];
            let mut constant = 0.0;
            for (i, &ci) in coeffs.iter().enumerate() {
                if ci == 0.0 {
                    continue;
                }
                match var_map[i] {
                    VarMap::Shifted(j, l) => {
                        row[j] += ci;
                        constant += ci * l;
                    }
                    VarMap::Mirrored(j, u) => {
                        row[j] -= ci;
                        constant += ci * u;
                    }
                    VarMap::Split(jp, jm) => {
                        row[jp] += ci;
                        row[jm] -= ci;
                    }
                }
            }
            (row, constant)
        };

        // --- Build standard-form rows. ---
        // Working list of (row over std vars, relation in {Le, Eq}, rhs).
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        for c in &self.constraints {
            let (mut row, constant) = substitute(&c.coeffs);
            let mut rhs = c.rhs - constant;
            let mut rel = c.relation;
            if rel == Relation::Ge {
                for v in &mut row {
                    *v = -*v;
                }
                rhs = -rhs;
                rel = Relation::Le;
            }
            rows.push((row, rel, rhs));
        }
        for &(j, range) in &range_rows {
            let mut row = vec![0.0; n_std];
            row[j] = 1.0;
            rows.push((row, Relation::Le, range));
        }

        let m = rows.len();
        let n_slack: usize = rows
            .iter()
            .filter(|(_, rel, _)| *rel == Relation::Le)
            .count();
        let total = n_std + n_slack;

        let mut a = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        let mut hints: Vec<Option<usize>> = Vec::with_capacity(m);
        let mut slack_col = n_std;
        for (mut row, rel, mut rhs) in rows {
            row.resize(total, 0.0);
            match rel {
                Relation::Le => {
                    let neg = rhs < 0.0;
                    if neg {
                        for v in &mut row {
                            *v = -*v;
                        }
                        rhs = -rhs;
                        row[slack_col] = -1.0;
                        hints.push(None);
                    } else {
                        row[slack_col] = 1.0;
                        hints.push(Some(slack_col));
                    }
                    slack_col += 1;
                }
                Relation::Eq => {
                    if rhs < 0.0 {
                        for v in &mut row {
                            *v = -*v;
                        }
                        rhs = -rhs;
                    }
                    hints.push(None);
                }
                Relation::Ge => unreachable!("Ge was normalized to Le above"),
            }
            a.push(row);
            b.push(rhs);
        }

        // --- Objective in standard variables. ---
        let (mut c_std, obj_constant) = substitute(&self.costs);
        c_std.resize(total, 0.0);

        let sol = solve_standard(&StandardForm { a, b, c: c_std }, &hints)?;

        // --- Map the solution back. ---
        let mut x = vec![0.0; n];
        for (i, vm) in var_map.iter().enumerate() {
            x[i] = match *vm {
                VarMap::Shifted(j, l) => l + sol.x[j],
                VarMap::Mirrored(j, u) => u - sol.x[j],
                VarMap::Split(jp, jm) => sol.x[jp] - sol.x[jm],
            };
        }
        let mut objective = sol.objective + obj_constant;
        if self.maximize {
            objective = -objective;
        }
        Ok(LpSolution { x, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximize_with_nonneg_vars() {
        let mut lp = LinearProgram::maximize(&[3.0, 5.0]);
        lp.add_le(&[1.0, 0.0], 4.0);
        lp.add_le(&[0.0, 2.0], 12.0);
        lp.add_le(&[3.0, 2.0], 18.0);
        lp.set_lower_bound(0, 0.0);
        lp.set_lower_bound(1, 0.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 36.0).abs() < 1e-9);
        assert!((sol.x()[0] - 2.0).abs() < 1e-9);
        assert!((sol.x()[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn free_variables_support_function() {
        // max (1,1)·x over the diamond |x1| + |x2| <= 1: optimum 1.
        let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
        lp.add_le(&[1.0, 1.0], 1.0);
        lp.add_le(&[1.0, -1.0], 1.0);
        lp.add_le(&[-1.0, 1.0], 1.0);
        lp.add_le(&[-1.0, -1.0], 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. x <= -3 and x >= -10.
        let mut lp = LinearProgram::minimize(&[1.0]);
        lp.add_le(&[1.0], -3.0);
        lp.add_ge(&[1.0], -10.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraint() {
        // min x1 + 2x2 s.t. x1 + x2 = 3, x1 - x2 >= -1, free vars.
        // Optimum pushes x2 as small as allowed: x1 - x2 >= -1 with
        // x1 = 3 - x2 gives 3 - 2x2 >= -1, x2 <= 2 -> x = (1, 2)? cost 5;
        // but decreasing x2 lowers cost: x2 unbounded below? x1 = 3 - x2
        // grows, cost = 3 - x2 + 2x2 = 3 + x2 -> unbounded below without
        // more constraints. Add x2 >= 0: optimum x = (3, 0), cost 3.
        let mut lp = LinearProgram::minimize(&[1.0, 2.0]);
        lp.add_eq(&[1.0, 1.0], 3.0);
        lp.add_ge(&[1.0, -1.0], -1.0);
        lp.set_lower_bound(1, 0.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-9);
        assert!((sol.x()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // max x s.t. x <= 5 via bound: Mirrored mapping.
        let mut lp = LinearProgram::maximize(&[1.0]);
        lp.set_upper_bound(0, 5.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_sided_bounds() {
        let mut lp = LinearProgram::minimize(&[1.0, -1.0]);
        lp.set_bounds(0, -2.0, 3.0);
        lp.set_bounds(1, -4.0, 7.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - (-2.0 - 7.0)).abs() < 1e-9);
        assert!((sol.x()[0] + 2.0).abs() < 1e-9);
        assert!((sol.x()[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_bounds_infeasible() {
        let mut lp = LinearProgram::minimize(&[1.0]);
        lp.set_lower_bound(0, 2.0);
        lp.set_upper_bound(0, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_constraints() {
        let mut lp = LinearProgram::minimize(&[0.0, 0.0]);
        lp.add_le(&[1.0, 1.0], 1.0);
        lp.add_ge(&[1.0, 1.0], 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_free_problem() {
        let mut lp = LinearProgram::minimize(&[1.0]);
        lp.add_le(&[1.0], 10.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_problem_solves() {
        // Multiple constraints active at the optimum.
        let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
        lp.add_le(&[1.0, 0.0], 1.0);
        lp.add_le(&[0.0, 1.0], 1.0);
        lp.add_le(&[1.0, 1.0], 2.0);
        lp.add_le(&[2.0, 1.0], 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut lp = LinearProgram::minimize(&[0.0, 0.0]);
        lp.add_eq(&[1.0, 1.0], 1.0);
        lp.add_ge(&[1.0, 0.0], 0.25);
        let sol = lp.solve().unwrap();
        assert!(sol.x()[0] >= 0.25 - 1e-9);
        assert!((sol.x()[0] + sol.x()[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solution_reuse_after_adding_constraint() {
        let mut lp = LinearProgram::maximize(&[1.0]);
        lp.set_bounds(0, 0.0, 10.0);
        assert!((lp.solve().unwrap().objective() - 10.0).abs() < 1e-9);
        lp.add_le(&[1.0], 4.0);
        assert!((lp.solve().unwrap().objective() - 4.0).abs() < 1e-9);
    }
}
