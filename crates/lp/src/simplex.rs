//! Dense two-phase tableau simplex engine.
//!
//! This module works on *standard form* problems
//! `min cᵀx  s.t.  Ax = b, x ≥ 0, b ≥ 0` and is only used through
//! [`crate::LinearProgram`], which performs the conversion from the general
//! user-facing form.

use crate::LpError;

/// Numerical tolerance for pivot selection and feasibility tests.
pub(crate) const EPS: f64 = 1e-9;

/// Maximum number of pivots before declaring numerical trouble.
const MAX_ITER: usize = 50_000;

/// Number of Dantzig-rule pivots before switching to Bland's rule.
///
/// Dantzig's rule (most negative reduced cost) is fast in practice but can
/// cycle on degenerate problems; Bland's rule terminates but is slow. The
/// standard remedy is to start with Dantzig and fall back to Bland.
const BLAND_SWITCH: usize = 5_000;

/// Standard-form problem handed to the engine.
pub(crate) struct StandardForm {
    /// Constraint matrix, `m` rows of length `n`.
    pub a: Vec<Vec<f64>>,
    /// Right-hand side, all entries non-negative.
    pub b: Vec<f64>,
    /// Cost vector of length `n` (minimization).
    pub c: Vec<f64>,
}

/// Result of the engine: optimal basic solution in standard-form variables.
#[derive(Debug)]
pub(crate) struct StandardSolution {
    pub x: Vec<f64>,
    pub objective: f64,
    /// The optimal basis (one column index per constraint row). Entries may
    /// point at artificial columns (index `≥ c.len()`) when a redundant row
    /// kept its zero-level artificial — callers seeding warm starts must
    /// check [`StandardSolution::structural_basis`].
    pub basis: Vec<usize>,
    /// Pivots performed (warm-start telemetry).
    pub iters: usize,
}

impl StandardSolution {
    /// The basis if it is purely structural/slack (no artificial columns),
    /// which is the precondition for reusing it as a warm start.
    pub fn structural_basis(&self, n_structural: usize) -> Option<&[usize]> {
        self.basis
            .iter()
            .all(|&j| j < n_structural)
            .then_some(&self.basis[..])
    }
}

struct Tableau {
    /// Number of constraint rows.
    m: usize,
    /// Number of structural + slack + artificial columns.
    n: usize,
    /// `(m + 1) × (n + 1)` row-major buffer; row `m` is the objective row,
    /// column `n` is the right-hand side.
    t: Vec<f64>,
    /// Basic variable for each constraint row.
    basis: Vec<usize>,
    /// First artificial column index (`n` if none).
    art_start: usize,
    /// Total pivots performed (shared across both phases).
    iters: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * (self.n + 1) + j]
    }

    #[inline]
    fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.t[i * (self.n + 1) + j]
    }

    /// Performs a pivot on `(row, col)`: normalizes the pivot row and
    /// eliminates `col` from every other row (including the objective row).
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.n + 1;
        let pivot = self.at(row, col);
        debug_assert!(pivot.abs() > EPS, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for j in 0..w {
            self.t[row * w + j] *= inv;
        }
        // Disjoint pivot-row/target-row views via `split_at_mut` — the old
        // code snapshotted the pivot row into a fresh `Vec` on every pivot,
        // which dominated allocator traffic on MPC-sized tableaus.
        for i in 0..=self.m {
            if i == row {
                continue;
            }
            let factor = self.at(i, col);
            if factor.abs() <= 1e-13 {
                continue;
            }
            let (pivot_row, target) = if i < row {
                let (head, tail) = self.t.split_at_mut(row * w);
                (&tail[..w], &mut head[i * w..(i + 1) * w])
            } else {
                let (head, tail) = self.t.split_at_mut(i * w);
                (&head[row * w..(row + 1) * w], &mut tail[..w])
            };
            for (t, p) in target.iter_mut().zip(pivot_row) {
                *t -= factor * p;
            }
            // Guard against drift: the eliminated entry is exactly zero.
            self.t[i * w + col] = 0.0;
        }
        self.basis[row] = col;
        self.iters += 1;
    }

    /// Chooses the entering column.
    ///
    /// Columns `>= allowed_end` (artificials in phase 2) are never selected.
    fn entering(&self, bland: bool, allowed_end: usize) -> Option<usize> {
        if bland {
            (0..allowed_end).find(|&j| self.at(self.m, j) < -EPS)
        } else {
            let mut best = None;
            let mut best_val = -EPS;
            for j in 0..allowed_end {
                let rc = self.at(self.m, j);
                if rc < best_val {
                    best_val = rc;
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Ratio test: picks the leaving row for entering column `col`.
    ///
    /// Ties are broken by the smallest basis index (part of Bland's rule).
    fn leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            let a = self.at(i, col);
            if a > EPS {
                let ratio = self.at(i, self.n) / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - EPS || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Runs the simplex loop until optimality, unboundedness, or the
    /// iteration limit.
    fn run(&mut self, allowed_end: usize) -> Result<(), LpError> {
        loop {
            if self.iters >= MAX_ITER {
                return Err(LpError::IterationLimit);
            }
            let bland = self.iters >= BLAND_SWITCH;
            let Some(col) = self.entering(bland, allowed_end) else {
                return Ok(());
            };
            let Some(row) = self.leaving(col) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }
}

/// Solves a standard-form LP with the two-phase method.
///
/// Rows whose slack column provides a natural initial basis do not receive an
/// artificial variable; the caller marks those via `basis_hint` (column index
/// usable as the initial basic variable for that row, or `None`).
pub(crate) fn solve_standard(
    sf: &StandardForm,
    basis_hint: &[Option<usize>],
) -> Result<StandardSolution, LpError> {
    let m = sf.b.len();
    let n0 = sf.c.len();
    debug_assert!(sf.a.iter().all(|row| row.len() == n0));
    debug_assert!(sf.b.iter().all(|&bi| bi >= -EPS));
    debug_assert_eq!(basis_hint.len(), m);

    // Count artificials needed.
    let needs_artificial: Vec<bool> = basis_hint.iter().map(|h| h.is_none()).collect();
    let n_art = needs_artificial.iter().filter(|&&x| x).count();
    let n = n0 + n_art;
    let w = n + 1;

    let mut t = vec![0.0; (m + 1) * w];
    let mut basis = vec![0usize; m];
    let mut art_col = n0;
    for i in 0..m {
        for j in 0..n0 {
            t[i * w + j] = sf.a[i][j];
        }
        t[i * w + n] = sf.b[i].max(0.0);
        if let Some(h) = basis_hint[i] {
            basis[i] = h;
        } else {
            t[i * w + art_col] = 1.0;
            basis[i] = art_col;
            art_col += 1;
        }
    }

    let mut tab = Tableau {
        m,
        n,
        t,
        basis,
        art_start: n0,
        iters: 0,
    };

    // ---- Phase 1: minimize the sum of artificial variables. ----
    if n_art > 0 {
        oic_obs::counter!("lp.phase1_entries", "count").incr();
        // Objective row: cost 1 on artificials, reduced by the basic rows so
        // artificial columns start with reduced cost zero.
        for j in tab.art_start..tab.n {
            *tab.at_mut(m, j) = 1.0;
        }
        for (i, needed) in needs_artificial.iter().enumerate().take(m) {
            if *needed {
                for j in 0..w {
                    let v = tab.at(i, j);
                    *tab.at_mut(m, j) -= v;
                }
            }
        }
        tab.run(n)?;
        let phase1_obj = -tab.at(m, n);
        if phase1_obj > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining (zero-level) artificials out of the basis.
        for row in 0..m {
            if tab.basis[row] >= tab.art_start {
                let col = (0..tab.art_start).find(|&j| tab.at(row, j).abs() > EPS);
                if let Some(col) = col {
                    tab.pivot(row, col);
                }
                // If no structural column is available the row is redundant;
                // the artificial stays basic at level zero and is prevented
                // from increasing because phase 2 never pivots on artificial
                // columns and feasibility (rhs >= 0) is preserved.
            }
        }
    }

    // ---- Phase 2: original objective. ----
    // Rebuild the objective row from the original costs expressed over the
    // current basis: z_j = c_j - c_B B^{-1} A_j; rhs = -c_B B^{-1} b.
    for j in 0..w {
        *tab.at_mut(m, j) = 0.0;
    }
    for j in 0..n0 {
        *tab.at_mut(m, j) = sf.c[j];
    }
    for row in 0..m {
        let bvar = tab.basis[row];
        let cb = if bvar < n0 { sf.c[bvar] } else { 0.0 };
        if cb == 0.0 {
            continue;
        }
        for j in 0..w {
            let v = tab.at(row, j);
            *tab.at_mut(m, j) -= cb * v;
        }
    }
    tab.run(tab.art_start)?;

    // Extract the solution.
    let mut x = vec![0.0; n0];
    for row in 0..m {
        let bvar = tab.basis[row];
        if bvar < n0 {
            x[bvar] = tab.at(row, n);
        }
    }
    let objective = -tab.at(m, n);
    Ok(StandardSolution {
        x,
        objective,
        iters: tab.iters,
        basis: tab.basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min -x1 - x2 s.t. x1 + 2x2 + s1 = 4; 3x1 + x2 + s2 = 6; all >= 0.
    #[test]
    fn basic_two_var_lp() {
        let sf = StandardForm {
            a: vec![vec![1.0, 2.0, 1.0, 0.0], vec![3.0, 1.0, 0.0, 1.0]],
            b: vec![4.0, 6.0],
            c: vec![-1.0, -1.0, 0.0, 0.0],
        };
        let sol = solve_standard(&sf, &[Some(2), Some(3)]).unwrap();
        assert!((sol.objective + 2.8).abs() < 1e-9, "{}", sol.objective);
        assert!((sol.x[0] - 1.6).abs() < 1e-9);
        assert!((sol.x[1] - 1.2).abs() < 1e-9);
    }

    /// Equality constraints force artificial variables through phase 1.
    #[test]
    fn equality_constraints_need_phase1() {
        // min x1 + x2 s.t. x1 + x2 = 2, x1 - x2 = 0  =>  x = (1, 1).
        let sf = StandardForm {
            a: vec![vec![1.0, 1.0], vec![1.0, -1.0]],
            b: vec![2.0, 0.0],
            c: vec![1.0, 1.0],
        };
        let sol = solve_standard(&sf, &[None, None]).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert!((sol.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x1 = 1 and x1 = 2 simultaneously.
        let sf = StandardForm {
            a: vec![vec![1.0], vec![1.0]],
            b: vec![1.0, 2.0],
            c: vec![0.0],
        };
        assert_eq!(
            solve_standard(&sf, &[None, None]).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn unbounded_detected() {
        // min -x1 with only x1 - x2 + s = 1: x1 can grow with x2.
        let sf = StandardForm {
            a: vec![vec![1.0, -1.0, 1.0]],
            b: vec![1.0],
            c: vec![-1.0, 0.0, 0.0],
        };
        assert_eq!(
            solve_standard(&sf, &[Some(2)]).unwrap_err(),
            LpError::Unbounded
        );
    }

    /// Beale's classic cycling example; must terminate via the Bland fallback.
    #[test]
    fn beale_degenerate_terminates() {
        // min -0.75x4 + 150x5 - 0.02x6 + 6x7
        // s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
        //      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
        //      x6 <= 1
        let sf = StandardForm {
            a: vec![
                vec![0.25, -60.0, -0.04, 9.0, 1.0, 0.0, 0.0],
                vec![0.5, -90.0, -0.02, 3.0, 0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            ],
            b: vec![0.0, 0.0, 1.0],
            c: vec![-0.75, 150.0, -0.02, 6.0, 0.0, 0.0, 0.0],
        };
        let sol = solve_standard(&sf, &[Some(4), Some(5), Some(6)]).unwrap();
        assert!((sol.objective + 0.05).abs() < 1e-9, "{}", sol.objective);
    }

    #[test]
    fn redundant_equality_rows_handled() {
        // x1 + x2 = 2 stated twice: phase 1 leaves a zero-level artificial in
        // a redundant row, which must not corrupt phase 2.
        let sf = StandardForm {
            a: vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            b: vec![2.0, 2.0],
            c: vec![1.0, 2.0],
        };
        let sol = solve_standard(&sf, &[None, None]).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
    }
}
