//! Branch-and-bound mixed-integer programming over binary variables.
//!
//! The model-based skipping policy (paper Eq. (6)) decides, for each step of
//! a short horizon, whether to apply the feedback controller or skip — a
//! binary choice per step. This module solves exactly that class: an LP with
//! a designated subset of variables restricted to `{0, 1}`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{LinearProgram, LpError};

/// Integrality tolerance: a relaxation value within this distance of 0 or 1
/// counts as integral.
const INT_TOL: f64 = 1e-6;

/// A linear program in which selected variables are binary (`{0,1}`).
///
/// # Examples
///
/// ```
/// use oic_lp::{LinearProgram, MixedIntegerProgram};
///
/// # fn main() -> Result<(), oic_lp::LpError> {
/// // Knapsack: max 5a + 4b + 3c s.t. 2a + 3b + c <= 4, binary.
/// let mut lp = LinearProgram::maximize(&[5.0, 4.0, 3.0]);
/// lp.add_le(&[2.0, 3.0, 1.0], 4.0);
/// let mip = MixedIntegerProgram::new(lp, &[0, 1, 2]);
/// let sol = mip.solve()?;
/// assert!((sol.objective() - 8.0).abs() < 1e-6); // a = c = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MixedIntegerProgram {
    lp: LinearProgram,
    binary: Vec<usize>,
}

/// Solution of a [`MixedIntegerProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct MipSolution {
    x: Vec<f64>,
    objective: f64,
    nodes_explored: usize,
}

impl MipSolution {
    /// Optimal variable values (binaries rounded exactly to 0.0 / 1.0).
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Optimal objective in the user's orientation.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of branch-and-bound nodes explored (diagnostics).
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }

    /// Value of binary variable `i` as a `bool`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn binary_value(&self, i: usize) -> bool {
        self.x[i] > 0.5
    }
}

/// Branch-and-bound node ordered so the best (lowest) relaxation bound pops
/// first from the max-heap.
struct Node {
    /// Lower bound from the LP relaxation (minimization orientation).
    bound: f64,
    /// Fixed binaries: `(var_index, value)`.
    fixed: Vec<(usize, bool)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest bound.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

impl MixedIntegerProgram {
    /// Wraps a [`LinearProgram`], declaring `binary_vars` as binary.
    ///
    /// The `[0,1]` bounds on the binary variables are added automatically.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or duplicated.
    pub fn new(lp: LinearProgram, binary_vars: &[usize]) -> Self {
        let n = lp.num_vars();
        let mut seen = vec![false; n];
        for &i in binary_vars {
            assert!(i < n, "binary variable index out of range");
            assert!(!seen[i], "duplicate binary variable index");
            seen[i] = true;
        }
        Self {
            lp,
            binary: binary_vars.to_vec(),
        }
    }

    /// Read access to the underlying relaxation.
    pub fn linear_program(&self) -> &LinearProgram {
        &self.lp
    }

    /// Indices of the binary variables.
    pub fn binary_vars(&self) -> &[usize] {
        &self.binary
    }

    /// Solves the MIP by best-first branch-and-bound.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no binary assignment yields a feasible LP.
    /// * [`LpError::Unbounded`] — the relaxation is unbounded (the integer
    ///   problem is then unbounded or ill-posed).
    /// * [`LpError::IterationLimit`] — an LP relaxation hit the pivot limit.
    pub fn solve(&self) -> Result<MipSolution, LpError> {
        // Work in minimization orientation: clone and solve relaxations with
        // fixed binary bounds.
        let solve_relaxation = |fixed: &[(usize, bool)]| -> Result<(Vec<f64>, f64), LpError> {
            let mut lp = self.lp.clone();
            for &i in &self.binary {
                lp.set_bounds(i, 0.0, 1.0);
            }
            for &(i, v) in fixed {
                let val = if v { 1.0 } else { 0.0 };
                lp.set_bounds(i, val, val);
            }
            lp.solve().map(|s| (s.x().to_vec(), s.objective()))
        };

        // Objective orientation: LpSolution reports the user's orientation.
        // For bounding we need "lower is better", so flip maximize problems.
        let to_min = |obj: f64| if self.is_maximize() { -obj } else { obj };

        let root = match solve_relaxation(&[]) {
            Ok((x, obj)) => (x, to_min(obj)),
            Err(e) => return Err(e),
        };

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: root.1,
            fixed: Vec::new(),
        });

        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        let mut nodes = 0usize;

        while let Some(node) = heap.pop() {
            if let Some((_, best)) = &incumbent {
                if node.bound >= *best - 1e-12 {
                    // Bound can't improve on the incumbent; since the heap is
                    // ordered by bound, nothing later can either.
                    break;
                }
            }
            nodes += 1;
            let (x, obj_min) = match solve_relaxation(&node.fixed) {
                Ok((x, obj)) => (x, to_min(obj)),
                Err(LpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            if let Some((_, best)) = &incumbent {
                if obj_min >= *best - 1e-12 {
                    continue;
                }
            }
            // Find the most fractional unfixed binary.
            let mut branch_var = None;
            let mut most_frac = INT_TOL;
            for &i in &self.binary {
                let frac = (x[i] - x[i].round()).abs();
                if frac > most_frac {
                    most_frac = frac;
                    branch_var = Some(i);
                }
            }
            match branch_var {
                None => {
                    // Integral: new incumbent.
                    let mut xi = x.clone();
                    for &i in &self.binary {
                        xi[i] = x[i].round().clamp(0.0, 1.0);
                    }
                    incumbent = Some((xi, obj_min));
                }
                Some(i) => {
                    for v in [false, true] {
                        let mut fixed = node.fixed.clone();
                        fixed.push((i, v));
                        // Use the parent relaxation as an (optimistic) bound;
                        // the child relaxation is solved when popped.
                        heap.push(Node {
                            bound: obj_min,
                            fixed,
                        });
                    }
                }
            }
        }

        match incumbent {
            Some((x, obj_min)) => {
                let objective = if self.is_maximize() {
                    -obj_min
                } else {
                    obj_min
                };
                Ok(MipSolution {
                    x,
                    objective,
                    nodes_explored: nodes,
                })
            }
            None => Err(LpError::Infeasible),
        }
    }

    fn is_maximize(&self) -> bool {
        self.lp.is_maximize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knapsack() -> MixedIntegerProgram {
        let mut lp = LinearProgram::maximize(&[5.0, 4.0, 3.0]);
        lp.add_le(&[2.0, 3.0, 1.0], 4.0);
        MixedIntegerProgram::new(lp, &[0, 1, 2])
    }

    #[test]
    fn knapsack_optimum() {
        let sol = knapsack().solve().unwrap();
        assert!((sol.objective() - 8.0).abs() < 1e-6);
        assert!(sol.binary_value(0));
        assert!(!sol.binary_value(1));
        assert!(sol.binary_value(2));
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        // Random-ish small problems: compare B&B against enumerating all
        // binary assignments and solving the continuous remainder.
        let weights = [
            [3.0, -2.0, 1.5, 4.0],
            [1.0, 1.0, 1.0, 1.0],
            [-1.0, 5.0, -3.0, 2.0],
        ];
        for (case, w) in weights.iter().enumerate() {
            let mut lp = LinearProgram::maximize(w);
            lp.add_le(&[1.0, 2.0, 3.0, 1.0], 4.0);
            lp.add_le(&[2.0, 1.0, 1.0, 3.0], 5.0);
            let mip = MixedIntegerProgram::new(lp.clone(), &[0, 1, 2, 3]);
            let sol = mip.solve();

            let mut best: Option<f64> = None;
            for mask in 0..16u32 {
                let mut probe = lp.clone();
                for i in 0..4 {
                    let v = if mask >> i & 1 == 1 { 1.0 } else { 0.0 };
                    probe.set_bounds(i, v, v);
                }
                if let Ok(s) = probe.solve() {
                    best = Some(best.map_or(s.objective(), |b: f64| b.max(s.objective())));
                }
            }
            match (sol, best) {
                (Ok(s), Some(b)) => {
                    assert!(
                        (s.objective() - b).abs() < 1e-6,
                        "case {case}: {} vs {b}",
                        s.objective()
                    );
                }
                (Err(LpError::Infeasible), None) => {}
                (s, b) => panic!("case {case}: mismatch {s:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn minimization_orientation() {
        // min x + y + 10 b  s.t.  x + y >= 1, x <= b, y <= 1, binary b.
        // If b = 0 then x = 0 so y = 1: cost 1. If b = 1: cost >= 10.
        let mut lp = LinearProgram::minimize(&[1.0, 1.0, 10.0]);
        lp.add_ge(&[1.0, 1.0, 0.0], 1.0);
        lp.add_le(&[1.0, 0.0, -1.0], 0.0);
        lp.add_le(&[0.0, 1.0, 0.0], 1.0);
        lp.set_lower_bound(0, 0.0);
        lp.set_lower_bound(1, 0.0);
        let sol = MixedIntegerProgram::new(lp, &[2]).solve().unwrap();
        assert!((sol.objective() - 1.0).abs() < 1e-6);
        assert!(!sol.binary_value(2));
    }

    #[test]
    fn infeasible_mip() {
        // b1 + b2 >= 3 with two binaries.
        let mut lp = LinearProgram::minimize(&[0.0, 0.0]);
        lp.add_ge(&[1.0, 1.0], 3.0);
        let res = MixedIntegerProgram::new(lp, &[0, 1]).solve();
        assert_eq!(res.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_binary_index_panics() {
        let lp = LinearProgram::minimize(&[1.0]);
        let _ = MixedIntegerProgram::new(lp, &[3]);
    }
}
